"""Deterministic fault injection for the experiment pipeline.

Off by default and free when off: every injection helper returns
immediately unless the ``REPRO_CHAOS`` environment variable holds a
JSON configuration.  Because workers inherit the environment, one
setting drives the whole process tree deterministically -- no random
scheduling, no flaky tests.

Configuration
-------------
``REPRO_CHAOS`` is a JSON object mapping injection-point names to
trigger specs::

    REPRO_CHAOS='{"slow_solve": {"indices": [1], "seconds": 60}}'
    REPRO_CHAOS='{"worker_crash": {"indices": [2]}}'
    REPRO_CHAOS='{"solver_nan": {"nth": 1}}'
    REPRO_CHAOS='{"corrupt_checkpoint": {"nth": 2}}'
    REPRO_CHAOS='{"seed": 7, "worker_crash": {"p": 0.25}}'

Trigger specs (any one of):

``indices``
    Fire whenever the injection point is reached with one of the listed
    item indices (e.g. the global cell index of a table run).
``nth``
    Fire on the n-th invocation (1-based) of the point in this process,
    once.
``every``
    Fire on every k-th invocation.
``p``
    Fire with probability ``p``, decided by a deterministic RNG seeded
    from the top-level ``seed``, the point name, and the invocation
    counter (or index) -- reruns make identical decisions.

Injection points
----------------
``worker_crash``
    Hard ``os._exit`` in a *worker* process (never fires in the main
    process, so the parent's serial-retry path stays alive) -- simulates
    an OOM kill or segfault.  See :func:`inject_worker_crash`.
``slow_solve``
    Sleep for ``seconds`` (default 3600) before a cell evaluation --
    simulates a hung solver for the watchdog to kill.  See
    :func:`inject_slow_solve`.
``solver_nan``
    Replace a :func:`repro.solver.robust.solve_qp_robust` primary
    attempt with a diagnostic ``diverged`` result -- exercises the
    fallback chain.  See :func:`solver_nan`.
``corrupt_checkpoint``
    Truncate a checkpoint record mid-write (no trailing newline, record
    not committed) -- simulates a crash during an append, which the
    store's loader and tail-repair must tolerate.  See
    :func:`corrupt_checkpoint`.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import time

ENV_FLAG = "REPRO_CHAOS"

POINTS = ("worker_crash", "slow_solve", "solver_nan", "corrupt_checkpoint")

#: Parsed configuration; ``None`` means "not yet read from the env",
#: ``{}`` means "read, chaos off".
_config = None
#: Per-point invocation counters (process-local).
_counters: dict = {}


def _load() -> dict:
    global _config
    if _config is None:
        raw = os.environ.get(ENV_FLAG, "").strip()
        if not raw or raw == "0":
            _config = {}
        else:
            try:
                parsed = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{ENV_FLAG} must be a JSON object, got {raw!r}: {exc}"
                ) from None
            if not isinstance(parsed, dict):
                raise ValueError(
                    f"{ENV_FLAG} must be a JSON object, got {raw!r}"
                )
            unknown = set(parsed) - set(POINTS) - {"seed"}
            if unknown:
                raise ValueError(
                    f"{ENV_FLAG}: unknown injection points {sorted(unknown)}; "
                    f"known: {list(POINTS)}"
                )
            _config = parsed
    return _config


def reset():
    """Forget the parsed config and counters (test isolation)."""
    global _config
    _config = None
    _counters.clear()


def enabled() -> bool:
    """Whether any injection point is configured."""
    return bool(_load())


def fires(point: str, index=None) -> dict:
    """The spec dict when ``point`` triggers now, else ``None``.

    Every call advances the point's process-local invocation counter,
    so ``nth``/``every``/``p`` triggers are deterministic per process.
    """
    conf = _load()
    spec = conf.get(point)
    if not spec:
        return None
    count = _counters.get(point, 0) + 1
    _counters[point] = count
    if "indices" in spec:
        if index is not None and int(index) in set(spec["indices"]):
            return spec
        return None
    if "nth" in spec:
        return spec if count == int(spec["nth"]) else None
    if "every" in spec:
        k = int(spec["every"])
        return spec if k > 0 and count % k == 0 else None
    if "p" in spec:
        salt = count if index is None else int(index)
        # str seeds hash via sha512: stable across processes and runs
        rng = random.Random(f"{int(conf.get('seed', 0))}:{point}:{salt}")
        return spec if rng.random() < float(spec["p"]) else None
    return None


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def inject_worker_crash(index=None):
    """Hard-kill the current *worker* process when configured.

    Never fires in the main process: the parent must survive to run
    its serial-retry and pool-restart recovery paths.
    """
    if _config == {}:  # fast path: parsed and off
        return
    if fires("worker_crash", index=index) is not None and _in_worker():
        os._exit(3)


def inject_slow_solve(index=None):
    """Sleep as a stand-in for a hung solver when configured."""
    if _config == {}:
        return
    spec = fires("slow_solve", index=index)
    if spec is not None:
        time.sleep(float(spec.get("seconds", 3600.0)))


def solver_nan() -> bool:
    """Whether to fake a diverged (NaN) primary solver attempt."""
    if _config == {}:
        return False
    return fires("solver_nan") is not None


def corrupt_checkpoint() -> bool:
    """Whether to truncate the next checkpoint record mid-write."""
    if _config == {}:
        return False
    return fires("corrupt_checkpoint") is not None
