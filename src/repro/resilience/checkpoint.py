"""Atomic append-only JSONL checkpoint store for experiment runs.

A multi-hour table run (Tables IV-VI fan out dozens of DMopt cells)
must not restart from zero on an interruption.  Each completed unit of
work -- a :class:`~repro.experiments.harness.DMoptCell` evaluation or a
:func:`~repro.core.sweep.dmopt_dose_range_sweep` point -- is appended
to a checkpoint file as one JSON line, flushed and ``fsync``'d before
the runner moves on, and keyed by a **content hash** of the work
description, so a restarted run skips exactly the work whose inputs are
unchanged.

Record format (one JSON object per line)::

    {"v": 1, "key": "<sha256 of the canonical work description>",
     "kind": "dmopt_cell" | "sweep_point" | "cli_optimize",
     "ts": <unix seconds>, "payload": {...}}

Crash tolerance
---------------
A process killed mid-append leaves a truncated final line (no trailing
newline).  The loader drops such a partial tail -- that unit of work
simply re-runs -- and the next append first truncates the file back to
the end of the last complete line, so the store never concatenates a
new record onto half of an old one.  A complete-but-corrupt line in the
middle of the file (disk damage, manual editing) is skipped and counted
in :attr:`CheckpointStore.corrupt_lines`; its key re-runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import asdict, is_dataclass

import numpy as np

from repro.resilience import chaos

SCHEMA_VERSION = 1


def content_key(kind: str, payload: dict) -> str:
    """Stable sha256 hex key of a canonicalized work description."""
    blob = json.dumps(
        {"kind": kind, **payload}, sort_keys=True, separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cell_key(cell, certify: bool = False) -> str:
    """Content hash of one DMopt cell (plus the certification setting).

    ``certify`` is part of the key: a record produced without
    certification must not satisfy a ``--certify`` run, which promises
    every row was independently re-verified.
    """
    fields = asdict(cell) if is_dataclass(cell) else dict(cell)
    fields["certify"] = bool(certify)
    return content_key("dmopt_cell", fields)


def sweep_point_key(ctx, grid_size: float, mode: str, dose_range: float,
                    warm_start: bool, dmopt_kwargs: dict) -> str:
    """Content hash of one dose-range sweep point.

    The design context is fingerprinted by name, size, die and baseline
    golden numbers -- enough to invalidate records when the design or
    its placement changes.  ``warm_start`` is *excluded*: warm starting
    changes the inner solver's path, not the optimum, so cold and warm
    runs share records (the goldens are identical by contract).
    """
    die = ctx.placement.die
    return content_key(
        "sweep_point",
        {
            "design": ctx.bundle.name,
            "n_gates": ctx.netlist.n_gates,
            "die": [float(die.width), float(die.height)],
            "baseline_mct": float(ctx.baseline.mct),
            "baseline_leakage": float(ctx.baseline_leakage),
            "fit_width": bool(ctx.fit_width),
            "grid_size": float(grid_size),
            "mode": mode,
            "dose_range": float(dose_range),
            "kwargs": {k: dmopt_kwargs[k] for k in sorted(dmopt_kwargs)},
        },
    )


class CheckpointStore:
    """Append-only JSONL record store with crash-tolerant loading.

    Parameters
    ----------
    path:
        The checkpoint file; created on first :meth:`put` if missing.
    resume:
        When True (default), existing records are loaded and served by
        :meth:`get`.  When False an existing file is truncated -- the
        run starts fresh.
    """

    def __init__(self, path, resume: bool = True):
        self.path = str(path)
        self.records: dict = {}
        self.corrupt_lines = 0
        self._fh = None
        self._lock = threading.Lock()
        self._good_end = 0
        if resume:
            self._load()
        elif os.path.exists(self.path):
            with open(self.path, "w", encoding="utf-8"):
                pass

    # ------------------------------------------------------------------
    def _load(self):
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as fh:
            data = fh.read()
        start = 0
        good_end = 0
        while True:
            nl = data.find(b"\n", start)
            if nl == -1:
                break
            line = data[start:nl]
            start = nl + 1
            # a complete (newline-terminated) line is safe to keep on
            # disk even when it does not parse; only note the damage
            good_end = start
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                self.records[rec["key"]] = rec.get("payload")
            except (json.JSONDecodeError, KeyError, TypeError):
                self.corrupt_lines += 1
        if start < len(data):
            # partial tail (interrupted append): dropped, will re-run
            self.corrupt_lines += 1
        self._good_end = good_end

    def _open_repaired(self):
        """Append handle positioned at the end of the last good record."""
        if self._fh is not None and self._fh.tell() != self._good_end:
            # a chaos-corrupted (or externally damaged) tail: reopen
            self._fh.close()
            self._fh = None
        if self._fh is None:
            size = os.path.getsize(self.path) if os.path.exists(
                self.path
            ) else 0
            if size > self._good_end:
                with open(self.path, "r+b") as fh:
                    fh.truncate(self._good_end)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    # ------------------------------------------------------------------
    def get(self, key: str):
        """The stored payload for ``key``, or ``None``."""
        return self.records.get(key)

    def __contains__(self, key) -> bool:
        return key in self.records

    def __len__(self) -> int:
        return len(self.records)

    def put(self, key: str, payload, kind: str = None) -> bool:
        """Append one record; flushed and fsync'd before returning.

        Returns True when the record was durably committed (False only
        under chaos ``corrupt_checkpoint`` injection, which simulates a
        crash mid-write: a truncated line is left on disk and the key
        is *not* recorded, so the work re-runs after a resume).
        """
        rec = {"v": SCHEMA_VERSION, "key": key, "ts": time.time()}
        if kind:
            rec["kind"] = kind
        rec["payload"] = payload
        line = json.dumps(rec, separators=(",", ":"), default=str) + "\n"
        with self._lock:
            fh = self._open_repaired()
            if chaos.corrupt_checkpoint():
                fh.write(line[: max(1, len(line) // 2)])
                fh.flush()
                os.fsync(fh.fileno())
                return False
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
            self._good_end = fh.tell()
            self.records[key] = payload
        return True

    def close(self):
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __repr__(self):
        return (
            f"CheckpointStore({self.path!r}, {len(self.records)} records"
            + (f", {self.corrupt_lines} corrupt lines" if self.corrupt_lines
               else "")
            + ")"
        )


# ----------------------------------------------------------------------
# DMoptResult (de)serialization for sweep-point records
# ----------------------------------------------------------------------
def dmopt_result_payload(res) -> dict:
    """JSON-safe payload capturing a DMoptResult's golden outcome.

    Solver internals (iterates, duals, the formulation) are *not*
    stored: a resumed point cannot seed a warm start, so the sweep
    cold-starts the next solve -- the same contract as the poisonous-
    seed fallback, and golden numbers are warm/cold invariant.
    """
    part = res.dose_map_poly.partition
    form = res.formulation
    payload = {
        "mode": res.mode,
        "status": res.solve.status,
        "mct": res.mct,
        "leakage": res.leakage,
        "baseline_mct": res.baseline_mct,
        "baseline_leakage": res.baseline_leakage,
        "predicted_T": res.predicted_T,
        "predicted_delta_leakage": res.predicted_delta_leakage,
        "runtime": res.runtime,
        "iterations": res.solve.iterations,
        "obj": res.solve.obj,
        "r_prim": res.solve.r_prim,
        "r_dual": res.solve.r_dual,
        "grid": {
            "width": part.width,
            "height": part.height,
            "g": part.g,
            "m": part.m,
            "n": part.n,
        },
        "poly": res.dose_map_poly.values.tolist(),
        "active": (
            None
            if res.dose_map_active is None
            else res.dose_map_active.values.tolist()
        ),
    }
    if form is not None:
        payload["dose_range"] = form.dose_range
        payload["smoothness"] = form.smoothness
    return payload


def dmopt_result_from_payload(payload: dict):
    """Rebuild a (resume-grade) DMoptResult from a stored payload.

    The result carries the golden numbers and dose maps; its
    ``solve`` is a synthetic :class:`~repro.solver.SolveResult` with no
    iterate (``x`` is empty), flagged via ``info["resumed"]`` so it is
    never used as a warm-start seed.  ``formulation`` is ``None``.
    """
    from repro.core.dmopt import DMoptResult
    from repro.dosemap import DoseMap, GridPartition, LAYER_ACTIVE, LAYER_POLY
    from repro.solver.result import SolveResult

    grid = payload["grid"]
    part = GridPartition(
        grid["width"], grid["height"], grid["g"],
        m_explicit=grid["m"], n_explicit=grid["n"],
    )
    poly = DoseMap(part, LAYER_POLY, np.asarray(payload["poly"], dtype=float))
    active = None
    if payload.get("active") is not None:
        active = DoseMap(
            part, LAYER_ACTIVE, np.asarray(payload["active"], dtype=float)
        )
    solve = SolveResult(
        status=payload["status"],
        x=np.zeros(0),
        obj=float(payload["obj"]),
        iterations=int(payload["iterations"]),
        r_prim=float(payload["r_prim"]),
        r_dual=float(payload["r_dual"]),
        solve_time=0.0,
        info={"note": "resumed from checkpoint", "resumed": True},
    )
    return DMoptResult(
        mode=payload["mode"],
        dose_map_poly=poly,
        dose_map_active=active,
        mct=float(payload["mct"]),
        leakage=float(payload["leakage"]),
        baseline_mct=float(payload["baseline_mct"]),
        baseline_leakage=float(payload["baseline_leakage"]),
        predicted_T=float(payload["predicted_T"]),
        predicted_delta_leakage=float(payload["predicted_delta_leakage"]),
        solve=solve,
        formulation=None,
        runtime=float(payload["runtime"]),
    )
