"""Supervised process-pool map with per-item watchdog deadlines.

:func:`supervised_map` is the engine behind
:func:`repro.experiments.harness.parallel_map`.  Beyond plain fan-out
it provides the recovery paths a long table run needs:

* **Watchdog deadlines** -- each item gets a wall-clock budget
  (``timeout``, or the ``REPRO_CELL_TIMEOUT`` environment variable via
  :func:`resolve_cell_timeout`).  A worker that blows its budget is
  *killed* (SIGKILL -- a hung native solve cannot be interrupted
  politely) and the item is finished with ``timeout_result(item,
  elapsed)`` instead of hanging the run; innocent bystanders killed
  alongside it are resubmitted with a fresh clock.  The window of
  in-flight items never exceeds the worker count, so submission time is
  start time and the deadline measures actual cell wall-clock.
* **Pool restart** -- a broken pool (worker OOM-killed, segfaulted) is
  recreated **once** with bounded exponential backoff and the
  unfinished items resubmitted; if the new pool breaks too, the
  remaining items run serially in the parent.
* **Serial retry with backoff** -- an item whose worker raised an
  ordinary exception is re-run in the parent (a second failure raises:
  that is a real bug, not a worker casualty).  Retry counts are
  reported through ``stats`` and ``worker_retry`` telemetry events so
  run manifests record how lossy the pool was.

Determinism: results are returned in input order, and every recovery
path re-runs the same pure function on the same item, so a lossy run
produces byte-identical results to a clean one (timeouts excepted --
they yield the caller's diagnostic result by design).
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro import telemetry

ENV_CELL_TIMEOUT = "REPRO_CELL_TIMEOUT"

#: Added to the per-item budget before the kill: covers queue pickup
#: latency right after a pool (re)start fills its window.
GRACE = 0.25

_BACKOFF0 = 0.05
_BACKOFF_MAX = 1.0


def resolve_cell_timeout(timeout=None):
    """Per-cell budget (s): explicit arg > ``REPRO_CELL_TIMEOUT`` > None.

    Values <= 0 disable the watchdog.
    """
    if timeout is None:
        env = os.environ.get(ENV_CELL_TIMEOUT, "").strip()
        if not env:
            return None
        try:
            timeout = float(env)
        except ValueError:
            raise ValueError(
                f"{ENV_CELL_TIMEOUT} must be a number of seconds, "
                f"got {env!r}"
            ) from None
    timeout = float(timeout)
    return timeout if timeout > 0 else None


def _backoff(attempt: int) -> float:
    """Bounded exponential backoff delay for the ``attempt``-th retry."""
    return min(_BACKOFF0 * (2.0 ** max(attempt - 1, 0)), _BACKOFF_MAX)


@dataclass
class MapStats:
    """Recovery counters of one supervised map (for run manifests)."""

    retries: int = 0
    pool_restarts: int = 0
    timeouts: int = 0


def _kill_pool(ex):
    """SIGKILL every pool worker and abandon the executor."""
    procs = getattr(ex, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.kill()
        except Exception:
            pass
    ex.shutdown(wait=False, cancel_futures=True)


def supervised_map(
    fn,
    items,
    jobs: int,
    timeout: float = None,
    retry_serial: bool = True,
    on_result=None,
    timeout_result=None,
    stats: MapStats = None,
    poll: float = 0.1,
):
    """Map ``fn`` over ``items`` with watchdog/restart supervision.

    Parameters
    ----------
    fn, items:
        Pure picklable function and its inputs.
    jobs:
        Worker processes.  ``jobs <= 1`` without a ``timeout`` is a
        plain serial loop; *with* a timeout a single-worker pool is
        used anyway, because only a separate process can be killed.
    timeout:
        Per-item wall-clock budget in seconds (None = no watchdog).
    retry_serial:
        Recover from worker failures (see module docstring).  When
        False the first worker exception propagates.
    on_result:
        ``on_result(index, result)`` called the moment an item's result
        is final (checkpointing hook); call order follows completion,
        not input order.
    timeout_result:
        ``timeout_result(item, elapsed) -> result`` for items killed by
        the watchdog.  Without it a timeout raises ``TimeoutError``.
    stats:
        Optional :class:`MapStats` populated with recovery counters.

    Returns
    -------
    list
        Results in input order.
    """
    items = list(items)
    n = len(items)
    stats = stats if stats is not None else MapStats()
    results = [None] * n

    def finish(idx, value):
        results[idx] = value
        if on_result is not None:
            on_result(idx, value)

    if jobs <= 1 and timeout is None:
        for idx, item in enumerate(items):
            finish(idx, fn(item))
        return results

    workers = max(1, min(jobs, n))
    pending = deque(range(n))
    inflight = {}  # future -> (index, submit time)
    serial = []  # indices to re-run in the parent
    ex = ProcessPoolExecutor(max_workers=workers)
    restarts_left = 1

    def to_serial(idx, exc):
        stats.retries += 1
        telemetry.emit(
            "worker_retry", index=idx,
            error=f"{type(exc).__name__}: {exc}",
        )
        serial.append(idx)

    def requeue_inflight():
        # casualties of a kill or pool breakage, not at fault: back to
        # the head of the queue (input order) with a fresh clock
        for idx, _ in sorted(inflight.values(), reverse=True):
            pending.appendleft(idx)
        inflight.clear()

    try:
        while pending or inflight:
            if ex is None:
                # pool permanently gone: the rest runs in the parent
                for idx in sorted(pending):
                    to_serial(idx, BrokenProcessPool("pool unavailable"))
                pending.clear()
                break
            while pending and len(inflight) < workers:
                idx = pending.popleft()
                inflight[ex.submit(fn, items[idx])] = (idx, time.monotonic())
            done, _ = wait(
                list(inflight), timeout=poll, return_when=FIRST_COMPLETED
            )
            pool_broken = False
            for fut in done:
                idx, _ = inflight.pop(fut)
                try:
                    finish(idx, fut.result())
                except BrokenProcessPool as exc:
                    if not retry_serial:
                        raise
                    pool_broken = True
                    pending.appendleft(idx)
                except Exception as exc:
                    if not retry_serial:
                        raise
                    to_serial(idx, exc)
            if pool_broken:
                requeue_inflight()
                _kill_pool(ex)
                if restarts_left > 0:
                    restarts_left -= 1
                    stats.pool_restarts += 1
                    telemetry.emit("pool_restart", reason="broken_pool")
                    time.sleep(_backoff(stats.pool_restarts))
                    ex = ProcessPoolExecutor(max_workers=workers)
                else:
                    ex = None
                continue
            if timeout is not None and inflight:
                now = time.monotonic()
                expired = [
                    (fut, idx, now - t0)
                    for fut, (idx, t0) in inflight.items()
                    if now - t0 > timeout + GRACE
                ]
                if expired:
                    for fut, idx, elapsed in expired:
                        del inflight[fut]
                        stats.timeouts += 1
                        if timeout_result is None:
                            raise TimeoutError(
                                f"item {idx} exceeded its {timeout:.1f}s "
                                "watchdog budget"
                            )
                        finish(idx, timeout_result(items[idx], elapsed))
                    requeue_inflight()
                    _kill_pool(ex)
                    ex = ProcessPoolExecutor(max_workers=workers)
    finally:
        if ex is not None:
            ex.shutdown(wait=False, cancel_futures=True)

    for attempt, idx in enumerate(sorted(serial), start=1):
        time.sleep(_backoff(attempt))
        # a failure here is deterministic (same fn, same item, healthy
        # parent): let it raise
        finish(idx, fn(items[idx]))
    return results
