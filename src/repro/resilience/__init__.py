"""Pipeline resilience: checkpoint/resume, watchdog deadlines, chaos.

Three coordinated pieces keep multi-hour experiment runs alive:

* :mod:`repro.resilience.checkpoint` -- an atomic, append-only JSONL
  store keyed by content hashes, so an interrupted table run resumes
  from its last fsync'd record instead of restarting from zero.
* :mod:`repro.resilience.watchdog` -- a supervised process-pool map
  with per-item wall-clock deadlines: a stuck worker is killed and the
  item recorded as a diagnostic ``timeout`` result instead of hanging
  the whole run.
* :mod:`repro.resilience.chaos` -- deterministic fault injection
  (worker crash, solver NaN, slow solve, corrupt checkpoint line)
  behind the ``REPRO_CHAOS`` environment variable, used by the test
  suite and the CI chaos lane to exercise the two modules above.
"""

from repro.resilience.checkpoint import (
    CheckpointStore,
    cell_key,
    content_key,
)
from repro.resilience.watchdog import (
    ENV_CELL_TIMEOUT,
    MapStats,
    resolve_cell_timeout,
    supervised_map,
)

__all__ = [
    "CheckpointStore",
    "cell_key",
    "content_key",
    "ENV_CELL_TIMEOUT",
    "MapStats",
    "resolve_cell_timeout",
    "supervised_map",
]
