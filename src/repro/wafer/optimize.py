"""Across-wafer dose optimization (the paper's Section VI future work).

Scanner reality: besides the intrafield profiles, DoseMapper applies "a
dose offset ... per field" (Section II-A).  Given a wafer whose die sites
carry systematic CD bias (AWLV), this module chooses that per-die dose
offset to **minimize the delay variation of different chips across the
wafer** -- the extension the paper names as ongoing work -- and reports
the resulting timing-yield improvement.

The per-die MCT and leakage under a uniform effective CD shift are
interpolated from a golden uniform-dose sweep of the design (the same
machinery as Tables II/III), so wafer-level results stay consistent with
die-level signoff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sweep import uniform_dose_sweep


@dataclass
class WaferDoseResult:
    """Outcome of the per-die dose-offset optimization.

    MCT arrays are indexed by die site index.  ``spread`` entries are
    (max - min) MCT in ns; ``sigma`` entries are the MCT standard
    deviation.
    """

    offsets: np.ndarray
    mct_before: np.ndarray
    mct_after: np.ndarray
    leakage_before: float
    leakage_after: float

    @property
    def spread_before(self) -> float:
        return float(self.mct_before.max() - self.mct_before.min())

    @property
    def spread_after(self) -> float:
        return float(self.mct_after.max() - self.mct_after.min())

    @property
    def sigma_before(self) -> float:
        return float(self.mct_before.std())

    @property
    def sigma_after(self) -> float:
        return float(self.mct_after.std())

    def timing_yield(self, target_mct: float, after: bool = True) -> float:
        """Fraction of dies meeting a cycle-time target."""
        mcts = self.mct_after if after else self.mct_before
        return float(np.mean(mcts <= target_mct))


class _DieModels:
    """Interpolators die-MCT(dose) and die-leakage(dose) from a sweep."""

    def __init__(self, ctx, doses=None):
        points = uniform_dose_sweep(ctx, doses=doses)
        self.doses = np.array([p.dose for p in points])
        self.mcts = np.array([p.mct for p in points])
        self.leaks = np.array([p.leakage for p in points])

    def mct(self, dose):
        return np.interp(dose, self.doses, self.mcts)

    def leakage(self, dose):
        return np.interp(dose, self.doses, self.leaks)


def equalize_wafer_timing(
    ctx,
    wafer,
    dose_range: float = None,
    target_dose: float = 0.0,
    sweep_doses=None,
) -> WaferDoseResult:
    """Choose per-die dose offsets that equalize die MCT across the wafer.

    Each die's systematic CD bias is equivalent to a uniform dose error
    ``b_i / Ds``; the offset drives every die to the common effective
    dose ``target_dose``, clipped to the correction range.  With
    ``target_dose = 0`` this recovers nominal printing everywhere
    (delay-variation minimization); a positive target bins the whole
    wafer faster at a leakage cost.

    Parameters
    ----------
    ctx:
        A :class:`~repro.core.model.DesignContext` for the die design.
    wafer:
        A :class:`~repro.wafer.wafer.Wafer`.
    dose_range:
        Per-die offset limit (%); defaults to the library's dose range.
    """
    lib = ctx.library
    if dose_range is None:
        dose_range = lib.dose_range
    models = _DieModels(ctx, doses=sweep_doses)

    bias_nm = wafer.cd_bias_vector()
    # CD bias in dose-equivalent percent: bias_nm = Ds * d  =>  d = bias/Ds
    bias_dose = bias_nm / lib.dose_sensitivity
    offsets = np.clip(target_dose - bias_dose, -dose_range, dose_range)
    eff_before = bias_dose
    eff_after = bias_dose + offsets

    mct_before = models.mct(eff_before)
    mct_after = models.mct(eff_after)
    leak_before = float(np.sum(models.leakage(eff_before)))
    leak_after = float(np.sum(models.leakage(eff_after)))
    return WaferDoseResult(
        offsets=offsets,
        mct_before=np.asarray(mct_before),
        mct_after=np.asarray(mct_after),
        leakage_before=leak_before,
        leakage_after=leak_after,
    )
