"""Wafer model: die sites with systematic across-wafer CD variation.

Substrate for the paper's stated future work ("extension of the dose map
optimization methodology to minimize the delay variation of different
chips across the wafer", Section VI).  A :class:`Wafer` holds the die
sites of a wafer map and a systematic across-wafer linewidth variation
(AWLV) model: a radial CD bias (track/etcher signature, per the paper's
footnote: "AWLV is affected by the track and etcher") plus optional
per-die random offsets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class DieSite:
    """One exposure site on the wafer (die center coordinates, mm)."""

    index: int
    x_mm: float
    y_mm: float

    def radius_mm(self) -> float:
        return math.hypot(self.x_mm, self.y_mm)


@dataclass
class Wafer:
    """A wafer map with a systematic CD-bias model.

    Attributes
    ----------
    radius_mm:
        Usable wafer radius (default 150 mm wafer minus edge exclusion).
    die_w_mm, die_h_mm:
        Die (exposure step) pitch.
    radial_cd_bias_nm:
        CD bias at the wafer edge relative to the center (nm); the bias
        at radius r is ``radial_cd_bias_nm * (r / radius_mm)^2`` -- the
        bowl shape typical of track/etcher signatures.
    random_cd_sigma_nm:
        Per-die random CD offset sigma (nm).
    """

    radius_mm: float = 140.0
    die_w_mm: float = 20.0
    die_h_mm: float = 20.0
    radial_cd_bias_nm: float = 3.0
    random_cd_sigma_nm: float = 0.3
    seed: int = 11
    sites: list = field(init=False)

    def __post_init__(self):
        if self.radius_mm <= 0 or self.die_w_mm <= 0 or self.die_h_mm <= 0:
            raise ValueError("wafer and die dimensions must be positive")
        sites = []
        idx = 0
        ny = int(self.radius_mm // self.die_h_mm) + 1
        nx = int(self.radius_mm // self.die_w_mm) + 1
        for iy in range(-ny, ny + 1):
            for ix in range(-nx, nx + 1):
                x = (ix + 0.5) * self.die_w_mm
                y = (iy + 0.5) * self.die_h_mm
                # keep dies fully inside the usable radius
                corner = math.hypot(
                    abs(x) + self.die_w_mm / 2, abs(y) + self.die_h_mm / 2
                )
                if corner <= self.radius_mm:
                    sites.append(DieSite(idx, x, y))
                    idx += 1
        if not sites:
            raise ValueError("no die fits on this wafer")
        self.sites = sites
        rng = np.random.default_rng(self.seed)
        self._random_offsets = self.random_cd_sigma_nm * rng.standard_normal(
            len(sites)
        )

    @property
    def n_dies(self) -> int:
        return len(self.sites)

    def cd_bias_nm(self, site: DieSite) -> float:
        """Systematic + random CD bias (nm) of one die site."""
        radial = self.radial_cd_bias_nm * (site.radius_mm() / self.radius_mm) ** 2
        return radial + float(self._random_offsets[site.index])

    def cd_bias_vector(self) -> np.ndarray:
        """CD bias (nm) for every die, indexed by site index."""
        return np.array([self.cd_bias_nm(s) for s in self.sites])
