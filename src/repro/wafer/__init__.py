"""Wafer-level extension: across-wafer delay-variation minimization
(the paper's Section VI future work)."""

from repro.wafer.optimize import WaferDoseResult, equalize_wafer_timing
from repro.wafer.wafer import DieSite, Wafer

__all__ = ["Wafer", "DieSite", "WaferDoseResult", "equalize_wafer_timing"]
