"""Structured run telemetry: stage timers, solver traces, JSONL manifests.

Every optimization entry point (the solvers, DMopt, dosePl, the sweep
drivers, and the parallel harness) emits structured events through this
module.  Telemetry is **off by default** and costs one early-returning
function call per event when disabled, so the hot paths carry no
measurable overhead (the ``make bench-dmopt`` criterion).

Enabling it
-----------
* environment: ``REPRO_TELEMETRY=1`` (and optionally
  ``REPRO_TELEMETRY_PATH=run.jsonl``; default ``repro_telemetry.jsonl``
  in the working directory), or
* programmatically: ``telemetry.configure(enabled=True, path=...)``, or
* the CLIs: ``python -m repro optimize ... --trace run.jsonl`` and
  ``python -m repro.experiments ... --trace run.jsonl``.

Events are appended as one JSON object per line (a *run manifest*).
Worker processes inherit the environment configuration and append to
the same manifest; each event is written as a single line so concurrent
appends stay line-atomic on POSIX.

Schema
------
Every event carries ``v`` (schema version), ``ts`` (unix seconds),
``mono`` (monotonic seconds, for in-process ordering immune to NTP
steps), ``pid``, and ``event``; :data:`EVENT_SCHEMA` lists the
per-event required fields.  ``python -m repro.telemetry
<manifest.jsonl>`` validates a manifest against the schema (the CI
smoke lane).

Durations (``seconds`` fields) are always monotonic-clock deltas
(``time.perf_counter``), never wall-clock differences, so an NTP step
mid-run cannot produce negative timings.

The hierarchical tracing layer (``span`` events) and the metrics
registry (``metrics`` events) live in :mod:`repro.obs` and write
through this sink; ``python -m repro.obs report`` analyzes the
resulting manifest.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager

SCHEMA_VERSION = 2

ENV_FLAG = "REPRO_TELEMETRY"
ENV_PATH = "REPRO_TELEMETRY_PATH"
DEFAULT_PATH = "repro_telemetry.jsonl"

#: Required payload fields per event type (beyond the base fields
#: ``v``/``ts``/``mono``/``pid``/``event``, required on every record).
EVENT_SCHEMA = {
    "run_begin": {"run"},
    "run_end": {"run", "seconds"},
    "stage": {"stage", "seconds"},
    "solve": {"backend", "status", "iterations", "r_prim", "r_dual",
              "seconds"},
    "fallback": {"step", "backend", "status"},
    "qcp": {"status", "lam", "inner_solves"},
    "dmopt": {"mode", "status", "grid_size"},
    "infeasibility": {"blocking"},
    "dosepl_round": {"round", "swaps", "accepted", "mct"},
    "dosepl": {"rounds_run", "swaps_accepted", "swaps_attempted"},
    "sweep_point": {"dose_range", "status"},
    "cell_done": {"index", "design", "status"},
    "worker_retry": {"index", "error"},
    "pool_restart": {"reason"},
    "checkpoint_hit": {"key"},
    "watchdog_kill": {"index", "seconds"},
    "certify": {"ok", "mode"},
    # hierarchical tracing spans (repro.obs.spans)
    "span": {"name", "trace_id", "span_id", "seconds"},
    # per-process metrics-registry flush (repro.obs.metrics)
    "metrics": {"counters", "gauges", "histograms"},
}

BASE_FIELDS = {"v", "ts", "mono", "pid", "event"}


def _env_enabled() -> bool:
    return os.environ.get(ENV_FLAG, "").strip() not in ("", "0", "false")


class _State:
    """Process-wide sink: configuration + lazily opened manifest handle."""

    __slots__ = ("enabled", "path", "_fh", "_lock")

    def __init__(self):
        self.enabled = _env_enabled()
        self.path = os.environ.get(ENV_PATH, "").strip() or DEFAULT_PATH
        self._fh = None
        self._lock = threading.Lock()

    def write(self, record: dict):
        line = _encode(record) + "\n"
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line)
            self._fh.flush()

    def close(self):
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


_state = _State()


def _encode(record: dict) -> str:
    """JSON-encode one event, degrading rather than raising.

    Telemetry must never kill a run: a field value that the JSON
    encoder rejects (an arbitrary object, a circular structure, a
    non-string dict key) is degraded to its ``repr()`` instead of
    letting the exception propagate out of :func:`emit` mid-run.
    """
    try:
        return json.dumps(record, separators=(",", ":"), default=repr)
    except (TypeError, ValueError):
        pass
    degraded = {}
    for key, value in record.items():
        try:
            json.dumps(value, separators=(",", ":"), default=repr)
            degraded[str(key)] = value
        except (TypeError, ValueError):
            degraded[str(key)] = repr(value)
    return json.dumps(degraded, separators=(",", ":"), default=repr)


def enabled() -> bool:
    """Is telemetry on?  Cheap enough to call per event."""
    return _state.enabled


def configure(enabled: bool = None, path: str = None):
    """Reconfigure the sink (tests, CLIs).  ``None`` leaves a field as-is."""
    if path is not None:
        _state.close()
        _state.path = str(path)
        os.environ[ENV_PATH] = str(path)  # inherited by worker processes
    if enabled is not None:
        _state.enabled = bool(enabled)
        os.environ[ENV_FLAG] = "1" if enabled else "0"


def reset():
    """Close the sink and re-read the environment (test isolation)."""
    _state.close()
    _state.enabled = _env_enabled()
    _state.path = os.environ.get(ENV_PATH, "").strip() or DEFAULT_PATH


def emit(event: str, **fields):
    """Append one event to the manifest; no-op when telemetry is off."""
    if not _state.enabled:
        return
    record = {
        "v": SCHEMA_VERSION,
        "ts": time.time(),
        "mono": time.monotonic(),
        "pid": os.getpid(),
        "event": event,
    }
    record.update(fields)
    _state.write(record)


@contextmanager
def stage(name: str, **fields):
    """Time a named stage; emits one ``stage`` event on exit when on.

    The duration is a ``time.perf_counter`` (monotonic) delta, so a
    wall-clock step (NTP adjustment) during the stage cannot yield a
    negative or inflated ``seconds`` value.  For hierarchical timing
    (parent/child nesting, cross-process traces) use
    :func:`repro.obs.span` instead.
    """
    if not _state.enabled:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        emit("stage", stage=name,
             seconds=time.perf_counter() - t0, **fields)


# ----------------------------------------------------------------------
# manifest validation (the CI smoke)
# ----------------------------------------------------------------------
def validate_event(record) -> list:
    """Schema problems of one decoded event record (empty list = valid)."""
    problems = []
    if not isinstance(record, dict):
        return [f"record is not an object: {type(record).__name__}"]
    missing = BASE_FIELDS - set(record)
    if missing:
        problems.append(f"missing base fields {sorted(missing)}")
    event = record.get("event")
    if event not in EVENT_SCHEMA:
        problems.append(f"unknown event type {event!r}")
        return problems
    missing = EVENT_SCHEMA[event] - set(record)
    if missing:
        problems.append(f"{event}: missing fields {sorted(missing)}")
    if record.get("v") != SCHEMA_VERSION:
        problems.append(f"schema version {record.get('v')!r} != "
                        f"{SCHEMA_VERSION}")
    return problems


def validate_manifest(path) -> tuple:
    """Validate a JSONL manifest; returns ``(n_events, errors)``.

    ``errors`` is a list of ``"line N: problem"`` strings; an empty list
    means every line parsed and matched :data:`EVENT_SCHEMA`.
    """
    n = 0
    errors = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            n += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: invalid JSON ({exc})")
                continue
            for problem in validate_event(record):
                errors.append(f"line {lineno}: {problem}")
    return n, errors


def main(argv=None) -> int:
    """``python -m repro.telemetry <manifest.jsonl>`` -- validate a manifest."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if len(argv) != 1:
        print("usage: python -m repro.telemetry <manifest.jsonl>",
              file=sys.stderr)
        return 2
    n, errors = validate_manifest(argv[0])
    for err in errors:
        print(err, file=sys.stderr)
    print(f"{argv[0]}: {n} events, {len(errors)} schema errors")
    return 1 if errors or n == 0 else 0


if __name__ == "__main__":
    sys.exit(main())
