"""Chip leakage power analysis.

The role of SOC Encounter's leakage report in the paper: total and
per-cell leakage under a dose assignment, using the characterized library
variants (exact exponential device model -- *not* the optimizer's
quadratic approximation, so golden numbers capture approximation error
exactly as the paper's signoff does).
"""

from __future__ import annotations


def gate_leakage(netlist, library, gate_name: str, doses=None) -> float:
    """Leakage power (uW) of one cell instance under a dose assignment."""
    master = netlist.gate(gate_name).master
    if doses is None:
        return library.nominal(master).leakage_uw
    dp, da = doses.get(gate_name, (0.0, 0.0))
    return library.characterized(master, dp, da).leakage_uw


def total_leakage(netlist, library, doses=None) -> float:
    """Total leakage power (uW) of all cell instances.

    Parameters
    ----------
    doses:
        Optional mapping ``gate name -> (poly dose %, active dose %)``;
        missing gates are at nominal dose.
    """
    if doses is None:
        # fast path: histogram by master
        return sum(
            library.nominal(master).leakage_uw * count
            for master, count in netlist.master_histogram().items()
        )
    return sum(gate_leakage(netlist, library, g, doses) for g in netlist.gates)


def leakage_by_master(netlist, library, doses=None) -> dict:
    """Leakage power (uW) aggregated per master name."""
    result: dict = {}
    for name, gate in netlist.gates.items():
        result[gate.master] = result.get(gate.master, 0.0) + gate_leakage(
            netlist, library, name, doses
        )
    return result
