"""Leakage power analysis substrate."""

from repro.power.leakage import gate_leakage, leakage_by_master, total_leakage

__all__ = ["gate_leakage", "total_leakage", "leakage_by_master"]
