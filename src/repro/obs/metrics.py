"""Process-wide metrics registry: counters, gauges, log-bucket histograms.

Cheap always-callable instrumentation for the hot paths the profiler
cannot see individually: formulation-cache hits, STA incremental vs
full re-times, solver warm/cold iteration counts, fallback-chain
attempts, watchdog kills, checkpoint hits.  Every mutator is a no-op
(one early-returning check) while telemetry is off, so instrumented
code carries no measurable overhead in normal runs.

Accumulated values are flushed as a **single ``metrics`` event per
process** when the process exits -- via ``atexit`` in ordinary
processes and a ``multiprocessing.util.Finalize`` hook in pool workers
(which exit through ``os._exit`` and skip ``atexit``).  A forked child
starts from an empty registry (``os.register_at_fork``), so parent
counts are never double-reported.  ``python -m repro.obs report``
merges the per-process events back into run totals.

Histograms use base-2 logarithmic buckets: an observation ``v`` lands
in bucket ``ceil(log2(v))`` (bucket ``b`` holds ``2**(b-1) < v <=
2**b``; zero and negative values land in the ``"-inf"`` bucket), which
keeps solver-iteration and duration distributions compact at any scale.
"""

from __future__ import annotations

import atexit
import math
import os
import threading

from repro import telemetry


class _Registry:
    """Mutable per-process metric state behind one lock."""

    __slots__ = ("lock", "counters", "gauges", "histograms", "__weakref__")

    def __init__(self):
        self.lock = threading.Lock()
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def clear(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)


_reg = _Registry()


def inc(name: str, n: int = 1):
    """Add ``n`` to counter ``name``; no-op while telemetry is off."""
    if not telemetry.enabled():
        return
    with _reg.lock:
        _reg.counters[name] = _reg.counters.get(name, 0) + n


def gauge(name: str, value: float):
    """Set gauge ``name`` to its most recent value."""
    if not telemetry.enabled():
        return
    with _reg.lock:
        _reg.gauges[name] = float(value)


def bucket_of(value: float) -> str:
    """Log2 bucket label for ``value`` (see module docstring)."""
    if value <= 0 or not math.isfinite(value):
        return "-inf" if value <= 0 else "inf"
    return str(max(math.ceil(math.log2(value)), -64))


def observe(name: str, value: float):
    """Record ``value`` into histogram ``name``."""
    if not telemetry.enabled():
        return
    value = float(value)
    label = bucket_of(value)
    with _reg.lock:
        hist = _reg.histograms.get(name)
        if hist is None:
            hist = _reg.histograms[name] = {
                "count": 0,
                "sum": 0.0,
                "min": value,
                "max": value,
                "buckets": {},
            }
        hist["count"] += 1
        if math.isfinite(value):
            hist["sum"] += value
            hist["min"] = min(hist["min"], value)
            hist["max"] = max(hist["max"], value)
        hist["buckets"][label] = hist["buckets"].get(label, 0) + 1


def snapshot() -> dict:
    """Copy of the current registry (tests, ad-hoc inspection)."""
    with _reg.lock:
        return {
            "counters": dict(_reg.counters),
            "gauges": dict(_reg.gauges),
            "histograms": {
                name: {**h, "buckets": dict(h["buckets"])}
                for name, h in _reg.histograms.items()
            },
        }


def flush(reason: str = "exit"):
    """Emit one ``metrics`` event with everything accumulated, then reset.

    Safe to call repeatedly: an empty registry flushes nothing, so the
    at-exit hooks after an explicit flush are no-ops.
    """
    if not telemetry.enabled():
        return
    with _reg.lock:
        if _reg.empty:
            return
        payload = {
            "counters": dict(_reg.counters),
            "gauges": dict(_reg.gauges),
            "histograms": {
                name: {**h, "buckets": dict(h["buckets"])}
                for name, h in _reg.histograms.items()
            },
        }
        _reg.clear()
    telemetry.emit("metrics", reason=reason, **payload)


def reset():
    """Drop everything accumulated without emitting (test isolation)."""
    with _reg.lock:
        _reg.clear()


atexit.register(flush)

# Pool workers exit via os._exit (multiprocessing's _bootstrap), which
# skips atexit; multiprocessing.util runs registered *finalizers* on
# that path instead.  A Finalize created in the parent does NOT survive
# into fork-started workers -- _bootstrap clears the inherited finalizer
# registry first -- so the worker-side registration rides
# register_after_fork, which _bootstrap runs *after* that clear.
# Spawn-started workers re-import this module inside run(), so their
# import-time Finalize below is created after the clear and survives.
try:  # pragma: no cover - import-time wiring
    from multiprocessing import util as _mp_util

    def _arm_worker_flush(_reg_ref):
        _mp_util.Finalize(None, flush, exitpriority=100)

    _mp_util.Finalize(None, flush, exitpriority=100)
    _mp_util.register_after_fork(_reg, _arm_worker_flush)
except Exception:  # pragma: no cover
    pass

if hasattr(os, "register_at_fork"):
    # a forked worker must not re-report the parent's accumulation
    os.register_at_fork(after_in_child=reset)
