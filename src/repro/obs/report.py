"""Manifest analysis: span trees, solver stats, metric roll-ups.

``python -m repro.obs report <manifest.jsonl>`` reassembles the flat
JSONL run manifest (see :mod:`repro.telemetry`) into the things a human
asks of a run:

* a **wall-time tree** per trace, rebuilt from the ``span`` events'
  ``span_id``/``parent_id`` links (workers' spans parent into the
  harness span via the inherited ``REPRO_TRACE_CTX``, so one tree spans
  all processes of the run);
* **per-stage aggregates** (count, total, share of the root) and the
  top spans by *self* time (own duration minus child durations);
* **solver statistics** from the ``solve``/``qcp`` events: per-backend
  solve counts, warm vs cold iteration totals, status mix, and final
  residuals taken from the attached convergence traces;
* **run totals** merged from every per-process ``metrics`` flush, with
  derived rates (formulation cache hit rate, STA incremental re-time
  fraction).

Everything here is read-only over a manifest file; nothing imports the
solvers or the STA, so the report tool works on manifests from other
machines.
"""

from __future__ import annotations

import json


def load_manifest(path) -> list:
    """Decode a JSONL manifest; undecodable lines are skipped, counted.

    Returns ``(records, n_bad_lines)`` -- a truncated last line (a run
    killed mid-write) must not make the whole manifest unreadable.
    """
    records = []
    bad = 0
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                bad += 1
    return records, bad


# ----------------------------------------------------------------------
# span tree
# ----------------------------------------------------------------------
class SpanNode:
    """One reassembled span with resolved children."""

    __slots__ = ("record", "children")

    def __init__(self, record: dict):
        self.record = record
        self.children = []

    @property
    def name(self) -> str:
        return self.record.get("name", "?")

    @property
    def seconds(self) -> float:
        return float(self.record.get("seconds", 0.0))

    @property
    def start(self) -> float:
        # ts is the span's end wall time; approximate start for ordering
        return float(self.record.get("ts", 0.0)) - self.seconds

    @property
    def self_seconds(self) -> float:
        """Own duration minus time attributed to child spans."""
        return max(0.0, self.seconds - sum(c.seconds for c in self.children))

    def walk(self, depth: int = 0):
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


def build_trees(records) -> dict:
    """``{trace_id: [root SpanNode, ...]}`` from a manifest's span events.

    A span whose ``parent_id`` is missing from the manifest (the parent
    process died before emitting, or the file was truncated) becomes a
    root of its trace rather than vanishing.  Children are ordered by
    start time.
    """
    nodes = {}
    for rec in records:
        if rec.get("event") == "span" and rec.get("span_id"):
            nodes[rec["span_id"]] = SpanNode(rec)
    traces = {}
    for node in nodes.values():
        parent = nodes.get(node.record.get("parent_id"))
        if parent is not None:
            parent.children.append(node)
        else:
            traces.setdefault(node.record.get("trace_id"), []).append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.start)
    for roots in traces.values():
        roots.sort(key=lambda n: n.start)
    return traces


def _span_attrs(record: dict) -> str:
    from repro.telemetry import BASE_FIELDS

    skip = BASE_FIELDS | {"name", "trace_id", "span_id", "parent_id",
                          "seconds"}
    parts = []
    for key, value in record.items():
        if key in skip or value is None:
            continue
        if isinstance(value, float):
            value = f"{value:g}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def format_tree(traces, max_depth: int = None) -> list:
    """Indented per-trace wall-time tree lines."""
    lines = []
    for trace_id, roots in sorted(traces.items(), key=lambda kv: str(kv[0])):
        total = sum(r.seconds for r in roots)
        lines.append(f"trace {trace_id}  ({total:.3f} s)")
        for root in roots:
            root_s = root.seconds or 1e-12
            for depth, node in root.walk():
                if max_depth is not None and depth > max_depth:
                    continue
                pct = 100.0 * node.seconds / root_s
                attrs = _span_attrs(node.record)
                lines.append(
                    f"  {'  ' * depth}{node.name:<{max(1, 38 - 2 * depth)}}"
                    f"{node.seconds:>9.3f} s  {pct:5.1f}%"
                    + (f"  [{attrs}]" if attrs else "")
                )
    return lines


def aggregate_spans(traces) -> dict:
    """Per-name totals: ``{name: {count, total, self_total}}``."""
    agg = {}
    for roots in traces.values():
        for root in roots:
            for _, node in root.walk():
                entry = agg.setdefault(
                    node.name, {"count": 0, "total": 0.0, "self_total": 0.0}
                )
                entry["count"] += 1
                entry["total"] += node.seconds
                entry["self_total"] += node.self_seconds
    return agg


# ----------------------------------------------------------------------
# solver statistics
# ----------------------------------------------------------------------
def solver_stats(records) -> dict:
    """Per-backend roll-up of the ``solve`` events (+ a ``qcp`` entry).

    ``residuals`` holds the final ``(r_prim, r_dual)`` medians over the
    attached per-iteration convergence traces -- i.e. where the solvers
    actually stopped, not just the verdict statuses.
    """
    stats = {}
    for rec in records:
        if rec.get("event") == "solve":
            entry = stats.setdefault(
                rec.get("backend", "?"),
                {
                    "solves": 0,
                    "iterations": 0,
                    "warm": 0,
                    "cold": 0,
                    "statuses": {},
                    "trace_points": 0,
                    "final_r_prim": [],
                    "final_r_dual": [],
                },
            )
            entry["solves"] += 1
            entry["iterations"] += int(rec.get("iterations", 0))
            entry["warm" if rec.get("warm_started") else "cold"] += 1
            status = rec.get("status", "?")
            entry["statuses"][status] = entry["statuses"].get(status, 0) + 1
            trace = rec.get("trace") or []
            entry["trace_points"] += len(trace)
            if trace:
                last = trace[-1]
                # ipm rows are (it, mu, r_prim, r_dual); admm rows are
                # (k, r_prim, r_dual, rho)
                if rec.get("backend") == "ipm" and len(last) >= 4:
                    entry["final_r_prim"].append(float(last[2]))
                    entry["final_r_dual"].append(float(last[3]))
                elif len(last) >= 3:
                    entry["final_r_prim"].append(float(last[1]))
                    entry["final_r_dual"].append(float(last[2]))
        elif rec.get("event") == "qcp":
            entry = stats.setdefault(
                "qcp",
                {
                    "solves": 0,
                    "inner_solves": 0,
                    "iterations": 0,
                    "statuses": {},
                },
            )
            entry["solves"] += 1
            entry["inner_solves"] += int(rec.get("inner_solves", 0))
            entry["iterations"] += int(rec.get("iterations", 0))
            status = rec.get("status", "?")
            entry["statuses"][status] = entry["statuses"].get(status, 0) + 1
    return stats


def _median(values):
    if not values:
        return None
    vals = sorted(values)
    mid = len(vals) // 2
    if len(vals) % 2:
        return vals[mid]
    return 0.5 * (vals[mid - 1] + vals[mid])


# ----------------------------------------------------------------------
# metrics roll-up
# ----------------------------------------------------------------------
def merge_metrics(records) -> dict:
    """Run totals across every per-process ``metrics`` flush event."""
    counters = {}
    gauges = {}
    histograms = {}
    for rec in records:
        if rec.get("event") != "metrics":
            continue
        for name, n in (rec.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + n
        gauges.update(rec.get("gauges") or {})
        for name, hist in (rec.get("histograms") or {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    **hist, "buckets": dict(hist.get("buckets") or {})
                }
                continue
            merged["count"] += hist.get("count", 0)
            merged["sum"] += hist.get("sum", 0.0)
            merged["min"] = min(merged["min"], hist.get("min", merged["min"]))
            merged["max"] = max(merged["max"], hist.get("max", merged["max"]))
            for label, n in (hist.get("buckets") or {}).items():
                merged["buckets"][label] = merged["buckets"].get(label, 0) + n
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def _rate(hits, misses):
    total = hits + misses
    return hits / total if total else None


def derived_rates(counters: dict) -> dict:
    """Headline ratios computed from the merged counters."""
    rates = {}
    hit = counters.get("formulation.cache_hit", 0)
    miss = counters.get("formulation.cache_miss", 0)
    if hit or miss:
        rates["formulation_cache_hit_rate"] = _rate(hit, miss)
    inc = counters.get("sta.incremental_retime", 0)
    full = counters.get("sta.full_retime", 0)
    if inc or full:
        rates["sta_incremental_fraction"] = _rate(inc, full)
    return rates


# ----------------------------------------------------------------------
# the report
# ----------------------------------------------------------------------
def summarize(path) -> dict:
    """Machine-readable report over one manifest (the ``--json`` output)."""
    records, bad_lines = load_manifest(path)
    traces = build_trees(records)
    roots = [root for roots in traces.values() for root in roots]
    metrics = merge_metrics(records)
    events = {}
    for rec in records:
        kind = rec.get("event", "?")
        events[kind] = events.get(kind, 0) + 1
    return {
        "path": str(path),
        "n_events": len(records),
        "bad_lines": bad_lines,
        "events": events,
        "n_traces": len(traces),
        "root_seconds": sum(r.seconds for r in roots),
        "spans": aggregate_spans(traces),
        "solvers": solver_stats(records),
        "metrics": metrics,
        "rates": derived_rates(metrics["counters"]),
    }


def format_report(path, max_depth: int = None, top: int = 10) -> str:
    """Human-readable report text (the default ``report`` output)."""
    records, bad_lines = load_manifest(path)
    traces = build_trees(records)
    lines = [f"manifest {path}: {len(records)} events"
             + (f" ({bad_lines} undecodable lines skipped)" if bad_lines
                else "")]

    if traces:
        lines.append("")
        lines.append("== span tree (wall time) ==")
        lines.extend(format_tree(traces, max_depth=max_depth))

        agg = aggregate_spans(traces)
        lines.append("")
        lines.append(f"== top spans by self time (of {len(agg)} names) ==")
        ranked = sorted(
            agg.items(), key=lambda kv: kv[1]["self_total"], reverse=True
        )
        for name, entry in ranked[:top]:
            lines.append(
                f"  {name:<38}{entry['self_total']:>9.3f} s self"
                f"  {entry['total']:>9.3f} s total  x{entry['count']}"
            )
    else:
        lines.append("no span events (run without spans, or telemetry off)")

    stats = solver_stats(records)
    if stats:
        lines.append("")
        lines.append("== solver iterations ==")
        for backend in sorted(stats):
            entry = stats[backend]
            statuses = ",".join(
                f"{k}:{v}" for k, v in sorted(entry["statuses"].items())
            )
            if backend == "qcp":
                lines.append(
                    f"  qcp   {entry['solves']} solves, "
                    f"{entry['inner_solves']} inner solves, "
                    f"{entry['iterations']} inner iterations  [{statuses}]"
                )
                continue
            mean = entry["iterations"] / max(entry["solves"], 1)
            line = (
                f"  {backend:<5} {entry['solves']} solves "
                f"({entry['warm']} warm / {entry['cold']} cold), "
                f"{entry['iterations']} iterations "
                f"(mean {mean:.1f})  [{statuses}]"
            )
            rp = _median(entry["final_r_prim"])
            rd = _median(entry["final_r_dual"])
            if rp is not None:
                line += f"  median final residuals r_prim={rp:.2e} " \
                        f"r_dual={rd:.2e}"
            lines.append(line)

    metrics = merge_metrics(records)
    if any(metrics.values()):
        lines.append("")
        lines.append("== run totals (merged metrics) ==")
        for name in sorted(metrics["counters"]):
            lines.append(f"  {name:<38}{metrics['counters'][name]:>9}")
        for name in sorted(metrics["gauges"]):
            lines.append(f"  {name:<38}{metrics['gauges'][name]:>9g}")
        for name in sorted(metrics["histograms"]):
            hist = metrics["histograms"][name]
            mean = hist["sum"] / max(hist["count"], 1)
            lines.append(
                f"  {name:<38}{hist['count']:>9} obs  "
                f"mean {mean:.1f}  min {hist['min']:g}  max {hist['max']:g}"
            )
        rates = derived_rates(metrics["counters"])
        for name in sorted(rates):
            lines.append(f"  {name:<38}{rates[name]:>9.1%}")
    return "\n".join(lines)
