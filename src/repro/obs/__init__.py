"""Observability layer: tracing spans, metrics registry, trace analysis.

Three pieces, all riding on the :mod:`repro.telemetry` manifest:

* :func:`span` -- hierarchical timed regions (trace/span/parent ids)
  that nest per thread and across pool workers, reassembled into a
  wall-time tree by ``python -m repro.obs report``;
* :mod:`repro.obs.metrics` -- process-wide counters / gauges /
  log-bucket histograms, flushed as one ``metrics`` event per process
  at exit;
* the analysis CLI (``python -m repro.obs``) with ``report`` (stage
  tree, top spans, solver convergence stats, cache-hit rates from a
  manifest) and ``compare`` (perf-regression gate over two
  ``BENCH_*.json`` files).

Everything is a no-op while telemetry is off (``REPRO_TELEMETRY`` /
``--trace`` / ``telemetry.configure``), so instrumented hot paths pay
only an early-returning check per call.  See ``docs/observability.md``.
"""

from repro.obs import metrics
from repro.obs.spans import ENV_CTX, current_context, current_trace_id, span

#: Bound on per-solve convergence traces (ring buffer length): a solve
#: keeps its last this-many per-iteration residual records in
#: ``SolveResult.info["trace"]``.
TRACE_MAXLEN = 128

__all__ = [
    "ENV_CTX",
    "TRACE_MAXLEN",
    "current_context",
    "current_trace_id",
    "metrics",
    "span",
]
