"""Observability CLI: ``python -m repro.obs {report,compare}``.

* ``report <manifest.jsonl>`` -- per-stage wall-time tree, top spans by
  self time, solver iteration statistics, and merged run-total metrics
  from one telemetry manifest (``--json`` for machine-readable output).
* ``compare <baseline.json> <current.json>`` -- diff two BENCH_*.json
  benchmark files and exit 1 when a time/speedup metric regressed
  beyond ``--tol`` (the CI perf gate).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.compare import compare_files, format_comparison
from repro.obs.report import format_report, summarize


def _cmd_report(args) -> int:
    if args.json:
        print(json.dumps(summarize(args.manifest), indent=2, sort_keys=True))
        return 0
    print(format_report(args.manifest, max_depth=args.max_depth,
                        top=args.top))
    return 0


def _cmd_compare(args) -> int:
    result = compare_files(args.baseline, args.current, tol=args.tol,
                           floor=args.floor)
    print(format_comparison(result, verbose=args.verbose))
    failed = bool(result["regressions"]) or (
        bool(result["missing"]) and not args.allow_missing
    )
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyze run manifests and gate benchmark regressions.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_rep = sub.add_parser(
        "report", help="per-stage wall-time tree + solver/metric stats"
    )
    p_rep.add_argument("manifest", help="JSONL run manifest (--trace output)")
    p_rep.add_argument("--json", action="store_true",
                       help="machine-readable summary instead of text")
    p_rep.add_argument("--max-depth", type=int, default=None,
                       help="clip the span tree at this depth")
    p_rep.add_argument("--top", type=int, default=10,
                       help="span names listed in the self-time ranking")
    p_rep.set_defaults(func=_cmd_report)

    p_cmp = sub.add_parser(
        "compare", help="diff two BENCH_*.json files; exit 1 on regression"
    )
    p_cmp.add_argument("baseline", help="committed baseline BENCH_*.json")
    p_cmp.add_argument("current", help="freshly measured BENCH_*.json")
    p_cmp.add_argument("--tol", type=float, default=0.5,
                       help="relative regression tolerance (0.5 = 50%%)")
    p_cmp.add_argument("--floor", type=float, default=1e-3,
                       help="ignore metrics below this absolute value")
    p_cmp.add_argument("--allow-missing", action="store_true",
                       help="do not fail when a baseline metric is absent "
                       "from the current file")
    p_cmp.add_argument("--verbose", "-v", action="store_true",
                       help="also list unchanged/informational metrics")
    p_cmp.set_defaults(func=_cmd_compare)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
