"""Hierarchical tracing spans over the telemetry manifest.

A *span* is a timed region of the run with an identity (``span_id``), a
trace it belongs to (``trace_id``), and a parent (``parent_id``), so the
flat JSONL manifest can be reassembled into a wall-time tree::

    with span("harness.run_dmopt_cells", n_cells=8):
        ...
        with span("cell", design="AES-65"):
            ...

Spans nest per thread (a thread-local stack) and *across processes*:
entering a span exports ``REPRO_TRACE_CTX=<trace_id>:<span_id>`` to the
environment, so a worker forked or spawned while the span is active
parents its own root spans under it -- the pool workers of
:func:`repro.experiments.harness.run_dmopt_cells` inherit the harness
span exactly this way, and every process appends to the same manifest
(line-atomic on POSIX), so ``python -m repro.obs report`` resolves the
full harness -> cell -> solve -> STA tree from one file.

Like the rest of telemetry, spans are **off by default**: with
telemetry disabled, ``span()`` costs one early-returning check and
yields ``None``.  Durations are monotonic (``time.perf_counter``)
deltas; the emitted ``ts`` is the span's *end* wall time, so a span's
approximate start is ``ts - seconds``.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from contextlib import contextmanager

from repro import telemetry

#: Environment key carrying ``trace_id:span_id`` of the active span into
#: child processes.
ENV_CTX = "REPRO_TRACE_CTX"

_local = threading.local()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


def current_context():
    """Active ``(trace_id, span_id)``: this thread's innermost span,
    else the context inherited from the environment (a parent process),
    else ``(None, None)``."""
    stack = _stack()
    if stack:
        top = stack[-1]
        return top[0], top[1]
    env = os.environ.get(ENV_CTX, "")
    if ":" in env:
        trace_id, span_id = env.split(":", 1)
        if trace_id and span_id:
            return trace_id, span_id
    return None, None


def current_trace_id():
    """The active trace id, or ``None`` outside any span/trace."""
    return current_context()[0]


@contextmanager
def span(name: str, **attrs):
    """Time a named span; emits one ``span`` event on exit when on.

    Yields a mutable attribute dict (annotate results discovered inside
    the block: ``sp["status"] = ...``), or ``None`` when telemetry is
    off.  An exception escaping the block is recorded as an ``error``
    attribute before re-raising.
    """
    if not telemetry.enabled():
        yield None
        return
    parent_trace, parent_span = current_context()
    trace_id = parent_trace or _new_id()
    span_id = _new_id()
    stack = _stack()
    stack.append((trace_id, span_id))
    # export for processes forked/spawned while this span is active
    prev_env = os.environ.get(ENV_CTX)
    os.environ[ENV_CTX] = f"{trace_id}:{span_id}"
    t0 = time.perf_counter()
    try:
        yield attrs
    except BaseException as exc:
        attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
        raise
    finally:
        seconds = time.perf_counter() - t0
        stack.pop()
        if prev_env is None:
            os.environ.pop(ENV_CTX, None)
        else:
            os.environ[ENV_CTX] = prev_env
        telemetry.emit(
            "span",
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_span,
            seconds=seconds,
            **attrs,
        )


def _after_fork_in_child():
    # The forked child inherits the forking thread's span stack, but it
    # must not pop/emit the parent's open spans; its root context comes
    # from ENV_CTX (which the parent set while the spans were active).
    _local.stack = []


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_after_fork_in_child)
