"""Benchmark regression gate: diff two BENCH_*.json files.

``python -m repro.obs compare <baseline.json> <current.json> --tol 0.5``
flattens both files to dotted numeric leaves (``solve_warm[0].modes.qp.
warm_time``), classifies each metric's *direction* from its name, and
exits nonzero when any direction-bearing metric regressed beyond the
relative tolerance:

* names containing ``speedup`` are **higher-better**;
* time-like names (``*_time``, ``seconds``, ``reference``, ``vector*``,
  ``serial*``, ``parallel*``) and iteration counts are **lower-better**;
* everything else (gate counts, MCT values, dose ranges, ...) is
  informational -- reported with ``--verbose`` but never a regression,
  since correctness drift is the signoff tests' job, not the perf
  gate's.

Tiny absolute values are noise, not signal: a metric whose baseline and
current values are both under ``--floor`` seconds (default 1 ms) is
skipped, so a 2x blip on a 200 us timer cannot fail CI.
"""

from __future__ import annotations

import json


#: Name fragments marking a metric where *larger* is better.
HIGHER_BETTER = ("speedup",)

#: Name fragments marking a metric where *smaller* is better (times,
#: iteration counts).  Checked on the leaf key, after HIGHER_BETTER.
LOWER_BETTER = (
    "_time", "time_", "seconds", "reference", "vector", "serial",
    "parallel", "iterations", "runtime", "inner_solves",
)


def flatten(value, prefix: str = "") -> dict:
    """``{dotted.path: float}`` over every numeric leaf of a JSON tree."""
    out = {}
    if isinstance(value, dict):
        for key, sub in value.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(sub, path))
    elif isinstance(value, list):
        for idx, sub in enumerate(value):
            out.update(flatten(sub, f"{prefix}[{idx}]"))
    elif isinstance(value, bool):
        pass  # bools are ints in python; they are flags, not metrics
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)
    return out


def direction_of(path: str) -> str:
    """``"higher"`` | ``"lower"`` | ``"info"`` for one dotted metric path."""
    leaf = path.rsplit(".", 1)[-1].lower()
    if any(frag in leaf for frag in HIGHER_BETTER):
        return "higher"
    if any(frag in leaf for frag in LOWER_BETTER):
        return "lower"
    return "info"


def compare_metrics(baseline: dict, current: dict, tol: float = 0.5,
                    floor: float = 1e-3) -> dict:
    """Diff two flattened metric dicts.

    Returns ``{"regressions": [...], "improvements": [...], "info":
    [...], "missing": [...]}`` where each entry is ``(path, base, cur,
    rel_change)``; ``rel_change`` is signed so that positive always
    means *worse* (slower, fewer speedups).
    """
    regressions = []
    improvements = []
    info = []
    missing = []
    for path in sorted(baseline):
        base = baseline[path]
        if path not in current:
            missing.append((path, base, None, None))
            continue
        cur = current[path]
        direction = direction_of(path)
        if direction == "info":
            info.append((path, base, cur, None))
            continue
        if abs(base) < floor and abs(cur) < floor:
            info.append((path, base, cur, None))
            continue
        denom = max(abs(base), floor)
        if direction == "lower":
            rel = (cur - base) / denom  # positive = slower = worse
        else:
            rel = (base - cur) / denom  # positive = less speedup = worse
        entry = (path, base, cur, rel)
        if rel > tol:
            regressions.append(entry)
        elif rel < -tol:
            improvements.append(entry)
        else:
            info.append(entry)
    return {
        "regressions": regressions,
        "improvements": improvements,
        "info": info,
        "missing": missing,
    }


def compare_files(baseline_path, current_path, tol: float = 0.5,
                  floor: float = 1e-3) -> dict:
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = flatten(json.load(fh))
    with open(current_path, encoding="utf-8") as fh:
        current = flatten(json.load(fh))
    result = compare_metrics(baseline, current, tol=tol, floor=floor)
    result["n_baseline"] = len(baseline)
    result["n_current"] = len(current)
    return result


def _fmt(entry) -> str:
    path, base, cur, rel = entry
    line = f"{path}: {base:g} -> {'missing' if cur is None else f'{cur:g}'}"
    if rel is not None:
        line += f"  ({rel:+.0%})"
    return line


def format_comparison(result: dict, verbose: bool = False) -> str:
    lines = []
    for entry in result["regressions"]:
        lines.append("REGRESSION  " + _fmt(entry))
    for entry in result["missing"]:
        lines.append("MISSING     " + _fmt(entry))
    for entry in result["improvements"]:
        lines.append("improved    " + _fmt(entry))
    if verbose:
        for entry in result["info"]:
            lines.append("            " + _fmt(entry))
    lines.append(
        f"{result['n_baseline']} baseline metrics: "
        f"{len(result['regressions'])} regressed, "
        f"{len(result['missing'])} missing, "
        f"{len(result['improvements'])} improved"
    )
    return "\n".join(lines)
