"""Technology substrate: process nodes and analytical device models."""

from repro.tech.corners import corner_node, standard_corners
from repro.tech.device import (
    dose_to_delta_cd,
    gate_input_cap,
    leakage_current,
    leakage_power,
    on_resistance,
    output_slew,
    parasitic_cap,
    stage_delay,
    threshold_voltage,
)
from repro.tech.node import TechNode, get_node, tech_65nm, tech_90nm

__all__ = [
    "TechNode",
    "get_node",
    "tech_65nm",
    "tech_90nm",
    "threshold_voltage",
    "on_resistance",
    "gate_input_cap",
    "parasitic_cap",
    "stage_delay",
    "output_slew",
    "leakage_current",
    "leakage_power",
    "dose_to_delta_cd",
    "corner_node",
    "standard_corners",
]
