"""Analytical transistor delay and leakage models.

This module is the repository's stand-in for the SPICE simulations the
paper uses to generate Figs. 3-6 and to characterize the standard-cell
libraries.  It implements:

* an **alpha-power-law drive model** -- switching resistance proportional
  to ``L / (W * (Vdd - Vth(L))^alpha)`` -- which makes gate delay
  approximately linear in gate length and in gate width near the nominal
  point (the linearity the paper verifies in Figs. 3-4 and exploits in its
  problem formulation), and

* a **subthreshold leakage model** -- off current proportional to
  ``W * exp(-(Vth(L) - Vth_nom) / (n * vT))`` -- which makes leakage
  exponential in gate length and linear in gate width (Figs. 5-6).

All functions are vectorized over ``l_nm`` / ``w_nm`` (numpy broadcasting).

Units follow :mod:`repro.constants`: nm for L and W, fF for capacitance,
kOhm for resistance, ns for time, uA for current, uW for power.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import KOHM_FF_TO_NS
from repro.tech.node import TechNode

#: 0->50 % switching point of an RC step response, used for propagation delay.
_LN2 = math.log(2.0)

#: 10-90 % rise of an RC step response, used for the output transition time.
_SLEW_RC_FACTOR = 2.2

#: Fraction of the input transition time that adds to stage delay.  Standard
#: first-order slew-dependence of CMOS gate delay (cf. Sakurai-Newton).
_SLEW_DELAY_FACTOR = 0.12


def threshold_voltage(node: TechNode, l_nm) -> np.ndarray:
    """Threshold voltage (V) at printed gate length ``l_nm`` (nm)."""
    return node.vth(l_nm)


def on_resistance(node: TechNode, l_nm, w_nm) -> np.ndarray:
    """Effective switching resistance (kOhm) of a transistor.

    Alpha-power law: the saturation drive current scales as
    ``(W/L) * (Vdd - Vth(L))^alpha``; resistance is its reciprocal scaled
    by the node's ``k_drive`` constant.
    """
    l_nm = np.asarray(l_nm, dtype=float)
    w_nm = np.asarray(w_nm, dtype=float)
    if np.any(l_nm <= 0) or np.any(w_nm <= 0):
        raise ValueError("gate length and width must be positive")
    overdrive = node.vdd - node.vth(l_nm)
    if np.any(overdrive <= 0):
        raise ValueError("device does not turn on: Vdd <= Vth(L)")
    w_um = w_nm / 1000.0
    return node.k_drive * (l_nm / node.l_nominal) / (w_um * overdrive**node.alpha)


def gate_input_cap(node: TechNode, w_nm) -> np.ndarray:
    """Gate (input pin) capacitance in fF for channel width ``w_nm``."""
    return node.cg_per_um * np.asarray(w_nm, dtype=float) / 1000.0


def parasitic_cap(node: TechNode, w_nm) -> np.ndarray:
    """Drain diffusion (self-load) capacitance in fF for width ``w_nm``."""
    return node.cd_per_um * np.asarray(w_nm, dtype=float) / 1000.0


def stage_delay(
    node: TechNode,
    l_nm,
    w_nm,
    c_load_ff,
    input_slew_ns=0.0,
    stack: float = 1.0,
) -> np.ndarray:
    """Propagation delay (ns) of one switching stage.

    Parameters
    ----------
    l_nm, w_nm:
        Printed gate length and effective pull width (nm).
    c_load_ff:
        External load capacitance (fF); the stage's own diffusion
        parasitic is added internally.
    input_slew_ns:
        Input transition time; contributes ``_SLEW_DELAY_FACTOR`` of
        itself to the delay (first-order slew dependence).
    stack:
        Series-stack factor for multi-input gates (a k-high series stack
        drives like a single device with ``stack`` times the resistance).
    """
    r = on_resistance(node, l_nm, w_nm) * stack
    c_total = np.asarray(c_load_ff, dtype=float) + parasitic_cap(node, w_nm)
    return (
        _LN2 * r * c_total * KOHM_FF_TO_NS
        + _SLEW_DELAY_FACTOR * np.asarray(input_slew_ns, dtype=float)
    )


def output_slew(
    node: TechNode,
    l_nm,
    w_nm,
    c_load_ff,
    stack: float = 1.0,
) -> np.ndarray:
    """Output transition time (ns, 10-90 %) of one switching stage."""
    r = on_resistance(node, l_nm, w_nm) * stack
    c_total = np.asarray(c_load_ff, dtype=float) + parasitic_cap(node, w_nm)
    return _SLEW_RC_FACTOR * r * c_total * KOHM_FF_TO_NS


def leakage_current(node: TechNode, l_nm, w_nm, stack: float = 1.0) -> np.ndarray:
    """Subthreshold off-state current (uA) of a transistor.

    Normalized so a device at nominal gate length leaks
    ``i_leak0 * (W / 1 um)`` uA; shorter channels leak exponentially more
    through the Vth roll-off.  ``stack`` models series-stack leakage
    reduction in multi-input gates (divides the current).
    """
    l_nm = np.asarray(l_nm, dtype=float)
    w_nm = np.asarray(w_nm, dtype=float)
    if np.any(l_nm <= 0) or np.any(w_nm <= 0):
        raise ValueError("gate length and width must be positive")
    vth_nom = node.vth0 - node.dibl_v0  # Vth at nominal gate length
    dvth = node.vth(l_nm) - vth_nom
    n_vt = node.subthreshold_swing_n * node.thermal_voltage
    w_um = w_nm / 1000.0
    return node.i_leak0 * w_um * np.exp(-dvth / n_vt) / stack


def leakage_power(node: TechNode, l_nm, w_nm, stack: float = 1.0) -> np.ndarray:
    """Off-state leakage power (uW) = I_off * Vdd."""
    return leakage_current(node, l_nm, w_nm, stack=stack) * node.vdd


def dose_to_delta_cd(dose_percent, dose_sensitivity: float) -> np.ndarray:
    """Convert a percentage dose change into a CD change in nm.

    ``delta_CD = Ds * dose`` with Ds the (negative) dose sensitivity in
    nm/%: increasing dose shrinks the printed feature (paper Fig. 2).
    """
    return np.asarray(dose_percent, dtype=float) * dose_sensitivity
