"""Technology node definitions.

A :class:`TechNode` bundles every process parameter the analytical device
models in :mod:`repro.tech.device` need: nominal gate length, supply,
threshold voltage and its short-channel roll-off, mobility-like drive
constants, and wire parasitics per unit length.

Two calibrated nodes are provided, mirroring the paper's experimental
platform:

* :func:`tech_65nm` — the 65 nm node used for AES-65 / JPEG-65,
* :func:`tech_90nm` — the 90 nm node used for AES-90 / JPEG-90.

The numeric values are chosen so that the derived curves reproduce the
*shapes* the paper reports (Figs. 3-6): gate delay approximately linear in
gate length and width near nominal, leakage exponential in gate length and
linear in width, and the Table II/III trade-off magnitudes (a +5 % dose
uniformly applied yields ~12 % MCT gain at the cost of ~150 % leakage
increase at 65 nm, ~90 % at 90 nm).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import THERMAL_VOLTAGE_25C


@dataclass(frozen=True)
class TechNode:
    """Process parameters for one technology node.

    Attributes
    ----------
    name:
        Human-readable node name, e.g. ``"65nm"``.
    l_nominal:
        Nominal (drawn = printed, at nominal dose) gate length in nm.
    vdd:
        Nominal supply voltage in volts.
    vth0:
        Long-channel threshold voltage in volts.
    dibl_v0:
        Magnitude (V) of the short-channel threshold roll-off at nominal
        gate length.  Vth(L) = vth0 - dibl_v0 * exp(-(L - l_nominal)/l_rolloff).
    l_rolloff:
        Characteristic length (nm) of the exponential Vth roll-off.
    alpha:
        Velocity-saturation exponent of the alpha-power law (1 < alpha <= 2).
    k_drive:
        Drive strength constant: effective switching resistance of a
        transistor is ``k_drive * (L/l_nominal) / (w_um * (vdd-vth)^alpha)``
        in kOhm, with w_um the channel width in um.
    subthreshold_swing_n:
        Subthreshold slope ideality factor n (leakage ~ exp(-Vth/(n*vT))).
    i_leak0:
        Leakage normalization: off-current in uA per um of width for a
        device at nominal L (i.e. with Vth = vth0 - dibl_v0).
    cg_per_um:
        Gate capacitance per um of transistor width, in fF/um.
    cd_per_um:
        Drain (diffusion) capacitance per um of width, in fF/um.
    wire_c_per_um:
        Wire capacitance per um of routed length, fF/um.
    wire_r_per_um:
        Wire resistance per um of routed length, kOhm/um.
    site_width:
        Placement site width in um.
    row_height:
        Placement row height in um.
    w_min:
        Minimum transistor width in nm (paper, 65 nm: ~200 nm).
    w_max:
        Maximum transistor width in nm (paper, 65 nm: >650 nm).
    temperature_c:
        Characterization temperature in Celsius.
    """

    name: str
    l_nominal: float
    vdd: float
    vth0: float
    dibl_v0: float
    l_rolloff: float
    alpha: float
    k_drive: float
    subthreshold_swing_n: float
    i_leak0: float
    cg_per_um: float
    cd_per_um: float
    wire_c_per_um: float
    wire_r_per_um: float
    site_width: float
    row_height: float
    w_min: float
    w_max: float
    temperature_c: float = 25.0
    thermal_voltage: float = field(default=THERMAL_VOLTAGE_25C)

    def vth(self, l_nm: float):
        """Threshold voltage (V) at printed gate length ``l_nm`` (nm).

        Short-channel effect: Vth drops exponentially as L shrinks below
        nominal, which makes shorter gates faster *and* exponentially
        leakier -- the physical root of the paper's timing/leakage
        trade-off.
        """
        import numpy as np

        l_nm = np.asarray(l_nm, dtype=float)
        return self.vth0 - self.dibl_v0 * np.exp(
            -(l_nm - self.l_nominal) / self.l_rolloff
        )


def tech_65nm() -> TechNode:
    """The 65 nm technology node (AES-65 / JPEG-65 testcases)."""
    return TechNode(
        name="65nm",
        l_nominal=65.0,
        vdd=1.0,
        vth0=0.33,
        dibl_v0=0.037,
        l_rolloff=15.0,
        alpha=1.3,
        k_drive=2.6,
        subthreshold_swing_n=1.45,
        i_leak0=0.16,
        cg_per_um=1.25,
        cd_per_um=0.80,
        wire_c_per_um=0.20,
        wire_r_per_um=0.60,
        site_width=0.2,
        row_height=1.8,
        w_min=200.0,
        w_max=660.0,
    )


def tech_90nm() -> TechNode:
    """The 90 nm technology node (AES-90 / JPEG-90 testcases)."""
    return TechNode(
        name="90nm",
        l_nominal=90.0,
        vdd=1.2,
        vth0=0.36,
        dibl_v0=0.031,
        l_rolloff=17.0,
        alpha=1.4,
        k_drive=3.4,
        subthreshold_swing_n=1.5,
        i_leak0=0.40,
        cg_per_um=1.60,
        cd_per_um=1.00,
        wire_c_per_um=0.23,
        wire_r_per_um=0.40,
        site_width=0.28,
        row_height=2.5,
        w_min=280.0,
        w_max=920.0,
    )


_NODES = {"65nm": tech_65nm, "90nm": tech_90nm}


def get_node(name: str) -> TechNode:
    """Look up a technology node by name (``"65nm"`` or ``"90nm"``)."""
    try:
        return _NODES[name]()
    except KeyError:
        raise KeyError(
            f"unknown technology node {name!r}; available: {sorted(_NODES)}"
        ) from None
