"""Process-voltage-temperature corners.

The paper characterizes at a single corner (VDD = 1.0 V, 25 C, process
TT — the condition printed under Figs. 5-6).  Production libraries are
characterized at several corners; this module derives corner variants of
a :class:`~repro.tech.node.TechNode` so the rest of the stack (library
characterization, STA, leakage, DMopt) can run at SS/TT/FF, low/high
voltage, and cold/hot temperature.

Corner physics in the analytical models:

* process: global threshold-voltage shift (slow = higher Vth = slower
  and less leaky; fast = lower Vth),
* voltage: scales the drive overdrive (Vdd - Vth) and leakage power
  (I_off * Vdd),
* temperature: raises the thermal voltage kT/q (exponentially more
  subthreshold leakage when hot) and derates carrier mobility (higher
  ``k_drive``).
"""

from __future__ import annotations

import dataclasses

from repro.tech.node import TechNode

#: Process corner Vth shifts in volts.
_PROCESS_DVTH = {"SS": +0.03, "TT": 0.0, "FF": -0.03}

#: Mobility temperature derating exponent (mu ~ T^-1.5).
_MOBILITY_EXPONENT = 1.5

#: Boltzmann/charge in volts per kelvin.
_KB_OVER_Q = 8.617e-5


def corner_node(
    node: TechNode,
    process: str = "TT",
    vdd_scale: float = 1.0,
    temperature_c: float = 25.0,
) -> TechNode:
    """Derive a PVT-corner variant of a technology node.

    Parameters
    ----------
    node:
        The nominal (TT, nominal VDD, 25 C) node.
    process:
        ``"SS"``, ``"TT"`` or ``"FF"``.
    vdd_scale:
        Supply multiplier (e.g. 0.9 for the low-voltage corner).
    temperature_c:
        Junction temperature in Celsius.
    """
    if process not in _PROCESS_DVTH:
        raise ValueError(
            f"process must be one of {sorted(_PROCESS_DVTH)}, got {process!r}"
        )
    if vdd_scale <= 0:
        raise ValueError("vdd_scale must be positive")
    if temperature_c < -273.0:
        raise ValueError("temperature below absolute zero")

    t_nom_k = node.temperature_c + 273.15
    t_k = temperature_c + 273.15
    mobility_derate = (t_k / t_nom_k) ** _MOBILITY_EXPONENT

    vth0_corner = node.vth0 + _PROCESS_DVTH[process]
    vt_corner = _KB_OVER_Q * t_k

    # absolute off-current scaling: I_off ~ exp(-Vth_nom / (n * vT)), so
    # the corner's i_leak0 (defined at the corner's own nominal-L Vth)
    # follows from the reference condition
    import math

    n_swing = node.subthreshold_swing_n
    vth_nom_ref = node.vth0 - node.dibl_v0
    vth_nom_corner = vth0_corner - node.dibl_v0
    leak_scale = math.exp(
        vth_nom_ref / (n_swing * node.thermal_voltage)
        - vth_nom_corner / (n_swing * vt_corner)
    )

    return dataclasses.replace(
        node,
        name=f"{node.name}-{process}-{vdd_scale:.2f}V-{temperature_c:.0f}C",
        vth0=vth0_corner,
        vdd=node.vdd * vdd_scale,
        k_drive=node.k_drive * mobility_derate,
        i_leak0=node.i_leak0 * leak_scale,
        temperature_c=temperature_c,
        thermal_voltage=vt_corner,
    )


def standard_corners(node: TechNode) -> dict:
    """The usual signoff corner set for a node.

    Returns
    -------
    dict
        ``{"ss_low_hot": ..., "tt_nom": ..., "ff_high_cold": ...}`` --
        the worst-delay, nominal, and worst-leakage/hold corners.
    """
    return {
        "ss_low_hot": corner_node(node, "SS", vdd_scale=0.9,
                                  temperature_c=125.0),
        "tt_nom": corner_node(node, "TT", vdd_scale=1.0, temperature_c=25.0),
        "ff_high_cold": corner_node(node, "FF", vdd_scale=1.1,
                                    temperature_c=-40.0),
    }
