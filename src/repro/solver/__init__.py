"""Convex QP/QCP solvers (the CPLEX substitute)."""

from repro.solver.ipm import solve_qp_ipm
from repro.solver.qcp import METHOD_ADMM, METHOD_IPM, solve_qcp
from repro.solver.qp import solve_qp
from repro.solver.result import (
    STATUS_INFEASIBLE,
    STATUS_MAX_ITER,
    STATUS_SOLVED,
    SolveResult,
)

__all__ = [
    "solve_qp",
    "solve_qp_ipm",
    "solve_qcp",
    "METHOD_ADMM",
    "METHOD_IPM",
    "SolveResult",
    "STATUS_SOLVED",
    "STATUS_MAX_ITER",
    "STATUS_INFEASIBLE",
]
