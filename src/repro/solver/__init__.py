"""Convex QP/QCP solvers (the CPLEX substitute) with a robustness layer."""

from repro.solver.diagnose import (
    FAMILY_DOSE_RANGE,
    FAMILY_SMOOTHNESS,
    FAMILY_TIMING,
    InfeasibilityReport,
    diagnose_infeasibility,
    min_achievable_tau,
)
from repro.solver.ipm import solve_qp_ipm
from repro.solver.qcp import METHOD_ADMM, METHOD_IPM, solve_qcp
from repro.solver.qp import solve_qp
from repro.solver.result import (
    FAILURE_STATUSES,
    STATUS_DIVERGED,
    STATUS_ILL_CONDITIONED,
    STATUS_INFEASIBLE,
    STATUS_MAX_ITER,
    STATUS_SOLVED,
    SolveResult,
    diagnostic_result,
)
from repro.solver.robust import solve_qp_robust

__all__ = [
    "solve_qp",
    "solve_qp_ipm",
    "solve_qp_robust",
    "solve_qcp",
    "diagnose_infeasibility",
    "min_achievable_tau",
    "InfeasibilityReport",
    "FAMILY_DOSE_RANGE",
    "FAMILY_SMOOTHNESS",
    "FAMILY_TIMING",
    "METHOD_ADMM",
    "METHOD_IPM",
    "SolveResult",
    "diagnostic_result",
    "STATUS_SOLVED",
    "STATUS_MAX_ITER",
    "STATUS_INFEASIBLE",
    "STATUS_DIVERGED",
    "STATUS_ILL_CONDITIONED",
    "FAILURE_STATUSES",
]
