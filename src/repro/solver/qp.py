"""Sparse convex QP solver (OSQP-style ADMM).

Solves

    minimize    (1/2) x' P x + q' x
    subject to  l <= A x <= u

with P positive semidefinite, using the operator-splitting ADMM of
Stellato et al. (the OSQP algorithm): a quasi-definite KKT system is
factorized once per rho setting and reused every iteration.  Includes
modified Ruiz equilibration, over-relaxation, per-constraint rho (stiffer
on equalities), and adaptive rho updates with refactorization.

This is the repository's replacement for the CPLEX solver the paper uses;
it is validated against ``scipy.optimize`` on small instances and against
KKT residuals on the full dose-map programs.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import obs, telemetry
from repro.obs import metrics
from repro.solver.guards import prevalidate
from repro.solver.result import (
    STATUS_DIVERGED,
    STATUS_MAX_ITER,
    STATUS_SOLVED,
    SolveResult,
)

_SIGMA = 1e-6
_ALPHA = 1.6
_RHO_EQ_SCALE = 1e3
_RHO_MIN, _RHO_MAX = 1e-6, 1e6


def _ruiz_equilibrate(P, q, A, l, u, iters: int = 10):
    """Modified Ruiz equilibration of the stacked KKT data.

    Returns scaled (P, q, A, l, u) plus the scalings (d, e, c) such that
    x = d * x_scaled, y = e * y_scaled / c, obj = obj_scaled / c.
    """
    n, m = P.shape[0], A.shape[0]
    d = np.ones(n)
    e = np.ones(m)
    c = 1.0
    P = P.copy().tocsc()
    A = A.copy().tocsc()
    q = q.copy()
    l = l.copy()
    u = u.copy()
    for _ in range(iters):
        # column norms of [P; A] give the x-variable scaling
        pc = np.abs(P).max(axis=0).toarray().ravel() if P.nnz else np.zeros(n)
        ac = np.abs(A).max(axis=0).toarray().ravel() if A.nnz else np.zeros(n)
        dx = np.maximum(pc, ac)
        dx[dx == 0] = 1.0
        delta_d = 1.0 / np.sqrt(dx)
        # row norms of A give the constraint scaling
        ar = np.abs(A).max(axis=1).toarray().ravel() if A.nnz else np.zeros(m)
        ar[ar == 0] = 1.0
        delta_e = 1.0 / np.sqrt(ar)

        Dd = sp.diags(delta_d)
        De = sp.diags(delta_e)
        P = (Dd @ P @ Dd).tocsc()
        A = (De @ A @ Dd).tocsc()
        q = delta_d * q
        l = delta_e * l
        u = delta_e * u
        d *= delta_d
        e *= delta_e

        # cost scaling
        pc = np.abs(P).max(axis=0).toarray().ravel() if P.nnz else np.zeros(n)
        denom = max(float(np.mean(pc)), float(np.linalg.norm(q, np.inf)), 1e-12)
        gamma = 1.0 / denom
        gamma = min(max(gamma, 1e-6), 1e6)
        P = P * gamma
        q = q * gamma
        c *= gamma
    return P, q, A, l, u, d, e, c


class _KKT:
    """Factorized quasi-definite KKT system for a given rho vector."""

    def __init__(self, P, A, sigma: float, rho: np.ndarray):
        n, m = P.shape[0], A.shape[0]
        kkt = sp.bmat(
            [
                [P + sigma * sp.eye(n), A.T],
                [A, -sp.diags(1.0 / rho)],
            ],
            format="csc",
        )
        self._lu = spla.splu(kkt)
        self._n = n

    def solve(self, rhs: np.ndarray):
        sol = self._lu.solve(rhs)
        return sol[: self._n], sol[self._n :]


def solve_qp(
    P,
    q,
    A,
    l,
    u,
    max_iter: int = 20000,
    eps_abs: float = 1e-5,
    eps_rel: float = 1e-5,
    rho0: float = 0.1,
    check_every: int = 25,
    adapt_every: int = 100,
    scaling_iters: int = 10,
    x0=None,
    y0=None,
    time_limit: float = None,
) -> SolveResult:
    """Solve the QP (see module docstring).

    Parameters
    ----------
    P:
        (n, n) PSD sparse/dense matrix (only its symmetric part is used).
    q:
        (n,) linear cost.
    A:
        (m, n) constraint matrix.
    l, u:
        (m,) lower/upper constraint bounds; use ``-np.inf``/``np.inf``
        for one-sided constraints and ``l == u`` for equalities.
    x0:
        Optional warm-start point.
    y0:
        Optional dual warm start (a previous result's ``info["y"]``);
        pairs with ``x0`` when chaining sweep points.
    time_limit:
        Optional wall-clock budget in seconds, checked at every residual
        checkpoint; on expiry the best iterate comes back with status
        ``max_iter`` (noted as a time-out in ``info``).

    Returns
    -------
    SolveResult
        ``status`` is ``solved`` on convergence, else ``max_iter`` with
        the best iterate.
    """
    t_start = time.perf_counter()
    P = sp.csc_matrix(P)
    A = sp.csc_matrix(A)
    q = np.asarray(q, dtype=float).ravel()
    l = np.asarray(l, dtype=float).ravel()
    u = np.asarray(u, dtype=float).ravel()
    n, m = P.shape[0], A.shape[0]
    if q.size != n:
        raise ValueError("inconsistent problem dimensions")
    short_circuit = prevalidate(P, q, A, l, u, t_start)
    if short_circuit is not None:
        _emit_solve(short_circuit)
        return short_circuit
    P = 0.5 * (P + P.T)

    Ps, qs, As, ls, us, d, e, c = _ruiz_equilibrate(
        P, q, A, l, u, iters=scaling_iters
    )

    def rho_vector(rho_scalar: float) -> np.ndarray:
        rho = np.full(m, rho_scalar)
        eq = np.isclose(ls, us)
        rho[eq] *= _RHO_EQ_SCALE
        return np.clip(rho, _RHO_MIN, _RHO_MAX)

    rho_scalar = rho0
    rho = rho_vector(rho_scalar)
    kkt = _KKT(Ps, As, _SIGMA, rho)

    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float) / d
    z = np.clip(As @ x, ls, us)
    # duals live in the scaled space: y_unscaled = e * y / c
    y = (
        np.zeros(m)
        if y0 is None
        else np.asarray(y0, dtype=float) * c / e
    )
    warm_started = x0 is not None or y0 is not None

    r_prim_u = r_dual_u = np.inf
    iters_done = max_iter
    diverged = False
    timed_out = False
    finite_snapshot = None
    # per-checkpoint convergence trace (ring buffer; entries are
    # (iter, r_prim, r_dual, rho)), attached to info["trace"]
    trace = deque(maxlen=obs.TRACE_MAXLEN)
    for k in range(1, max_iter + 1):
        rhs = np.concatenate([_SIGMA * x - qs, z - y / rho])
        x_tilde, nu = kkt.solve(rhs)
        z_tilde = z + (nu - y) / rho
        x = _ALPHA * x_tilde + (1 - _ALPHA) * x
        z_relax = _ALPHA * z_tilde + (1 - _ALPHA) * z
        z_new = np.clip(z_relax + y / rho, ls, us)
        y = y + rho * (z_relax - z_new)
        z = z_new

        if k % check_every == 0 or k == max_iter:
            if not (
                np.all(np.isfinite(x))
                and np.all(np.isfinite(z))
                and np.all(np.isfinite(y))
            ):
                # numeric blow-up: fall back to the last finite
                # checkpoint and stamp the result as diverged
                diverged = True
                iters_done = k
                if finite_snapshot is not None:
                    x, z, y = finite_snapshot
                break
            finite_snapshot = (x.copy(), z.copy(), y.copy())
            # unscaled quantities
            x_u = d * x
            z_u = z / e
            y_u = e * y / c
            ax_u = A @ x_u
            r_prim_u = float(np.linalg.norm(ax_u - z_u, np.inf)) if m else 0.0
            px_u = P @ x_u
            aty_u = A.T @ y_u
            r_dual_u = float(np.linalg.norm(px_u + q + aty_u, np.inf))
            eps_p = eps_abs + eps_rel * max(
                np.linalg.norm(ax_u, np.inf) if m else 0.0,
                np.linalg.norm(z_u, np.inf) if m else 0.0,
            )
            eps_d = eps_abs + eps_rel * max(
                np.linalg.norm(px_u, np.inf),
                np.linalg.norm(q, np.inf),
                np.linalg.norm(aty_u, np.inf),
            )
            trace.append((k, r_prim_u, r_dual_u, rho_scalar))
            if r_prim_u <= eps_p and r_dual_u <= eps_d:
                iters_done = k
                break
            if (
                time_limit is not None
                and time.perf_counter() - t_start > time_limit
            ):
                timed_out = True
                iters_done = k
                break
            if k % adapt_every == 0 and k < max_iter:
                # adaptive rho (OSQP heuristic)
                num = r_prim_u / max(eps_p, 1e-12)
                den = r_dual_u / max(eps_d, 1e-12)
                ratio = np.sqrt(num / max(den, 1e-12))
                if ratio > 5.0 or ratio < 0.2:
                    rho_scalar = float(
                        np.clip(rho_scalar * ratio, _RHO_MIN, _RHO_MAX)
                    )
                    rho = rho_vector(rho_scalar)
                    kkt = _KKT(Ps, As, _SIGMA, rho)

    x_u = d * x
    obj = float(0.5 * x_u @ (P @ x_u) + q @ x_u)
    if diverged:
        status = STATUS_DIVERGED
    elif timed_out:
        status = STATUS_MAX_ITER
    else:
        status = STATUS_SOLVED if iters_done < max_iter or (
            r_prim_u <= eps_abs + eps_rel and r_dual_u <= eps_abs + eps_rel
        ) else STATUS_MAX_ITER
    # the break sets iters_done < max_iter only on convergence; a final-
    # iteration convergence is caught by the residual check above
    if status == STATUS_MAX_ITER and r_prim_u < np.inf:
        x_u2 = d * x
        # recheck final residuals against plain tolerances
        ax_u = A @ x_u2
        z_u = z / e
        y_u = e * y / c
        r_p = float(np.linalg.norm(ax_u - z_u, np.inf)) if m else 0.0
        r_d = float(np.linalg.norm(P @ x_u2 + q + A.T @ y_u, np.inf))
        if r_p <= eps_abs * 10 and r_d <= eps_abs * 10:
            status = STATUS_SOLVED

    info = {"rho": rho_scalar, "y": e * y / c, "trace": list(trace)}
    if diverged:
        info["note"] = (
            "non-finite iterate: last finite checkpoint returned"
            if finite_snapshot is not None
            else "non-finite iterate before the first checkpoint"
        )
        info["failed_at_iter"] = iters_done
    elif timed_out and status == STATUS_MAX_ITER:
        info["note"] = f"time limit ({time_limit:.3g}s) reached"
        info["timed_out"] = True
    result = SolveResult(
        status=status,
        x=x_u,
        obj=obj,
        iterations=iters_done,
        r_prim=r_prim_u,
        r_dual=r_dual_u,
        solve_time=time.perf_counter() - t_start,
        info=info,
        warm_started=warm_started,
    )
    _emit_solve(result)
    return result


def _emit_solve(result: SolveResult):
    if not telemetry.enabled():
        return
    metrics.inc("solver.admm.solves")
    metrics.observe(
        "solver.admm.iterations."
        + ("warm" if result.warm_started else "cold"),
        result.iterations,
    )
    telemetry.emit(
        "solve",
        backend="admm",
        status=result.status,
        iterations=result.iterations,
        r_prim=result.r_prim,
        r_dual=result.r_dual,
        seconds=result.solve_time,
        warm_started=result.warm_started,
        trace=result.info.get("trace"),
        note=result.info.get("note"),
    )
