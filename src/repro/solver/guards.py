"""Shared degenerate-input handling for the QP backends.

Both :func:`repro.solver.qp.solve_qp` (ADMM) and
:func:`repro.solver.ipm.solve_qp_ipm` route their inputs through these
checks before touching any factorization, so degenerate problems --
trivially inconsistent bounds, constraint systems with no finite row,
or zero-row constraint matrices -- come back as diagnostic
:class:`~repro.solver.result.SolveResult` objects rather than
exceptions raised from deep inside an iteration loop.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.solver.result import (
    STATUS_ILL_CONDITIONED,
    STATUS_INFEASIBLE,
    STATUS_SOLVED,
    SolveResult,
    diagnostic_result,
)


def bounds_conflicts(l, u, tol: float = 1e-12) -> np.ndarray:
    """Row indices where ``l > u`` (trivial primal infeasibility)."""
    return np.nonzero(l > u + tol)[0]


def infeasible_bounds_result(l, u, n: int, t_start: float) -> SolveResult:
    """Diagnostic ``infeasible`` result for ``l > u`` rows."""
    rows = bounds_conflicts(l, u)
    worst = int(rows[np.argmax((l - u)[rows])])
    return diagnostic_result(
        STATUS_INFEASIBLE,
        n,
        f"trivially infeasible bounds: l > u on {rows.size} row(s)",
        solve_time=time.perf_counter() - t_start,
        bound_conflicts=rows.tolist()[:16],
        n_bound_conflicts=int(rows.size),
        worst_row=worst,
        worst_gap=float((l - u)[worst]),
    )


def solve_unconstrained(P, q, t_start: float,
                        reg: float = 1e-9) -> SolveResult:
    """Minimize ``(1/2)x'Px + q'x`` with no (finite) constraints.

    An all-infinite bound set leaves a plain regularized least-squares
    problem; solving it directly keeps "no finite constraints" a valid
    input instead of a :class:`ValueError`.
    """
    n = q.size
    N = (sp.csc_matrix(P) + reg * sp.eye(n)).tocsc()
    try:
        x = spla.splu(N).solve(-np.asarray(q, dtype=float))
    except RuntimeError:
        return diagnostic_result(
            STATUS_ILL_CONDITIONED,
            n,
            "unconstrained normal matrix is singular",
            solve_time=time.perf_counter() - t_start,
        )
    if not np.all(np.isfinite(x)):
        return diagnostic_result(
            STATUS_ILL_CONDITIONED,
            n,
            "unconstrained solve produced non-finite iterate",
            solve_time=time.perf_counter() - t_start,
        )
    obj = float(0.5 * x @ (P @ x) + q @ x)
    return SolveResult(
        status=STATUS_SOLVED,
        x=x,
        obj=obj,
        iterations=1,
        r_prim=0.0,
        r_dual=float(np.linalg.norm(P @ x + q, np.inf)),
        solve_time=time.perf_counter() - t_start,
        info={"note": "no finite constraints: solved unconstrained"},
    )


def prevalidate(P, q, A, l, u, t_start: float):
    """Common degenerate-input screen for both QP backends.

    Returns a diagnostic :class:`SolveResult` when the problem cannot
    (or need not) enter the iterative solver, else ``None``.
    Dimension mismatches still raise ``ValueError`` -- those are caller
    bugs, not properties of the problem data.
    """
    n = q.size
    m = A.shape[0]
    if P.shape != (n, n) or A.shape[1] != n:
        raise ValueError("inconsistent problem dimensions")
    if l.size != m or u.size != m:
        raise ValueError("bounds must match the constraint count")
    if bounds_conflicts(l, u).size:
        return infeasible_bounds_result(l, u, n, t_start)
    if m == 0 or not (np.isfinite(l).any() or np.isfinite(u).any()):
        return solve_unconstrained(P, q, t_start)
    return None
