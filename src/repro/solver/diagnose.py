"""Infeasibility diagnosis for DMopt programs (relax-and-resolve probing).

When a DMopt solve comes back ``infeasible`` the interesting question
is *which constraint family kills it*: the dose range ``L <= d <= U``
(paper eq. 3/8), the smoothness bound ``delta`` (eq. 4/9), or the
clock bound ``tau`` (eq. 6/11).  :func:`diagnose_infeasibility` probes
this by re-solving feasibility problems with one family relaxed at a
time; a family whose relaxation restores feasibility is implicated.

For the timing family the diagnosis is quantitative: the tightest
achievable clock bound ``tau_min`` is found by minimizing ``T`` subject
to every *other* constraint, so the report carries the minimal slack
``tau_min - tau`` a caller must concede -- the paper's tau/delta
trade-off surfaced as data instead of a dead solve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro import telemetry
from repro.solver.robust import METHOD_IPM, solve_qp_robust

#: Constraint family labels used in reports and probes.
FAMILY_DOSE_RANGE = "dose_range"
FAMILY_SMOOTHNESS = "smoothness"
FAMILY_TIMING = "timing"


@dataclass
class InfeasibilityReport:
    """Outcome of relax-and-resolve probing on an infeasible DMopt solve.

    Attributes
    ----------
    blocking:
        Constraint families whose relaxation (alone) restores
        feasibility, in probe order.  Empty when no single family
        explains the conflict (structurally infeasible program).
    tau_requested:
        The clock bound that was asked for (``None`` in QCP mode).
    tau_min:
        Tightest achievable clock bound under the dose-range and
        smoothness limits (``None`` when even the clock-free program is
        infeasible).
    tau_slack_needed:
        ``max(0, tau_min - tau_requested)`` -- the minimal concession
        that would make the program feasible, when both are known.
    probes:
        Per-family probe outcome: family -> solver status string.
    seconds:
        Wall-clock cost of the diagnosis.
    """

    blocking: list = field(default_factory=list)
    tau_requested: float = None
    tau_min: float = None
    tau_slack_needed: float = None
    probes: dict = field(default_factory=dict)
    seconds: float = 0.0

    def summary(self) -> str:
        if not self.blocking:
            return "infeasible: no single constraint family explains it"
        parts = [f"infeasible: blocking families {self.blocking}"]
        if self.tau_min is not None and self.tau_requested is not None:
            parts.append(
                f"tau={self.tau_requested:.4f} requested but "
                f"tau_min={self.tau_min:.4f} achievable "
                f"(needs +{self.tau_slack_needed:.4f} ns slack)"
            )
        elif self.tau_min is not None:
            parts.append(f"tau_min={self.tau_min:.4f} achievable")
        return "; ".join(parts)


def _relaxed_bounds(form, family, tau):
    """(l, u) with one constraint family's rows opened to +-inf."""
    l = form.l.copy()
    u = form.u.copy()
    u[form.row_clock] = np.inf if tau is None else float(tau)
    nr, ns = form.n_range_rows, form.n_smooth_rows
    if family == FAMILY_DOSE_RANGE:
        l[:nr] = -np.inf
        u[:nr] = np.inf
    elif family == FAMILY_SMOOTHNESS:
        l[nr : nr + ns] = -np.inf
        u[nr : nr + ns] = np.inf
    elif family == FAMILY_TIMING:
        u[form.row_clock] = np.inf
    return l, u


def _feasibility_probe(form, l, u, qp_kwargs=None):
    """Solve a pure feasibility problem over the given bounds.

    A tiny ridge keeps the IPM's normal matrix positive definite; the
    objective value is irrelevant, only the status matters.
    """
    n = form.n_vars
    ridge = sp.eye(n, format="csc") * 1e-8
    return solve_qp_robust(
        ridge,
        np.zeros(n),
        form.A,
        l,
        u,
        method=METHOD_IPM,
        qp_kwargs=qp_kwargs,
    )


def min_achievable_tau(form, qp_kwargs: dict = None):
    """Tightest clock bound achievable under the non-timing constraints.

    Minimizes ``T`` subject to every constraint except the clock row.
    Returns ``(tau_min, SolveResult)``; ``tau_min`` is ``None`` when
    even that program fails to solve.
    """
    n = form.n_vars
    c = np.zeros(n)
    c[form.idx_T] = 1.0
    l = form.l.copy()
    u = form.u.copy()
    u[form.row_clock] = np.inf
    ridge = sp.eye(n, format="csc") * 1e-10
    res = solve_qp_robust(ridge, c, form.A, l, u, method=METHOD_IPM,
                          qp_kwargs=qp_kwargs)
    if res.ok:
        return float(res.x[form.idx_T]), res
    return None, res


def diagnose_infeasibility(
    form,
    tau: float = None,
    qp_kwargs: dict = None,
) -> InfeasibilityReport:
    """Attribute an infeasible DMopt program to a constraint family.

    Parameters
    ----------
    form:
        The :class:`~repro.core.formulate.Formulation` that produced the
        infeasible solve.
    tau:
        The clock bound in force during that solve (``None`` when the
        clock row was open, e.g. QCP mode).
    qp_kwargs:
        Forwarded to the probe solves.

    Returns
    -------
    InfeasibilityReport
    """
    t0 = time.perf_counter()
    report = InfeasibilityReport(tau_requested=tau)

    families = [FAMILY_TIMING, FAMILY_DOSE_RANGE, FAMILY_SMOOTHNESS]
    if tau is None:
        # without a clock bound the timing family cannot be the culprit
        families = [FAMILY_DOSE_RANGE, FAMILY_SMOOTHNESS]
    for family in families:
        l, u = _relaxed_bounds(form, family, tau)
        probe = _feasibility_probe(form, l, u, qp_kwargs=qp_kwargs)
        report.probes[family] = probe.status
        if probe.ok:
            report.blocking.append(family)

    if tau is not None and FAMILY_TIMING in report.blocking:
        tau_min, _ = min_achievable_tau(form, qp_kwargs=qp_kwargs)
        report.tau_min = tau_min
        if tau_min is not None:
            report.tau_slack_needed = max(0.0, tau_min - float(tau))

    report.seconds = time.perf_counter() - t0
    telemetry.emit(
        "infeasibility",
        blocking=report.blocking,
        tau_requested=report.tau_requested,
        tau_min=report.tau_min,
        tau_slack_needed=report.tau_slack_needed,
        probes=report.probes,
        seconds=report.seconds,
    )
    return report
