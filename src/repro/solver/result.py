"""Solver result container and status codes."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Converged within tolerances.
STATUS_SOLVED = "solved"
#: Iteration limit reached before convergence (best iterate returned).
STATUS_MAX_ITER = "max_iter"
#: The problem was detected to be (primal) infeasible.
STATUS_INFEASIBLE = "infeasible"


@dataclass
class SolveResult:
    """Outcome of a QP/QCP solve.

    Attributes
    ----------
    status:
        One of the STATUS_* constants.
    x:
        Primal solution (best iterate when not converged).
    obj:
        Objective value at ``x``.
    iterations:
        ADMM iterations used (summed over bisection steps for QCP).
    r_prim, r_dual:
        Final unscaled primal/dual residual infinity norms.
    solve_time:
        Wall-clock seconds.
    info:
        Solver-specific extras (e.g. QCP's multiplier ``lam``).
    warm_started:
        True when the solve was seeded from a previous solution (sweep
        neighbor, QCP bisection predecessor, or guard retry) rather than
        the solver's cold default point.
    """

    status: str
    x: np.ndarray
    obj: float
    iterations: int
    r_prim: float
    r_dual: float
    solve_time: float
    info: dict = field(default_factory=dict)
    warm_started: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_SOLVED

    def __repr__(self):
        warm = ", warm" if self.warm_started else ""
        return (
            f"SolveResult({self.status}, obj={self.obj:.6g}, "
            f"iters={self.iterations}, r_prim={self.r_prim:.2e}, "
            f"r_dual={self.r_dual:.2e}, {self.solve_time:.2f}s{warm})"
        )
