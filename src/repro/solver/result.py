"""Solver result container and status codes."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Converged within tolerances.
STATUS_SOLVED = "solved"
#: Iteration limit reached before convergence (best iterate returned).
STATUS_MAX_ITER = "max_iter"
#: The problem was detected to be (primal) infeasible.
STATUS_INFEASIBLE = "infeasible"
#: Iterates left the numeric range (NaN/Inf); the last finite iterate is
#: returned but must not be signed off as a solution.
STATUS_DIVERGED = "diverged"
#: A linear system inside the solver was numerically singular; the best
#: iterate so far is returned.
STATUS_ILL_CONDITIONED = "ill_conditioned"

#: Statuses that mark a failed solve (the fallback chain retries these,
#: except ``infeasible``, which no backend change can fix).
FAILURE_STATUSES = (STATUS_INFEASIBLE, STATUS_DIVERGED,
                    STATUS_ILL_CONDITIONED)


@dataclass
class SolveResult:
    """Outcome of a QP/QCP solve.

    Attributes
    ----------
    status:
        One of the STATUS_* constants.
    x:
        Primal solution (best iterate when not converged).
    obj:
        Objective value at ``x``.
    iterations:
        ADMM iterations used (summed over bisection steps for QCP).
    r_prim, r_dual:
        Final unscaled primal/dual residual infinity norms.
    solve_time:
        Wall-clock seconds.
    info:
        Solver-specific extras (e.g. QCP's multiplier ``lam``, the
        fallback chain's ``attempts`` trail, or a diagnostic ``note``).
    warm_started:
        True when the solve was seeded from a previous solution (sweep
        neighbor, QCP bisection predecessor, or guard retry) rather than
        the solver's cold default point.
    """

    status: str
    x: np.ndarray
    obj: float
    iterations: int
    r_prim: float
    r_dual: float
    solve_time: float
    info: dict = field(default_factory=dict)
    warm_started: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_SOLVED

    @property
    def failed(self) -> bool:
        """True for diagnostic statuses whose iterate must not be used."""
        return self.status in FAILURE_STATUSES

    def __repr__(self):
        warm = ", warm" if self.warm_started else ""
        return (
            f"SolveResult({self.status}, obj={self.obj:.6g}, "
            f"iters={self.iterations}, r_prim={self.r_prim:.2e}, "
            f"r_dual={self.r_dual:.2e}, {self.solve_time:.2f}s{warm})"
        )


def diagnostic_result(status: str, n: int, note: str,
                      solve_time: float = 0.0, **info) -> SolveResult:
    """A zero-iterate :class:`SolveResult` for degenerate inputs.

    Used when a solve cannot even start (``l > u`` bounds, empty
    problems): the caller gets a structured diagnosis instead of a
    traceback, per the robustness contract of :mod:`repro.solver.robust`.
    """
    payload = {"note": note}
    payload.update(info)
    return SolveResult(
        status=status,
        x=np.zeros(int(n)),
        obj=float("nan"),
        iterations=0,
        r_prim=float("inf"),
        r_dual=float("inf"),
        solve_time=solve_time,
        info=payload,
    )
