"""Solver fallback/retry chain: IPM -> regularized IPM -> ADMM.

The dose-map programs are usually well behaved, but a sweep can hit an
ill-conditioned normal matrix (singular SuperLU factorization), a
diverging Mehrotra step, or a warm-start seed that blows up the first
scaling matrix.  :func:`solve_qp_robust` wraps the two QP backends in a
status-driven chain so callers (:func:`repro.core.dmopt.optimize_dose_map`,
the QCP bisection, dosePl) never see an uncaught exception for a
recoverable numeric failure:

1. primary backend (IPM by default) with the caller's warm state;
2. on ``diverged`` / ``ill_conditioned`` / ``max_iter``: a **cold,
   diagonally regularized** retry of the IPM (``reg`` raised from 1e-9
   to 1e-6 -- enough to factor rank-deficient normal systems without
   visibly perturbing the optimum);
3. on continued failure: the ADMM backend (first-order, factorization
   of a quasi-definite KKT system -- immune to the normal-matrix
   conditioning that stops the IPM), cold-started.

``infeasible`` is not retried across backends -- no solver can fix an
infeasible problem -- but a warm-started infeasible verdict is
re-checked cold once, since a bad seed can masquerade as dual blow-up.
The full attempt trail is recorded in ``info["attempts"]`` and, when
telemetry is on, as ``fallback`` events in the run manifest.
"""

from __future__ import annotations

import time

import numpy as np

from repro import telemetry
from repro.obs import metrics
from repro.resilience import chaos
from repro.solver.ipm import solve_qp_ipm
from repro.solver.qp import solve_qp
from repro.solver.result import (
    STATUS_DIVERGED,
    STATUS_INFEASIBLE,
    SolveResult,
)

METHOD_ADMM = "admm"
METHOD_IPM = "ipm"

#: Normal-matrix regularization used by the chain's IPM retry step.
RETRY_REG = 1e-6


def _residual_score(res: SolveResult) -> float:
    score = max(res.r_prim, res.r_dual)
    return score if np.isfinite(score) else np.inf


def _ipm(P, q, A, l, u, warm=None, workspace=None, qp_kwargs=None,
         **overrides):
    kwargs = dict(qp_kwargs or {})
    kwargs.update(overrides)
    return solve_qp_ipm(P, q, A, l, u, warm=warm, workspace=workspace,
                        **kwargs)


def _admm(P, q, A, l, u, warm, qp_kwargs, time_limit=None):
    # Only forward kwargs ADMM understands; IPM-tuned ``max_iter``/
    # ``tol`` values would cripple a first-order method.
    kwargs = {
        k: v
        for k, v in qp_kwargs.items()
        if k in ("eps_abs", "eps_rel", "rho0", "check_every",
                 "adapt_every", "scaling_iters")
    }
    warm = warm or {}
    return solve_qp(P, q, A, l, u, x0=warm.get("x"), y0=warm.get("y"),
                    time_limit=time_limit, **kwargs)


def solve_qp_robust(
    P,
    q,
    A,
    l,
    u,
    method: str = METHOD_IPM,
    qp_kwargs: dict = None,
    warm: dict = None,
    workspace: dict = None,
    time_limit: float = None,
) -> SolveResult:
    """QP solve with the fallback/retry chain (see module docstring).

    Parameters
    ----------
    method:
        Primary backend, ``"ipm"`` (default) or ``"admm"``.  The chain
        always ends on the *other* backend, so a recoverable numeric
        failure in one formulation of the KKT system is retried in the
        other.
    qp_kwargs:
        Extra keyword arguments for the primary backend (only the
        ADMM-compatible subset is forwarded on an ADMM fallback).
    warm:
        Previous solution state ``{"x": ..., "z": ..., "y": ...}``;
        superset of both backends' warm formats.  Retry steps always
        run cold -- a bad seed is one of the failure modes the chain
        exists to shed.
    workspace:
        IPM pattern workspace dict, shared across chain steps and calls.
    time_limit:
        Wall-clock budget in seconds shared by the *whole* chain: each
        step gets the remaining time, a timed-out backend yields to the
        next step, and when the budget is exhausted the best attempt so
        far is returned (status ``max_iter``) instead of starting
        another backend.

    Returns
    -------
    SolveResult
        The first converged attempt, else the infeasibility verdict,
        else the attempt with the smallest KKT residual.
        ``info["attempts"]`` lists every step taken as
        ``{step, backend, status, iterations}`` dicts.
    """
    if method not in (METHOD_ADMM, METHOD_IPM):
        raise ValueError(f"method must be 'admm' or 'ipm', got {method!r}")
    qp_kwargs = dict(qp_kwargs or {})
    attempts = []
    results = []
    deadline = (
        time.perf_counter() + float(time_limit)
        if time_limit is not None
        else None
    )

    def remaining():
        """Seconds left in the chain's budget (None = unlimited)."""
        if deadline is None:
            return None
        return deadline - time.perf_counter()

    def run(step: str, backend: str, **call_kwargs):
        if chaos.solver_nan():
            # injected numeric failure: a fabricated diverged verdict,
            # exercising the same path as a real NaN blow-up
            res = SolveResult(
                status=STATUS_DIVERGED,
                x=np.zeros(np.asarray(q).size),
                obj=float("nan"),
                iterations=0,
                r_prim=float("inf"),
                r_dual=float("inf"),
                solve_time=0.0,
                info={"note": "chaos: injected solver NaN"},
            )
        else:
            extra = {}
            rem = remaining()
            if rem is not None:
                extra["time_limit"] = max(rem, 1e-3)
            if backend == METHOD_IPM:
                res = _ipm(P, q, A, l, u, qp_kwargs=qp_kwargs,
                           **extra, **call_kwargs)
            else:
                res = _admm(P, q, A, l, u, call_kwargs.get("warm"),
                            qp_kwargs, **extra)
        attempts.append(
            {
                "step": step,
                "backend": backend,
                "status": res.status,
                "iterations": res.iterations,
            }
        )
        if telemetry.enabled() and step != primary:
            # retries/backend switches only: the happy path is one
            # primary attempt and no fallback activity
            metrics.inc("solver.fallback.attempts")
            metrics.inc(f"solver.fallback.step.{step}")
        telemetry.emit("fallback", step=step, backend=backend,
                       status=res.status, iterations=res.iterations,
                       r_prim=res.r_prim, r_dual=res.r_dual)
        results.append(res)
        return res

    def finish(res: SolveResult) -> SolveResult:
        res.info["attempts"] = attempts
        return res

    def best_effort(note: str) -> SolveResult:
        for candidate in results:
            if candidate.status == STATUS_INFEASIBLE:
                return finish(candidate)
        best = min(results, key=_residual_score)
        if best.info.get("note"):
            note += f" (best attempt: {best.info['note']})"
        best.info["note"] = note
        return finish(best)

    def out_of_time() -> bool:
        rem = remaining()
        return rem is not None and rem <= 0

    primary, secondary = (
        (METHOD_IPM, METHOD_ADMM) if method == METHOD_IPM
        else (METHOD_ADMM, METHOD_IPM)
    )
    res = run(primary, primary, warm=warm, workspace=workspace)
    if res.ok:
        return finish(res)

    if res.status == STATUS_INFEASIBLE:
        if not res.warm_started:
            return finish(res)
        if out_of_time():
            return best_effort("solver time budget exhausted")
        # a pathological seed can blow up the duals and fake an
        # infeasibility verdict: confirm cold before reporting
        res = run(f"{primary}-cold", primary, workspace=workspace)
        if res.ok or res.status == STATUS_INFEASIBLE:
            return finish(res)

    if out_of_time():
        return best_effort("solver time budget exhausted")

    if primary == METHOD_IPM:
        # diverged / ill-conditioned / max_iter: regularize and go cold
        res = run("ipm-regularized", METHOD_IPM, reg=RETRY_REG)
        if res.ok or res.status == STATUS_INFEASIBLE:
            return finish(res)
        if out_of_time():
            return best_effort("solver time budget exhausted")

    res = run(secondary, secondary)
    if res.ok:
        return finish(res)

    return best_effort("fallback chain exhausted without convergence")
