"""Primal-dual interior-point QP solver (Mehrotra predictor-corrector).

Solves the same problem as :func:`repro.solver.qp.solve_qp`:

    minimize    (1/2) x' P x + q' x
    subject to  l <= A x <= u

by converting the two-sided constraints to inequality form ``G x <= h``
and running a standard Mehrotra predictor-corrector method on the
perturbed KKT conditions.  Each iteration factorizes the quasi-definite
augmented system

    [ P    G' ] [dx]   [rhs_x]
    [ G  -S/Z ] [dz] = [rhs_z]

with SuperLU.  Iteration counts are nearly independent of conditioning,
which makes this backend much faster than ADMM on the dose-map programs
(whose arrival-time variables are cost-free and create flat directions
that stall first-order methods).
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.solver.result import (
    STATUS_INFEASIBLE,
    STATUS_MAX_ITER,
    STATUS_SOLVED,
    SolveResult,
)


def _to_inequalities(A, l, u):
    """Stack finite-bound rows of l <= Ax <= u into G x <= h."""
    A = sp.csr_matrix(A)
    rows_u = np.isfinite(u)
    rows_l = np.isfinite(l)
    blocks, rhs = [], []
    if rows_u.any():
        blocks.append(A[rows_u])
        rhs.append(u[rows_u])
    if rows_l.any():
        blocks.append(-A[rows_l])
        rhs.append(-l[rows_l])
    if not blocks:
        raise ValueError("problem has no finite constraints")
    G = sp.vstack(blocks, format="csc")
    h = np.concatenate(rhs)
    return G, h


def solve_qp_ipm(
    P,
    q,
    A,
    l,
    u,
    max_iter: int = 60,
    tol: float = 1e-7,
    x0=None,
) -> SolveResult:
    """Interior-point solve of ``min (1/2)x'Px + q'x s.t. l <= Ax <= u``.

    Parameters mirror :func:`repro.solver.qp.solve_qp`; ``x0`` is accepted
    for API compatibility but interior-point methods do not benefit from
    primal warm starts, so it is ignored.

    Returns
    -------
    SolveResult
    """
    t_start = time.perf_counter()
    P = sp.csc_matrix(P)
    P = 0.5 * (P + P.T)
    q = np.asarray(q, dtype=float).ravel()
    A = sp.csc_matrix(A)
    l = np.asarray(l, dtype=float).ravel()
    u = np.asarray(u, dtype=float).ravel()
    n = q.size
    if P.shape != (n, n) or A.shape[1] != n:
        raise ValueError("inconsistent problem dimensions")
    if l.size != A.shape[0] or u.size != A.shape[0]:
        raise ValueError("bounds must match the constraint count")
    if np.any(l > u + 1e-12):
        raise ValueError("found l > u: trivially infeasible bounds")

    G, h = _to_inequalities(A, l, u)
    m = h.size
    Gt = G.T.tocsc()

    # a small primal regularization keeps the normal matrix positive
    # definite even when P has a null space
    reg = 1e-9 * sp.eye(n)

    x = np.zeros(n)
    s = np.maximum(h - G @ x, 1.0)
    z = np.ones(m)

    scale_obj = max(1.0, float(np.linalg.norm(q, np.inf)))
    scale_h = max(1.0, float(np.linalg.norm(h, np.inf)))

    def _max_step(v, dv):
        neg = dv < 0
        if not np.any(neg):
            return 1.0
        return min(1.0, float(np.min(-v[neg] / dv[neg])))

    status = STATUS_MAX_ITER
    iters_done = max_iter
    for it in range(1, max_iter + 1):
        r_dual = P @ x + q + G.T @ z
        r_prim = G @ x + s - h
        mu = float(s @ z) / m

        if (
            np.linalg.norm(r_prim, np.inf) <= tol * scale_h
            and np.linalg.norm(r_dual, np.inf) <= tol * scale_obj
            and mu <= tol
        ):
            status = STATUS_SOLVED
            iters_done = it - 1
            break

        # Normal equations: eliminate dz = W^{-1} (G dx - r2), giving
        # (P + G' W^{-1} G) dx = r1 + G' W^{-1} r2 with W = diag(s/z).
        w_inv = z / s
        normal = (P + reg + Gt @ sp.diags(w_inv) @ G).tocsc()
        try:
            lu = spla.splu(normal)
        except RuntimeError:
            break  # singular system: return best effort

        def _solve_step(r1, r2):
            dx = lu.solve(r1 + Gt @ (w_inv * r2))
            dz = w_inv * (G @ dx - r2)
            return dx, dz

        # --- affine (predictor) step
        dx_a, dz_a = _solve_step(-r_dual, -r_prim + s)
        ds_a = -s - (s / z) * dz_a

        alpha_a = min(_max_step(s, ds_a), _max_step(z, dz_a))
        mu_aff = float((s + alpha_a * ds_a) @ (z + alpha_a * dz_a)) / m
        sigma = (mu_aff / max(mu, 1e-300)) ** 3

        # --- corrector step
        rc = -s * z - ds_a * dz_a + sigma * mu
        dx, dz = _solve_step(-r_dual, -r_prim - rc / z)
        ds = (rc - s * dz) / z

        eta = 0.99 if mu > 1e-6 else 0.999
        alpha = eta * min(_max_step(s, ds), _max_step(z, dz))
        x = x + alpha * dx
        s = s + alpha * ds
        z = z + alpha * dz

        # divergence check: an infeasible problem drives the duals to
        # infinity while the primal residual stalls
        if not np.all(np.isfinite(x)) or float(np.abs(z).max()) > 1e14:
            status = STATUS_INFEASIBLE
            iters_done = it
            break

    r_dual = P @ x + q + G.T @ z
    r_prim = G @ x + s - h
    mu = float(s @ z) / m
    if (
        status != STATUS_SOLVED
        and np.linalg.norm(r_prim, np.inf) <= 10 * tol * scale_h
        and np.linalg.norm(r_dual, np.inf) <= 10 * tol * scale_obj
        and mu <= 10 * tol
    ):
        status = STATUS_SOLVED

    obj = float(0.5 * x @ (P @ x) + q @ x)
    return SolveResult(
        status=status,
        x=x,
        obj=obj,
        iterations=iters_done,
        r_prim=float(np.linalg.norm(r_prim, np.inf)),
        r_dual=float(np.linalg.norm(r_dual, np.inf)),
        solve_time=time.perf_counter() - t_start,
        info={"mu": mu},
    )
