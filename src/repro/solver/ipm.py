"""Primal-dual interior-point QP solver (Mehrotra predictor-corrector).

Solves the same problem as :func:`repro.solver.qp.solve_qp`:

    minimize    (1/2) x' P x + q' x
    subject to  l <= A x <= u

by converting the two-sided constraints to inequality form ``G x <= h``
and running a standard Mehrotra predictor-corrector method on the
perturbed KKT conditions.  Each iteration factorizes the normal matrix

    N(w) = P + reg + G' diag(w) G

with SuperLU.  Iteration counts are nearly independent of conditioning,
which makes this backend much faster than ADMM on the dose-map programs
(whose arrival-time variables are cost-free and create flat directions
that stall first-order methods).

Repeated solves of structurally identical problems (the dose-map
driver's sweep points, QCP bisection steps, and guard retries) share an
:class:`IPMWorkspace`: the stacked ``G``, the symbolic sparsity of
``N`` and a precomputed scatter operator turn the per-iteration normal
assembly from two sparse-sparse products into a single SpMV.  Pass a
mutable dict as ``workspace`` to carry it across calls; a ``warm``
state (previous ``x``/``z``) typically cuts iteration counts roughly in
half on adjacent sweep points.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import obs, telemetry
from repro.obs import metrics
from repro.solver.guards import prevalidate
from repro.solver.result import (
    STATUS_DIVERGED,
    STATUS_ILL_CONDITIONED,
    STATUS_INFEASIBLE,
    STATUS_MAX_ITER,
    STATUS_SOLVED,
    SolveResult,
)


def _to_inequalities(A, l, u):
    """Stack finite-bound rows of l <= Ax <= u into G x <= h."""
    A = sp.csr_matrix(A)
    rows_u = np.isfinite(u)
    rows_l = np.isfinite(l)
    blocks, rhs = [], []
    if rows_u.any():
        blocks.append(A[rows_u])
        rhs.append(u[rows_u])
    if rows_l.any():
        blocks.append(-A[rows_l])
        rhs.append(-l[rows_l])
    if not blocks:
        raise ValueError("problem has no finite constraints")
    G = sp.vstack(blocks, format="csc")
    h = np.concatenate(rhs)
    return G, h


class IPMWorkspace:
    """Pattern-dependent precomputation shared across IPM solves.

    Valid for every problem with the same ``A`` (values and pattern),
    the same bound-finiteness masks, and the same ``P`` sparsity pattern
    -- exactly the re-solves of a retargeted dose-map formulation, where
    only bound *values* and the quadratic's scale change.  Holds:

    * the stacked one-sided ``G`` (and its transpose), so bound changes
      only re-gather ``h``;
    * the symbolic sparsity (``indptr``/``indices``) of the normal
      matrix ``N = P + reg*I + G' diag(w) G``;
    * a scatter operator ``E`` of shape (nnz(N), m) with
      ``N.data = E @ w + P.data + reg`` -- each constraint row ``k``
      contributes ``w_k * G[k,a] * G[k,b]`` to the (a, b) entry, and
      ``E`` hard-codes those destinations, replacing two sparse-sparse
      products per iteration with one SpMV.

    SuperLU exposes no symbolic-refactorization API, so the symbolic
    work we *can* hoist out of the iteration loop is this pattern
    analysis; the numeric factorization still runs per iteration.
    """

    #: Skip the scatter operator when the pairwise expansion would dwarf
    #: nnz(N) (dense-ish constraint rows make E itself the bottleneck).
    MAX_EXPANSION_RATIO = 40.0

    def __init__(self, P, A, l, u):
        self.mask_u = np.isfinite(u)
        self.mask_l = np.isfinite(l)
        if not (self.mask_u.any() or self.mask_l.any()):
            raise ValueError("problem has no finite constraints")
        A_csr = sp.csr_matrix(A)
        blocks = []
        if self.mask_u.any():
            blocks.append(A_csr[self.mask_u])
        if self.mask_l.any():
            blocks.append(-A_csr[self.mask_l])
        G = sp.vstack(blocks, format="csr")
        G.sort_indices()
        self.G = G
        self.Gcsc = G.tocsc()
        self.Gt = self.Gcsc.T.tocsc()
        self.n = A.shape[1]
        self.m = G.shape[0]
        self._A = A
        self._A_sig = (A.shape, A.nnz)
        self._P_indptr = P.indptr.copy()
        self._P_indices = P.indices.copy()

        # symbolic pattern of N = P + I + G'G (structural union)
        absG = self.Gcsc.copy()
        absG.data = np.abs(absG.data)
        C = (absG.T @ absG).tocsc()
        ones = lambda M: sp.csc_matrix(  # noqa: E731 - pattern indicator
            (np.ones_like(M.data), M.indices, M.indptr), shape=M.shape
        )
        U = (ones(P) + ones(C) + sp.eye(self.n, format="csc")).tocsc()
        U.sort_indices()
        self.N_indptr = U.indptr
        self.N_indices = U.indices
        self.nnzN = U.nnz
        # (col, row) -> data-array position lookup, in CSC data order
        col_of = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(U.indptr)
        )
        self._N_keys = col_of * self.n + U.indices
        self.pos_P = self._positions(
            P.indices,
            np.repeat(np.arange(self.n, dtype=np.int64), np.diff(P.indptr)),
        )
        diag = np.arange(self.n, dtype=np.int64)
        self.pos_diag = self._positions(diag, diag)

        counts = np.diff(G.indptr).astype(np.int64)
        n_pairs = int((counts**2).sum())
        if n_pairs <= self.MAX_EXPANSION_RATIO * max(self.nnzN, 1):
            self.E = self._build_expansion(G, counts)
        else:
            self.E = None

    def _positions(self, rows, cols):
        """Data-array positions of (row, col) entries of the N pattern."""
        keys = np.asarray(cols, dtype=np.int64) * self.n + rows
        return np.searchsorted(self._N_keys, keys)

    def _build_expansion(self, G, counts):
        """E such that (G' diag(w) G).data (on the N pattern) == E @ w."""
        pos_parts, k_parts, val_parts = [], [], []
        for t in np.unique(counts):
            if t == 0:
                continue
            rows_t = np.nonzero(counts == t)[0]
            gidx = (
                G.indptr[rows_t][:, None] + np.arange(t, dtype=np.int64)
            ).ravel()
            cols_t = G.indices[gidx].reshape(rows_t.size, t)
            vals_t = G.data[gidx].reshape(rows_t.size, t)
            a = np.repeat(cols_t, t, axis=1)  # entry row index
            b = np.tile(cols_t, (1, t))  # entry col index
            va = np.repeat(vals_t, t, axis=1)
            vb = np.tile(vals_t, (1, t))
            pos_parts.append(self._positions(a.ravel(), b.ravel()))
            k_parts.append(np.repeat(rows_t, t * t))
            val_parts.append((va * vb).ravel())
        if not pos_parts:
            return sp.csr_matrix((self.nnzN, self.m))
        return sp.csr_matrix(
            (
                np.concatenate(val_parts),
                (np.concatenate(pos_parts), np.concatenate(k_parts)),
            ),
            shape=(self.nnzN, self.m),
        )

    def matches(self, P, A, l, u) -> bool:
        """Can this workspace serve (P, A, l, u)?"""
        if A.shape != self._A_sig[0] or A.nnz != self._A_sig[1]:
            return False
        if not (
            np.array_equal(np.isfinite(u), self.mask_u)
            and np.array_equal(np.isfinite(l), self.mask_l)
        ):
            return False
        if A is not self._A:
            old = self._A
            if not (
                np.array_equal(A.indptr, old.indptr)
                and np.array_equal(A.indices, old.indices)
                and np.array_equal(A.data, old.data)
            ):
                return False
        if P.shape[0] != self.n:
            return False
        return np.array_equal(P.indptr, self._P_indptr) and np.array_equal(
            P.indices, self._P_indices
        )

    def gather_h(self, l, u):
        return np.concatenate(
            [v for v in (u[self.mask_u], -l[self.mask_l]) if v.size]
        )

    def normal(self, P, w_inv, reg):
        """Assemble N = P + reg*I + G' diag(w_inv) G on the cached pattern."""
        if self.E is None:
            N = (
                P
                + reg * sp.eye(self.n)
                + self.Gt @ sp.diags(w_inv) @ self.Gcsc
            ).tocsc()
            return N
        data = self.E @ w_inv
        data[self.pos_P] += P.data
        data[self.pos_diag] += reg
        return sp.csc_matrix(
            (data, self.N_indices, self.N_indptr), shape=(self.n, self.n)
        )


def solve_qp_ipm(
    P,
    q,
    A,
    l,
    u,
    max_iter: int = 60,
    tol: float = 1e-7,
    x0=None,
    warm: dict = None,
    workspace: dict = None,
    reg: float = 1e-9,
    time_limit: float = None,
) -> SolveResult:
    """Interior-point solve of ``min (1/2)x'Px + q'x s.t. l <= Ax <= u``.

    Parameters mirror :func:`repro.solver.qp.solve_qp`.  ``x0`` is
    accepted for API compatibility (equivalent to ``warm={"x": x0}``).

    Parameters
    ----------
    warm:
        Optional previous solution state: ``{"x": ..., "z": ...}`` (the
        inequality duals ``z`` come from a previous result's
        ``info["z"]``).  The primal is shifted to the interior
        (``s``/``z`` floored away from the boundary), so a neighbor
        problem's solution is a safe, strictly feasible seed.
    workspace:
        Optional mutable dict; the :class:`IPMWorkspace` built for this
        problem's sparsity is stored under ``"ws"`` and reused by later
        calls whose pattern matches (retargeted formulations).
    reg:
        Diagonal regularization added to the normal matrix.  The
        default keeps it positive definite when ``P`` has a null space;
        the fallback chain retries ill-conditioned solves with a much
        larger value (see :func:`repro.solver.robust.solve_qp_robust`).
    time_limit:
        Optional wall-clock budget in seconds.  When exceeded the loop
        stops on the current iterate with status ``max_iter`` (noted as
        a time-out in ``info``), so the fallback chain can move on
        instead of spinning.

    Returns
    -------
    SolveResult
        ``info`` carries ``z`` (inequality duals) for warm-start
        chaining and ``mu`` (final complementarity).  Degenerate inputs
        (``l > u``, no finite constraints) and numeric failures come
        back as diagnostic statuses (``infeasible`` / ``diverged`` /
        ``ill_conditioned``), never exceptions.
    """
    t_start = time.perf_counter()
    P = sp.csc_matrix(P)
    P = 0.5 * (P + P.T)
    P.sum_duplicates()
    P.sort_indices()
    q = np.asarray(q, dtype=float).ravel()
    A = sp.csc_matrix(A)
    l = np.asarray(l, dtype=float).ravel()
    u = np.asarray(u, dtype=float).ravel()
    n = q.size
    short_circuit = prevalidate(P, q, A, l, u, t_start)
    if short_circuit is not None:
        _emit_solve(short_circuit)
        return short_circuit

    ws = None
    if workspace is not None:
        cand = workspace.get("ws")
        if isinstance(cand, IPMWorkspace) and cand.matches(P, A, l, u):
            ws = cand
    if ws is None:
        ws = IPMWorkspace(P, A, l, u)
        if workspace is not None:
            workspace["ws"] = ws
    G, Gt = ws.G, ws.Gt
    h = ws.gather_h(l, u)
    m = h.size

    scale_obj = max(1.0, float(np.linalg.norm(q, np.inf)))
    scale_h = max(1.0, float(np.linalg.norm(h, np.inf)))

    # per-iteration convergence trace: always captured into a bounded
    # ring buffer (attached to info["trace"]; entries are
    # (iter, mu, r_prim, r_dual)), emitted only when telemetry is on
    trace = deque(maxlen=obs.TRACE_MAXLEN)

    if warm is None and x0 is not None:
        warm = {"x": x0}
    warm_started = False
    x = np.zeros(n)
    s = np.maximum(h - G @ x, 1.0)
    z = np.ones(m)
    if warm is not None:
        wx = warm.get("x")
        wx = None if wx is None else np.asarray(wx, dtype=float).ravel()
        if wx is not None and wx.shape == (n,) and np.all(np.isfinite(wx)):
            # shift the seed strictly inside the boundary: a too-small
            # slack/dual makes the first scaling matrix explode
            floor = 1e-4 * max(1.0, scale_h * 1e-3)
            x = wx.copy()
            s = np.maximum(h - G @ x, floor)
            wz = warm.get("z")
            wz = None if wz is None else np.asarray(wz, dtype=float).ravel()
            if wz is not None and wz.shape == (m,) and np.all(
                np.isfinite(wz)
            ):
                z = np.maximum(wz, floor)
            warm_started = True

    def _max_step(v, dv):
        neg = dv < 0
        if not np.any(neg):
            return 1.0
        return min(1.0, float(np.min(-v[neg] / dv[neg])))

    status = STATUS_MAX_ITER
    iters_done = max_iter
    timed_out = False
    for it in range(1, max_iter + 1):
        if (
            time_limit is not None
            and time.perf_counter() - t_start > time_limit
        ):
            timed_out = True
            iters_done = it - 1
            break
        r_dual = P @ x + q + Gt @ z
        r_prim = G @ x + s - h
        mu = float(s @ z) / m
        rp_norm = float(np.linalg.norm(r_prim, np.inf))
        rd_norm = float(np.linalg.norm(r_dual, np.inf))
        trace.append((it, mu, rp_norm, rd_norm))

        if rp_norm <= tol * scale_h and rd_norm <= tol * scale_obj and (
            mu <= tol
        ):
            status = STATUS_SOLVED
            iters_done = it - 1
            break

        # Normal equations: eliminate dz = W^{-1} (G dx - r2), giving
        # (P + G' W^{-1} G) dx = r1 + G' W^{-1} r2 with W = diag(s/z).
        w_inv = z / s
        normal = ws.normal(P, w_inv, reg)
        try:
            lu = spla.splu(normal)
        except RuntimeError:
            # singular normal system: stop on the best iterate so far
            # and let the fallback chain retry with stronger
            # regularization or the ADMM backend
            status = STATUS_ILL_CONDITIONED
            iters_done = it
            break

        def _solve_step(r1, r2):
            dx = lu.solve(r1 + Gt @ (w_inv * r2))
            dz = w_inv * (G @ dx - r2)
            return dx, dz

        # --- affine (predictor) step
        dx_a, dz_a = _solve_step(-r_dual, -r_prim + s)
        ds_a = -s - (s / z) * dz_a

        alpha_a = min(_max_step(s, ds_a), _max_step(z, dz_a))
        mu_aff = float((s + alpha_a * ds_a) @ (z + alpha_a * dz_a)) / m
        sigma = (mu_aff / max(mu, 1e-300)) ** 3

        # --- corrector step
        rc = -s * z - ds_a * dz_a + sigma * mu
        dx, dz = _solve_step(-r_dual, -r_prim - rc / z)
        ds = (rc - s * dz) / z

        eta = 0.99 if mu > 1e-6 else 0.999
        alpha = eta * min(_max_step(s, ds), _max_step(z, dz))
        x_prev, s_prev, z_prev = x, s, z
        x = x + alpha * dx
        s = s + alpha * ds
        z = z + alpha * dz

        if not (
            np.all(np.isfinite(x))
            and np.all(np.isfinite(s))
            and np.all(np.isfinite(z))
        ):
            # numeric blow-up: restore the last finite iterate and stamp
            # the result so callers cannot mistake it for a solution
            x, s, z = x_prev, s_prev, z_prev
            status = STATUS_DIVERGED
            iters_done = it
            break
        if float(np.abs(z).max()) > 1e14:
            # an infeasible problem drives the duals to infinity while
            # the primal residual stalls
            status = STATUS_INFEASIBLE
            iters_done = it
            break

    r_dual = P @ x + q + Gt @ z
    r_prim = G @ x + s - h
    mu = float(s @ z) / m
    if (
        status != STATUS_SOLVED
        and np.linalg.norm(r_prim, np.inf) <= 10 * tol * scale_h
        and np.linalg.norm(r_dual, np.inf) <= 10 * tol * scale_obj
        and mu <= 10 * tol
    ):
        status = STATUS_SOLVED

    obj = float(0.5 * x @ (P @ x) + q @ x)
    info = {"mu": mu, "z": z}
    if status in (STATUS_DIVERGED, STATUS_ILL_CONDITIONED):
        info["note"] = (
            "non-finite iterate: last finite iterate returned"
            if status == STATUS_DIVERGED
            else "singular normal system: best iterate returned"
        )
        info["failed_at_iter"] = iters_done
    elif timed_out and status == STATUS_MAX_ITER:
        info["note"] = f"time limit ({time_limit:.3g}s) reached"
        info["timed_out"] = True
    info["trace"] = list(trace)
    result = SolveResult(
        status=status,
        x=x,
        obj=obj,
        iterations=iters_done,
        r_prim=float(np.linalg.norm(r_prim, np.inf)),
        r_dual=float(np.linalg.norm(r_dual, np.inf)),
        solve_time=time.perf_counter() - t_start,
        info=info,
        warm_started=warm_started,
    )
    _emit_solve(result)
    return result


def _emit_solve(result: SolveResult):
    if not telemetry.enabled():
        return
    metrics.inc("solver.ipm.solves")
    metrics.observe(
        "solver.ipm.iterations."
        + ("warm" if result.warm_started else "cold"),
        result.iterations,
    )
    telemetry.emit(
        "solve",
        backend="ipm",
        status=result.status,
        iterations=result.iterations,
        r_prim=result.r_prim,
        r_dual=result.r_dual,
        seconds=result.solve_time,
        warm_started=result.warm_started,
        trace=result.info.get("trace"),
        note=result.info.get("note"),
    )
