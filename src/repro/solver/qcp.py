"""Quadratically constrained program solver via exact Lagrangian root-finding.

The paper's QCP ("minimize T subject to ... DeltaLeakage <= xi") has a
linear objective, linear constraints, and exactly **one convex quadratic
constraint**.  For this structure, strong duality lets us solve it as a
one-dimensional search: dualize the quadratic constraint with multiplier
lam >= 0, solve the resulting QP

    min  c'x + lam * ((1/2) x'Q x + g'x - s)   s.t.  l <= A x <= u,

and drive the constraint value h(lam) = (1/2)x'Qx + g'x - s to zero.
h(lam) is non-increasing in lam; after geometric bracketing we use the
Illinois variant of regula falsi (with bisection safeguards), which
typically needs only a handful of inner QP solves.

Two inner backends are available: the ADMM solver (warm-startable) and
the interior-point solver (faster on the ill-conditioned dose-map
programs; the default for DMopt).
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np
import scipy.sparse as sp

from repro import obs, telemetry
from repro.obs import metrics
from repro.solver.robust import METHOD_ADMM, METHOD_IPM, solve_qp_robust
from repro.solver.result import STATUS_MAX_ITER, SolveResult


def _quad_value(Q, g, x) -> float:
    return float(0.5 * x @ (Q @ x) + g @ x)


def solve_qcp(
    c,
    A,
    l,
    u,
    Q,
    g,
    s,
    lam_tol: float = 1e-3,
    feas_tol: float = 1e-4,
    max_root_steps: int = 30,
    method: str = METHOD_ADMM,
    qp_kwargs: dict = None,
    warm: dict = None,
    lam_hint: float = None,
    workspace: dict = None,
    time_limit: float = None,
) -> SolveResult:
    """Solve ``min c'x  s.t.  l <= Ax <= u,  (1/2)x'Qx + g'x <= s``.

    Parameters
    ----------
    c:
        Linear objective (n,).
    A, l, u:
        Linear constraints.
    Q, g, s:
        The convex quadratic constraint (Q PSD).
    lam_tol:
        Relative tolerance on the multiplier bracket.
    feas_tol:
        Acceptable relative violation of the quadratic constraint,
        measured against ``max(1, |s|)``.
    method:
        Inner QP backend: ``"admm"`` or ``"ipm"``.
    warm:
        Optional previous solution state (``{"x": ...}``, plus ``"z"``
        for IPM or ``"y"`` for ADMM) seeding the *first* inner solve;
        later inner solves always chain from their predecessor.
    lam_hint:
        Optional previous optimal multiplier (``info["lam"]``): the
        bracket starts there instead of at 1e-4, so a neighbor problem's
        root is re-found in a couple of inner solves.
    workspace:
        Mutable dict carrying the IPM's pattern workspace across inner
        solves and across calls (see :func:`solve_qp_ipm`).
    time_limit:
        Wall-clock budget in seconds shared by the whole root search:
        every inner solve gets the remaining time, and an exhausted
        budget stops the search on the best bracketed iterate (status
        ``max_iter``).

    Returns
    -------
    SolveResult
        ``info`` carries the final multiplier ``lam``, the constraint
        value ``quad``, and the number of inner solves.
    """
    t_start = time.perf_counter()
    qp_kwargs = dict(qp_kwargs or {})
    if method not in (METHOD_ADMM, METHOD_IPM):
        raise ValueError(f"method must be 'admm' or 'ipm', got {method!r}")
    c = np.asarray(c, dtype=float).ravel()
    g = np.asarray(g, dtype=float).ravel()
    Q = sp.csc_matrix(Q)
    scale = max(1.0, abs(float(s)))

    total_iters = 0
    state = dict(warm) if warm else {}
    warm_started = bool(state)
    # root-search convergence trace (ring buffer; entries are
    # (inner_solve, lam, h) with h the quadratic-constraint violation),
    # attached to info["brackets"]
    brackets = deque(maxlen=obs.TRACE_MAXLEN)
    deadline = (
        t_start + float(time_limit) if time_limit is not None else None
    )

    def out_of_time() -> bool:
        return deadline is not None and time.perf_counter() >= deadline

    def inner(lam: float):
        nonlocal total_iters, state
        res = solve_qp_robust(
            lam * Q,
            c + lam * g,
            A,
            l,
            u,
            method=method,
            qp_kwargs=qp_kwargs,
            warm=state or None,
            workspace=workspace,
            time_limit=(
                max(deadline - time.perf_counter(), 1e-3)
                if deadline is not None
                else None
            ),
        )
        # chain state from whichever backend produced the result (the
        # fallback chain may have switched: z is the IPM dual, y ADMM's)
        state = {
            k: v
            for k, v in (
                ("x", res.x),
                ("z", res.info.get("z")),
                ("y", res.info.get("y")),
            )
            if v is not None
        }
        if res.failed:
            state = {}  # a failed iterate is a poisonous seed
        total_iters += res.iterations
        return res

    def h_of(res, lam: float) -> float:
        h = _quad_value(Q, g, res.x) - s
        brackets.append((len(brackets) + 1, float(lam), h))
        return h

    def _package(res, lam, steps, status=None, note=None):
        info = {
            "lam": lam,
            "quad": _quad_value(Q, g, res.x),
            "inner_solves": steps,
            "brackets": list(brackets),
        }
        if note:
            info["note"] = note
        if "attempts" in res.info:
            info["attempts"] = res.info["attempts"]
        final_status = status or res.status
        if telemetry.enabled():
            metrics.inc("solver.qcp.solves")
            metrics.observe("solver.qcp.inner_solves", steps)
        telemetry.emit(
            "qcp",
            status=final_status,
            lam=lam,
            inner_solves=steps,
            iterations=total_iters,
            seconds=time.perf_counter() - t_start,
            brackets=list(brackets),
            note=note,
        )
        return SolveResult(
            status=final_status,
            x=res.x,
            obj=float(c @ res.x),
            iterations=total_iters,
            r_prim=res.r_prim,
            r_dual=res.r_dual,
            solve_time=time.perf_counter() - t_start,
            info=info,
            warm_started=warm_started,
        )

    # lam = 0: if already feasible we are done (constraint slack).
    res_lo = inner(0.0)
    steps = 1
    if res_lo.failed:
        # the linear constraints alone are infeasible (or the chain
        # exhausted every backend): surface the diagnosis, don't bisect
        return _package(
            res_lo,
            0.0,
            steps,
            note="linear constraint system failed at lam=0: "
            + res_lo.info.get("note", res_lo.status),
        )
    h0 = h_of(res_lo, 0.0)
    if h0 <= feas_tol * scale:
        return _package(res_lo, 0.0, steps)
    h_scale = max(abs(h0), scale)

    # bracket geometrically from a small multiplier: the optimal lam is
    # the marginal objective cost per unit of quadratic budget, which for
    # the dose-map programs is typically far below 1.  A neighbor
    # problem's multiplier (lam_hint) lands the bracket near the root
    # immediately.
    lam_lo = 0.0
    lam_hi = (
        float(lam_hint)
        if lam_hint is not None and np.isfinite(lam_hint) and lam_hint > 0
        else 1e-4
    )
    res_hi = inner(lam_hi)
    h_hi = h_of(res_hi, lam_hi)
    steps += 1
    while h_hi > feas_tol * h_scale:
        if out_of_time():
            return _package(
                res_hi,
                lam_hi,
                steps,
                status=STATUS_MAX_ITER,
                note="time limit reached during bracket expansion",
            )
        lam_lo = lam_hi
        lam_hi *= 10.0
        res_hi = inner(lam_hi)
        steps += 1
        if res_hi.failed:
            return _package(
                res_hi, lam_hi, steps,
                note="inner solve failed during bracket expansion",
            )
        h_hi = h_of(res_hi, lam_hi)
        if lam_hi > 1e12:
            return _package(
                res_hi,
                lam_hi,
                steps,
                status=STATUS_MAX_ITER,
                note="quadratic budget appears unattainable",
            )

    # bisection (log-space once the bracket is positive) on h(lam),
    # which is non-increasing in lam
    best, best_lam = res_hi, lam_hi
    while (
        steps < max_root_steps
        and (lam_hi - lam_lo) > lam_tol * max(lam_hi, 1e-9)
        and abs(h_hi) > 0.1 * feas_tol * h_scale
    ):
        if out_of_time():
            return _package(
                best,
                best_lam,
                steps,
                note="time limit reached during root search; best "
                "bracketed iterate returned",
            )
        if lam_lo > 0:
            lam_mid = float(np.sqrt(lam_lo * lam_hi))
        else:
            lam_mid = 0.5 * (lam_lo + lam_hi)
        res_mid = inner(lam_mid)
        steps += 1
        if res_mid.failed:
            break  # keep the best bracketed iterate found so far
        h_mid = h_of(res_mid, lam_mid)
        if h_mid <= feas_tol * h_scale:
            lam_hi, h_hi, res_hi = lam_mid, h_mid, res_mid
            best, best_lam = res_mid, lam_mid
        else:
            lam_lo = lam_mid

    return _package(best, best_lam, steps)
