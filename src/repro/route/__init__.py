"""Global routing substrate (the flow's ECO-routing fidelity level)."""

from repro.route.router import GlobalRouter, RouteResult, RoutingGrid

__all__ = ["GlobalRouter", "RouteResult", "RoutingGrid"]
