"""Grid-based global router.

The paper's flow ends with "ECO routing ... executed for the affected
wires" (Section IV-A).  Our timer defaults to HPWL-based wire estimates;
this module supplies the next fidelity level: a classic two-stage global
router over a gcell grid --

1. **initial routing**: every driver-sink two-pin connection takes the
   cheaper of its two L-shapes under the current congestion picture,
2. **rip-up and re-route**: connections through over-capacity edges are
   re-routed by Dijkstra with congestion-dependent edge costs
   (negotiation-style penalties).

Outputs per-net routed lengths (consumable by the timer via
``TimingAnalyzer(net_lengths=...)``), a congestion map, and overflow
statistics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np


@dataclass
class RoutingGrid:
    """Gcell grid with horizontal/vertical edge capacities.

    Edges: ``h_usage[i, j]`` is the edge from gcell (i, j) to (i, j+1);
    ``v_usage[i, j]`` from (i, j) to (i+1, j).
    """

    width: float
    height: float
    gcell: float
    capacity: int = 12

    def __post_init__(self):
        if self.width <= 0 or self.height <= 0 or self.gcell <= 0:
            raise ValueError("grid dimensions must be positive")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.m = max(1, int(np.ceil(self.height / self.gcell)))
        self.n = max(1, int(np.ceil(self.width / self.gcell)))
        self.h_usage = np.zeros((self.m, max(self.n - 1, 1)), dtype=int)
        self.v_usage = np.zeros((max(self.m - 1, 1), self.n), dtype=int)

    def gcell_of(self, x: float, y: float) -> tuple:
        j = min(self.n - 1, max(0, int(x / self.width * self.n)))
        i = min(self.m - 1, max(0, int(y / self.height * self.m)))
        return i, j

    # -- edge bookkeeping ------------------------------------------------
    def _edges_of_path(self, path):
        """Edges ((kind, i, j)) along a gcell path."""
        for (i1, j1), (i2, j2) in zip(path, path[1:]):
            if i1 == i2:
                yield ("h", i1, min(j1, j2))
            else:
                yield ("v", min(i1, i2), j1)

    def add_path(self, path, delta: int = 1):
        for kind, i, j in self._edges_of_path(path):
            if kind == "h":
                self.h_usage[i, j] += delta
            else:
                self.v_usage[i, j] += delta

    def edge_usage(self, kind: str, i: int, j: int) -> int:
        return int(self.h_usage[i, j] if kind == "h" else self.v_usage[i, j])

    def overflow(self) -> int:
        """Total usage beyond capacity over all edges."""
        return int(
            np.maximum(self.h_usage - self.capacity, 0).sum()
            + np.maximum(self.v_usage - self.capacity, 0).sum()
        )

    def congestion_map(self) -> np.ndarray:
        """Per-gcell worst adjacent-edge utilization (fraction of cap)."""
        util = np.zeros((self.m, self.n))
        for i in range(self.m):
            for j in range(self.n):
                vals = []
                if j > 0:
                    vals.append(self.h_usage[i, j - 1])
                if j < self.n - 1:
                    vals.append(self.h_usage[i, j])
                if i > 0:
                    vals.append(self.v_usage[i - 1, j])
                if i < self.m - 1:
                    vals.append(self.v_usage[i, j])
                util[i, j] = max(vals) / self.capacity if vals else 0.0
        return util


def _l_paths(src, dst):
    """The two L-shaped gcell paths between two gcells."""
    (i1, j1), (i2, j2) = src, dst
    step_i = 1 if i2 >= i1 else -1
    step_j = 1 if j2 >= j1 else -1
    vert = [(i, j1) for i in range(i1, i2 + step_i, step_i)]
    horiz = [(i2, j) for j in range(j1, j2 + step_j, step_j)]
    path_a = vert + horiz[1:]  # vertical first
    horiz2 = [(i1, j) for j in range(j1, j2 + step_j, step_j)]
    vert2 = [(i, j2) for i in range(i1, i2 + step_i, step_i)]
    path_b = horiz2 + vert2[1:]  # horizontal first
    return path_a, path_b


@dataclass
class RouteResult:
    """Routing outcome for one design."""

    grid: RoutingGrid
    net_lengths: dict
    overflow: int
    rerouted: int
    connections: dict = field(repr=False, default_factory=dict)

    @property
    def total_wirelength(self) -> float:
        return sum(self.net_lengths.values())


class GlobalRouter:
    """Two-stage global router (see module docstring)."""

    def __init__(self, netlist, placement, gcell: float = 5.0,
                 capacity: int = 40, overflow_penalty: float = 4.0):
        self.netlist = netlist
        self.placement = placement
        self.grid = RoutingGrid(
            placement.die.width, placement.die.height, gcell, capacity
        )
        self.overflow_penalty = float(overflow_penalty)

    # -- cost model --------------------------------------------------
    def _path_cost(self, path) -> float:
        cost = 0.0
        for kind, i, j in self.grid._edges_of_path(path):
            usage = self.grid.edge_usage(kind, i, j)
            cost += 1.0
            if usage >= self.grid.capacity:
                cost += self.overflow_penalty * (
                    usage - self.grid.capacity + 1
                )
        return cost

    def _dijkstra(self, src, dst):
        """Congestion-aware shortest gcell path."""
        m, n = self.grid.m, self.grid.n
        dist = {src: 0.0}
        prev = {}
        heap = [(0.0, src)]
        while heap:
            d, node = heapq.heappop(heap)
            if node == dst:
                break
            if d > dist.get(node, np.inf):
                continue
            i, j = node
            for ni, nj, kind, ei, ej in (
                (i, j + 1, "h", i, j),
                (i, j - 1, "h", i, j - 1),
                (i + 1, j, "v", i, j),
                (i - 1, j, "v", i - 1, j),
            ):
                if not (0 <= ni < m and 0 <= nj < n):
                    continue
                usage = self.grid.edge_usage(kind, ei, ej)
                w = 1.0
                if usage >= self.grid.capacity:
                    w += self.overflow_penalty * (
                        usage - self.grid.capacity + 1
                    )
                nd = d + w
                if nd < dist.get((ni, nj), np.inf):
                    dist[(ni, nj)] = nd
                    prev[(ni, nj)] = node
                    heapq.heappush(heap, (nd, (ni, nj)))
        if dst not in dist:
            raise RuntimeError("routing graph is disconnected")
        path = [dst]
        while path[-1] != src:
            path.append(prev[path[-1]])
        return list(reversed(path))

    # -- main flow ---------------------------------------------------
    def _net_connections(self):
        """(net, src gcell, dst gcell) two-pin connections, star model."""
        conns = []
        for net_name, net in self.netlist.nets.items():
            if net.driver is None or not self.placement.is_placed(net.driver):
                continue
            src = self.grid.gcell_of(*self.placement.location(net.driver))
            for sink, _pin in net.sinks:
                if not self.placement.is_placed(sink):
                    continue
                dst = self.grid.gcell_of(*self.placement.location(sink))
                conns.append((net_name, src, dst))
        return conns

    def route(self, max_reroute_rounds: int = 3) -> RouteResult:
        """Run initial L-routing plus rip-up-and-reroute rounds."""
        conns = self._net_connections()
        # long connections first: they have the least flexibility
        conns.sort(key=lambda c: -(abs(c[1][0] - c[2][0]) + abs(c[1][1] - c[2][1])))
        paths = {}
        for idx, (net, src, dst) in enumerate(conns):
            a, b = _l_paths(src, dst)
            path = a if self._path_cost(a) <= self._path_cost(b) else b
            self.grid.add_path(path)
            paths[idx] = path

        rerouted = 0
        base_penalty = self.overflow_penalty
        for rnd in range(max_reroute_rounds):
            if self.grid.overflow() == 0:
                break
            # negotiation: escalate the congestion penalty every round
            self.overflow_penalty = base_penalty * (1 + rnd)
            for idx, (net, src, dst) in enumerate(conns):
                path = paths[idx]
                through_overflow = any(
                    self.grid.edge_usage(kind, i, j) > self.grid.capacity
                    for kind, i, j in self.grid._edges_of_path(path)
                )
                if not through_overflow:
                    continue
                self.grid.add_path(path, delta=-1)
                new_path = self._dijkstra(src, dst)
                # keep the new path only if it is actually cheaper under
                # the current congestion picture
                if self._path_cost(new_path) < self._path_cost(path):
                    self.grid.add_path(new_path)
                    paths[idx] = new_path
                    rerouted += 1
                else:
                    self.grid.add_path(path)
        self.overflow_penalty = base_penalty

        # Per-net routed length (um): the *union* of gcell edges used by
        # the net's connections (shared trunk edges counted once -- a
        # Steiner-like correction to the star model).  Nets confined to a
        # single gcell fall back to the HPWL estimate.
        from repro.placement.hpwl import net_hpwl

        pitch = self.grid.gcell
        net_edges: dict = {}
        conn_paths: dict = {}
        for idx, (net, _src, _dst) in enumerate(conns):
            net_edges.setdefault(net, set()).update(
                self.grid._edges_of_path(paths[idx])
            )
            conn_paths.setdefault(net, []).append(paths[idx])
        net_lengths: dict = {}
        for net_name in self.netlist.nets:
            edges = net_edges.get(net_name)
            if edges:
                net_lengths[net_name] = len(edges) * pitch
            else:
                net_lengths[net_name] = net_hpwl(
                    self.netlist, self.placement, net_name
                )
        return RouteResult(
            grid=self.grid,
            net_lengths=net_lengths,
            overflow=self.grid.overflow(),
            rerouted=rerouted,
            connections=conn_paths,
        )
