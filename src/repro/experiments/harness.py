"""Experiment harness: table containers, formatting, paper comparison.

Every paper table/figure has a generator in :mod:`repro.experiments.tables`
or :mod:`repro.experiments.figures` returning a :class:`TableResult` whose
rows can be printed, asserted on in benchmarks, and diffed against the
paper's published numbers in :data:`repro.experiments.paper_data`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TableResult:
    """One regenerated table or figure data series.

    Attributes
    ----------
    exp_id:
        Paper label, e.g. ``"Table II"`` or ``"Fig. 10"``.
    title:
        Human-readable description.
    headers:
        Column names.
    rows:
        List of row lists (mixed str/float entries).
    notes:
        Free-form commentary (e.g. observed-vs-paper trend statements).
    """

    exp_id: str
    title: str
    headers: list
    rows: list
    notes: list = field(default_factory=list)

    def column(self, name: str) -> list:
        """All values of one named column."""
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r}; available: {self.headers}"
            ) from None
        return [row[idx] for row in self.rows]

    def format(self) -> str:
        """Fixed-width text rendering."""

        def fmt(v):
            if isinstance(v, float):
                return f"{v:.3f}"
            return str(v)

        table = [self.headers] + [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(row[i])) for row in table)
            for i in range(len(self.headers))
        ]
        lines = [f"== {self.exp_id}: {self.title} =="]
        lines.append(
            "  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in table[1:]:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self):
        return self.format()
