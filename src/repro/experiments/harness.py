"""Experiment harness: table containers, formatting, parallel running.

Every paper table/figure has a generator in :mod:`repro.experiments.tables`
or :mod:`repro.experiments.figures` returning a :class:`TableResult` whose
rows can be printed, asserted on in benchmarks, and diffed against the
paper's published numbers in :data:`repro.experiments.paper_data`.

The table drivers' DMopt cells -- independent (design, grid, mode,
dose-range) evaluations -- can be fanned across processes with
:func:`run_dmopt_cells`.  Determinism guarantee: each worker rebuilds
its design context from the same seeds the serial path uses and results
are gathered in input order, so a parallel run produces byte-identical
rows to a serial run of the same cells.  A worker that crashes or is
killed mid-cell is retried serially in the parent (see
:func:`parallel_map`), so the result list is hole-free even on a lossy
pool.  Worker count comes from the ``REPRO_JOBS`` environment variable
or the experiment CLI's ``--jobs`` flag (see :func:`resolve_jobs`).
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro import obs, telemetry
from repro.constants import DEFAULT_DOSE_RANGE, DEFAULT_SMOOTHNESS
from repro.obs import metrics
from repro.resilience import chaos
from repro.resilience.checkpoint import CheckpointStore, cell_key
from repro.resilience.watchdog import (
    MapStats,
    resolve_cell_timeout,
    supervised_map,
)


@dataclass
class TableResult:
    """One regenerated table or figure data series.

    Attributes
    ----------
    exp_id:
        Paper label, e.g. ``"Table II"`` or ``"Fig. 10"``.
    title:
        Human-readable description.
    headers:
        Column names.
    rows:
        List of row lists (mixed str/float entries).
    notes:
        Free-form commentary (e.g. observed-vs-paper trend statements).
    """

    exp_id: str
    title: str
    headers: list
    rows: list
    notes: list = field(default_factory=list)

    def column(self, name: str) -> list:
        """All values of one named column."""
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r}; available: {self.headers}"
            ) from None
        return [row[idx] for row in self.rows]

    def format(self) -> str:
        """Fixed-width text rendering."""

        def fmt(v):
            if isinstance(v, float):
                return f"{v:.3f}"
            return str(v)

        table = [self.headers] + [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(row[i])) for row in table)
            for i in range(len(self.headers))
        ]
        lines = [f"== {self.exp_id}: {self.title} =="]
        lines.append(
            "  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in table[1:]:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self):
        return self.format()


# ----------------------------------------------------------------------
# parallel DMopt cell runner
# ----------------------------------------------------------------------
def resolve_jobs(jobs: int = None) -> int:
    """Worker count: explicit argument > ``REPRO_JOBS`` env > 1 (serial).

    0 or a negative value means "all cores".
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer worker count, "
                    f"got {env!r}"
                ) from None
        else:
            jobs = 1
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def parallel_map(fn, items, jobs: int = None,
                 retry_serial: bool = True) -> list:
    """Map ``fn`` over ``items``, optionally across processes.

    Results always come back in input order, so callers see identical
    output whether the run was serial or parallel.  ``jobs <= 1``
    short-circuits to a plain loop with zero multiprocessing overhead;
    ``fn`` and each item must be picklable otherwise.

    With ``retry_serial`` (default), an item whose worker raised is
    re-run serially in the parent (with bounded exponential backoff)
    instead of poisoning the run, and a broken pool (OOM kill, hard
    crash) is recreated once for the remaining items before degrading
    to serial -- so the result list is hole-free and deterministic even
    on a lossy pool.  Each retry is a ``worker_retry`` telemetry event
    and each pool recreation a ``pool_restart`` event; an item that
    fails again in the parent raises normally (a real bug, not a worker
    casualty).

    This is a thin veneer over
    :func:`repro.resilience.watchdog.supervised_map`, which adds
    per-item watchdog deadlines for callers that need them
    (:func:`run_dmopt_cells`).
    """
    items = list(items)
    jobs = min(resolve_jobs(jobs), max(len(items), 1))
    return supervised_map(fn, items, jobs, retry_serial=retry_serial)


@dataclass(frozen=True)
class DMoptCell:
    """One independent DMopt evaluation of a table/sweep driver."""

    design: str
    grid_size: float
    mode: str = "qcp"
    both_layers: bool = False
    fit_width: bool = False
    dose_range: float = DEFAULT_DOSE_RANGE
    smoothness: float = DEFAULT_SMOOTHNESS
    scale: float = 1.0
    method: str = "ipm"


#: Per-process LRU context cache so one worker serving many cells of
#: the same design characterizes it once (mirrors tables._CTX_CACHE)
#: without letting a long multi-design sweep grow worker memory without
#: bound.  A characterized context is tens of MB; four covers every
#: table driver's working set.
_CELL_CTX_MAX = 4
_CELL_CTX: OrderedDict = OrderedDict()


def _cell_context(design: str, scale: float, fit_width: bool):
    key = (design, float(scale), bool(fit_width))
    ctx = _CELL_CTX.get(key)
    if ctx is not None:
        _CELL_CTX.move_to_end(key)
        return ctx
    from repro.core import DesignContext
    from repro.netlist import make_design

    ctx = DesignContext(
        make_design(design, scale=scale), fit_width=fit_width
    )
    _CELL_CTX[key] = ctx
    while len(_CELL_CTX) > _CELL_CTX_MAX:
        _CELL_CTX.popitem(last=False)
    return ctx


STATUS_TIMEOUT = "timeout"


def run_dmopt_cell(cell: DMoptCell, certify: bool = False,
                   time_limit: float = None) -> dict:
    """Evaluate one cell; returns a small picklable result dict.

    Runs in a worker process under :func:`run_dmopt_cells`; the context
    is rebuilt deterministically (same design generator and placer
    seeds as the serial path), so the golden numbers are identical to a
    serial evaluation.

    With ``certify`` the result is independently re-verified
    (:func:`repro.core.certify.certify_result`); the verdict and
    summary ride along in the dict for the parent to enforce.
    ``time_limit`` caps the solver work inside the cell (the harness's
    watchdog is the backstop for everything the solver budget cannot
    interrupt, e.g. a hung factorization).
    """
    from repro.core import optimize_dose_map

    with obs.span("cell", design=cell.design, grid=float(cell.grid_size),
                  mode=cell.mode):
        ctx = _cell_context(
            cell.design, cell.scale, cell.fit_width or cell.both_layers
        )
        res = optimize_dose_map(
            ctx,
            cell.grid_size,
            mode=cell.mode,
            both_layers=cell.both_layers,
            dose_range=cell.dose_range,
            smoothness=cell.smoothness,
            method=cell.method,
            time_limit=time_limit,
        )
    out = {
        "design": cell.design,
        "grid_size": cell.grid_size,
        "mode": cell.mode,
        "both_layers": cell.both_layers,
        "mct": res.mct,
        "mct_improvement_pct": res.mct_improvement_pct,
        "leakage": res.leakage,
        "leakage_improvement_pct": res.leakage_improvement_pct,
        "baseline_mct": res.baseline_mct,
        "baseline_leakage": res.baseline_leakage,
        "runtime": res.runtime,
        "iterations": res.solve.iterations,
        "status": res.solve.status,
    }
    if certify:
        from repro.core import certify_result

        report = certify_result(
            ctx, res, dose_range=cell.dose_range,
            smoothness=cell.smoothness,
        )
        out["certified"] = report.ok
        out["certificate"] = report.summary()
    return out


def _run_cell_task(task) -> dict:
    """Worker entry for one ``(index, cell, certify, time_limit)`` task.

    The index is only for chaos targeting and telemetry; the result
    dict is identical to :func:`run_dmopt_cell`'s.
    """
    index, cell, certify, time_limit = task
    chaos.inject_worker_crash(index)
    chaos.inject_slow_solve(index)
    return run_dmopt_cell(cell, certify=certify, time_limit=time_limit)


def _timeout_result(task, elapsed: float) -> dict:
    """Diagnostic row for a cell killed by the watchdog."""
    _, cell, _, _ = task
    nan = float("nan")
    return {
        "design": cell.design,
        "grid_size": cell.grid_size,
        "mode": cell.mode,
        "both_layers": cell.both_layers,
        "mct": nan,
        "mct_improvement_pct": nan,
        "leakage": nan,
        "leakage_improvement_pct": nan,
        "baseline_mct": nan,
        "baseline_leakage": nan,
        "runtime": elapsed,
        "iterations": 0,
        "status": STATUS_TIMEOUT,
    }


class CellCertificationError(RuntimeError):
    """At least one --certify cell failed independent re-verification."""


def _enforce_certification(cells, results):
    failed = [
        (cell, res)
        for cell, res in zip(cells, results)
        if res.get("status") not in (STATUS_TIMEOUT,)
        and res.get("certified") is False
    ]
    if failed:
        lines = [
            f"{cell.design} G={cell.grid_size} {cell.mode}: "
            + res.get("certificate", "certification failed")
            for cell, res in failed
        ]
        raise CellCertificationError(
            f"{len(failed)} cell(s) failed certification:\n  "
            + "\n  ".join(lines)
        )


def run_dmopt_cells(
    cells,
    jobs: int = None,
    checkpoint=None,
    resume: bool = True,
    cell_timeout: float = None,
    certify: bool = False,
) -> list:
    """Fan independent DMopt cells across processes.

    Returns one result dict per cell, in ``cells`` order regardless of
    worker scheduling.  With ``jobs=1`` (the default absent
    ``REPRO_JOBS``) this is a plain serial loop.  A crashed or killed
    worker does not hole the results: its cell is re-run serially in
    the parent (one pool recreation first, if the whole pool died) and
    the recovery is recorded in the telemetry manifest.

    Parameters
    ----------
    checkpoint:
        Optional path to a JSONL checkpoint file.  Each completed cell
        is appended (fsync'd) under its content-hash key; with
        ``resume`` (default) cells whose key is already present are
        served from the file (a ``checkpoint_hit`` telemetry event
        each) instead of re-run, so an interrupted run restarts where
        it stopped.  Watchdog-timeout rows are *not* checkpointed --
        they re-run on resume.
    resume:
        When False an existing checkpoint file is truncated first.
    cell_timeout:
        Per-cell wall-clock budget in seconds (default: the
        ``REPRO_CELL_TIMEOUT`` environment variable; unset/<=0 means no
        deadline).  A cell that exceeds it has its worker killed and
        yields a diagnostic ``status="timeout"`` row; the rest of the
        run continues.
    certify:
        Independently re-verify every cell's result against the dose
        range / smoothness / timing / leakage semantics and raise
        :class:`CellCertificationError` if any converged cell fails.
    """
    cells = list(cells)
    t0 = time.perf_counter()
    timeout = resolve_cell_timeout(cell_timeout)
    jobs_resolved = resolve_jobs(jobs)
    telemetry.emit("run_begin", run="dmopt_cells", n_cells=len(cells),
                   jobs=jobs_resolved)

    with obs.span("harness.run_dmopt_cells", n_cells=len(cells),
                  jobs=jobs_resolved):
        store = None
        keys = [None] * len(cells)
        results = [None] * len(cells)
        todo = list(range(len(cells)))
        if checkpoint is not None:
            store = CheckpointStore(checkpoint, resume=resume)
            todo = []
            for idx, cell in enumerate(cells):
                keys[idx] = cell_key(cell, certify=certify)
                payload = store.get(keys[idx])
                if payload is not None:
                    results[idx] = payload
                    metrics.inc("checkpoint.hits")
                    telemetry.emit("checkpoint_hit", key=keys[idx])
                else:
                    todo.append(idx)

        stats = MapStats()
        if todo:
            tasks = [(idx, cells[idx], certify, timeout) for idx in todo]

            def on_result(pos, res):
                idx = todo[pos]
                results[idx] = res
                if res.get("status") == STATUS_TIMEOUT:
                    metrics.inc("watchdog.kills")
                    telemetry.emit("watchdog_kill", index=idx,
                                   seconds=res.get("runtime"))
                elif store is not None:
                    store.put(keys[idx], res, kind="dmopt_cell")

            supervised_map(
                _run_cell_task,
                tasks,
                min(jobs_resolved, len(tasks)),
                timeout=timeout,
                on_result=on_result,
                timeout_result=_timeout_result,
                stats=stats,
            )
        if store is not None:
            store.close()

        for idx, (cell, res) in enumerate(zip(cells, results)):
            telemetry.emit("cell_done", index=idx, design=cell.design,
                           status=res["status"])
    telemetry.emit("run_end", run="dmopt_cells",
                   seconds=time.perf_counter() - t0,
                   retries=stats.retries,
                   pool_restarts=stats.pool_restarts,
                   timeouts=stats.timeouts)
    metrics.flush("run_end")
    if certify:
        _enforce_certification(cells, results)
    return results
