"""Experiment harness: table containers, formatting, parallel running.

Every paper table/figure has a generator in :mod:`repro.experiments.tables`
or :mod:`repro.experiments.figures` returning a :class:`TableResult` whose
rows can be printed, asserted on in benchmarks, and diffed against the
paper's published numbers in :data:`repro.experiments.paper_data`.

The table drivers' DMopt cells -- independent (design, grid, mode,
dose-range) evaluations -- can be fanned across processes with
:func:`run_dmopt_cells`.  Determinism guarantee: each worker rebuilds
its design context from the same seeds the serial path uses and results
are gathered in input order, so a parallel run produces byte-identical
rows to a serial run of the same cells.  A worker that crashes or is
killed mid-cell is retried serially in the parent (see
:func:`parallel_map`), so the result list is hole-free even on a lossy
pool.  Worker count comes from the ``REPRO_JOBS`` environment variable
or the experiment CLI's ``--jobs`` flag (see :func:`resolve_jobs`).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro import telemetry
from repro.constants import DEFAULT_DOSE_RANGE, DEFAULT_SMOOTHNESS


@dataclass
class TableResult:
    """One regenerated table or figure data series.

    Attributes
    ----------
    exp_id:
        Paper label, e.g. ``"Table II"`` or ``"Fig. 10"``.
    title:
        Human-readable description.
    headers:
        Column names.
    rows:
        List of row lists (mixed str/float entries).
    notes:
        Free-form commentary (e.g. observed-vs-paper trend statements).
    """

    exp_id: str
    title: str
    headers: list
    rows: list
    notes: list = field(default_factory=list)

    def column(self, name: str) -> list:
        """All values of one named column."""
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r}; available: {self.headers}"
            ) from None
        return [row[idx] for row in self.rows]

    def format(self) -> str:
        """Fixed-width text rendering."""

        def fmt(v):
            if isinstance(v, float):
                return f"{v:.3f}"
            return str(v)

        table = [self.headers] + [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(row[i])) for row in table)
            for i in range(len(self.headers))
        ]
        lines = [f"== {self.exp_id}: {self.title} =="]
        lines.append(
            "  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in table[1:]:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self):
        return self.format()


# ----------------------------------------------------------------------
# parallel DMopt cell runner
# ----------------------------------------------------------------------
def resolve_jobs(jobs: int = None) -> int:
    """Worker count: explicit argument > ``REPRO_JOBS`` env > 1 (serial).

    0 or a negative value means "all cores".
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else 1
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def parallel_map(fn, items, jobs: int = None,
                 retry_serial: bool = True) -> list:
    """Map ``fn`` over ``items``, optionally across processes.

    Results always come back in input order (futures are gathered by
    submission index), so callers see identical output whether the run
    was serial or parallel.  ``jobs <= 1`` short-circuits to a plain
    loop with zero multiprocessing overhead; ``fn`` and each item must
    be picklable otherwise.

    With ``retry_serial`` (default), an item whose worker raised -- or
    whose whole process died (``BrokenProcessPool``: OOM kill, hard
    crash) -- is re-run serially in the parent instead of poisoning the
    run, so the result list is hole-free and deterministic.  Each retry
    is recorded as a ``worker_retry`` telemetry event; an item that
    fails again in the parent raises normally (a real bug, not a worker
    casualty).
    """
    items = list(items)
    jobs = min(resolve_jobs(jobs), max(len(items), 1))
    if jobs <= 1:
        return [fn(item) for item in items]
    results = [None] * len(items)
    failed = []
    with ProcessPoolExecutor(max_workers=jobs) as ex:
        futures = [ex.submit(fn, item) for item in items]
        for idx, fut in enumerate(futures):
            try:
                results[idx] = fut.result()
            except Exception as exc:  # incl. BrokenProcessPool
                if not retry_serial:
                    raise
                failed.append((idx, exc))
    for idx, exc in failed:
        telemetry.emit(
            "worker_retry",
            index=idx,
            error=f"{type(exc).__name__}: {exc}",
        )
        results[idx] = fn(items[idx])
    return results


@dataclass(frozen=True)
class DMoptCell:
    """One independent DMopt evaluation of a table/sweep driver."""

    design: str
    grid_size: float
    mode: str = "qcp"
    both_layers: bool = False
    fit_width: bool = False
    dose_range: float = DEFAULT_DOSE_RANGE
    smoothness: float = DEFAULT_SMOOTHNESS
    scale: float = 1.0
    method: str = "ipm"


#: Per-process context cache so one worker serving many cells of the
#: same design characterizes it once (mirrors tables._CTX_CACHE).
_CELL_CTX: dict = {}


def _cell_context(design: str, scale: float, fit_width: bool):
    key = (design, float(scale), bool(fit_width))
    ctx = _CELL_CTX.get(key)
    if ctx is None:
        from repro.core import DesignContext
        from repro.netlist import make_design

        ctx = DesignContext(
            make_design(design, scale=scale), fit_width=fit_width
        )
        _CELL_CTX[key] = ctx
    return ctx


def run_dmopt_cell(cell: DMoptCell) -> dict:
    """Evaluate one cell; returns a small picklable result dict.

    Runs in a worker process under :func:`run_dmopt_cells`; the context
    is rebuilt deterministically (same design generator and placer
    seeds as the serial path), so the golden numbers are identical to a
    serial evaluation.
    """
    from repro.core import optimize_dose_map

    ctx = _cell_context(
        cell.design, cell.scale, cell.fit_width or cell.both_layers
    )
    res = optimize_dose_map(
        ctx,
        cell.grid_size,
        mode=cell.mode,
        both_layers=cell.both_layers,
        dose_range=cell.dose_range,
        smoothness=cell.smoothness,
        method=cell.method,
    )
    return {
        "design": cell.design,
        "grid_size": cell.grid_size,
        "mode": cell.mode,
        "both_layers": cell.both_layers,
        "mct": res.mct,
        "mct_improvement_pct": res.mct_improvement_pct,
        "leakage": res.leakage,
        "leakage_improvement_pct": res.leakage_improvement_pct,
        "baseline_mct": res.baseline_mct,
        "baseline_leakage": res.baseline_leakage,
        "runtime": res.runtime,
        "iterations": res.solve.iterations,
        "status": res.solve.status,
    }


def run_dmopt_cells(cells, jobs: int = None) -> list:
    """Fan independent DMopt cells across processes.

    Returns one result dict per cell, in ``cells`` order regardless of
    worker scheduling.  With ``jobs=1`` (the default absent
    ``REPRO_JOBS``) this is a plain serial loop.  A crashed or killed
    worker does not hole the results: its cell is re-run serially in
    the parent and the retry is recorded in the telemetry manifest.
    """
    cells = list(cells)
    t0 = time.perf_counter()
    telemetry.emit("run_begin", run="dmopt_cells", n_cells=len(cells),
                   jobs=resolve_jobs(jobs))
    results = parallel_map(run_dmopt_cell, cells, jobs=jobs)
    for idx, (cell, res) in enumerate(zip(cells, results)):
        telemetry.emit("cell_done", index=idx, design=cell.design,
                       status=res["status"])
    telemetry.emit("run_end", run="dmopt_cells",
                   seconds=time.perf_counter() - t0)
    return results
