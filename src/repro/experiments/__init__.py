"""Experiments: regeneration of every paper table and figure."""

from repro.experiments import paper_data
from repro.experiments.figures import (
    ascii_plot,
    fig1_dose_profiles,
    fig2_dose_sensitivity,
    fig3_delay_vs_length,
    fig4_delay_vs_width,
    fig5_leakage_vs_length,
    fig6_leakage_vs_width,
    fig10_slack_profiles,
)
from repro.experiments.harness import TableResult
from repro.experiments.tables import (
    GRID_SIZES,
    get_context,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)

__all__ = [
    "TableResult",
    "paper_data",
    "get_context",
    "GRID_SIZES",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "fig1_dose_profiles",
    "fig2_dose_sensitivity",
    "fig3_delay_vs_length",
    "fig4_delay_vs_width",
    "fig5_leakage_vs_length",
    "fig6_leakage_vs_width",
    "fig10_slack_profiles",
    "ascii_plot",
]
