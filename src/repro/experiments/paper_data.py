"""Published numbers from the paper, for paper-vs-measured comparison.

Values transcribed from the TCAD 2010 journal version (Tables II-VIII).
They are *reference shapes*, not absolute targets: our testcases are
synthetic analogues of the proprietary designs, so only relative trends
(signs, orderings, rough factors) are expected to match.
"""

# Table II: AES-65 uniform poly dose sweep, improvement percentages
# dose -> (MCT improvement %, leakage improvement %)
TABLE2_AES65 = {
    -5.0: (-11.36, 37.59), -4.0: (-9.04, 33.06), -3.0: (-6.84, 27.50),
    -2.0: (-4.70, 20.33), -1.0: (-2.38, 11.23), 0.0: (0.0, 0.0),
    1.0: (2.26, -14.60), 2.0: (4.95, -34.02), 3.0: (7.39, -61.21),
    4.0: (10.01, -99.44), 5.0: (12.88, -154.96),
}

# Table III: AES-90 uniform poly dose sweep
TABLE3_AES90 = {
    -5.0: (-9.949, 30.056), -4.0: (-8.283, 26.075), -3.0: (-6.296, 21.222),
    -2.0: (-4.401, 15.462), -1.0: (-2.076, 8.439), 0.0: (0.0, 0.0),
    1.0: (2.029, -10.200), 2.0: (4.257, -23.239), 3.0: (6.161, -40.072),
    4.0: (8.652, -62.115), 5.0: (11.661, -90.067),
}

# Table IV: DMopt poly layer, 5x5 um grids, improvement percentages
# design -> {"qp": (mct imp %, leak imp %), "qcp": (mct imp %, leak imp %)}
TABLE4_5UM = {
    "AES-65": {"qp": (0.44, 8.54), "qcp": (1.89, 1.49)},
    "JPEG-65": {"qp": (0.25, 20.67), "qcp": (4.52, -0.23)},
    "AES-90": {"qp": (0.75, 24.98), "qcp": (6.47, 1.82)},
    "JPEG-90": {"qp": (0.41, 21.40), "qcp": (8.23, 2.52)},
}

# Table IV trend: leakage improvement under QP by grid size (AES-65)
TABLE4_AES65_QP_LEAK_BY_GRID = {5.0: 8.54, 10.0: 3.05, 30.0: 0.01}

# Table V: QCP on both layers, 5x5 um grids (65 nm designs)
# design -> (poly-only MCT imp %, both-layer MCT imp %)
TABLE5_5UM = {"AES-65": (1.89, 3.17), "JPEG-65": (4.52, 4.10)}

# Table VI: QP on both layers, 5x5 um grids (65 nm designs)
# design -> (poly-only leak imp %, both-layer leak imp %)
TABLE6_5UM = {"AES-65": (8.54, 14.33), "JPEG-65": (20.67, 21.07)}

# Table VII: percentage of critical paths within timing ranges
# design -> (95-100 % MCT, 90-100 %, 80-100 %)
TABLE7 = {
    "AES-65": (16.54, 28.98, 41.98),
    "JPEG-65": (4.80, 9.89, 30.23),
    "AES-90": (0.91, 4.54, 22.84),
    "JPEG-90": (0.12, 0.35, 3.92),
}

# Table VIII: QCP followed by dosePl, 5x5 um grids
# design -> (nominal MCT, after-QCP MCT, after-dosePl MCT) in ns
TABLE8 = {
    "AES-65": (1.638, 1.607, 1.601),
    "JPEG-65": (2.179, 2.081, 1.847),
}

# Section V text: max sum-of-squared residuals of the delay curve fits
FIT_SSR_POLY_ONLY = 0.0005
FIT_SSR_BOTH_LAYERS = 0.0101
