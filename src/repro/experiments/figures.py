"""Regeneration of the paper's figures (3, 4, 5, 6, 10) as data series.

Figures are returned as :class:`~repro.experiments.harness.TableResult`
objects holding the plotted series (x, y columns), plus a tiny ASCII
renderer for terminal inspection.  Figures 1, 2 and 9 are equipment /
concept illustrations with no data content; Fig. 1's actuator math is
exercised by :mod:`repro.dosemap.profiles` instead.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    bias_critical_paths,
    optimize_dose_map,
    run_dosepl,
)
from repro.experiments.harness import TableResult
from repro.experiments.tables import get_context
from repro.library import CellLibrary
from repro.tech import device, get_node


def fig1_dose_profiles() -> TableResult:
    """Fig. 1: the Unicom-XL (slit) and Dosicom (scan) actuator concept.

    The paper's Fig. 1 is an equipment illustration; its mathematical
    content is the pair of profile families -- a polynomial slit profile
    (default production filter: quadratic) and a Legendre-series scan
    profile (equation (1)).  We render representative members of both.
    """
    from repro.dosemap import legendre_scan_profile, slit_profile

    xs = np.linspace(-1, 1, 21)
    slit = slit_profile([0.0, 0.0, -2.0], xs)  # quadratic gray filter
    scan = legendre_scan_profile([0.5, 1.0, 0.0, -0.8], xs)
    rows = [
        [float(x), float(s), float(d)] for x, s, d in zip(xs, slit, scan)
    ]
    return TableResult(
        exp_id="Fig. 1",
        title="DoseMapper actuator profiles: Unicom-XL slit (quadratic) "
        "and Dosicom scan (Legendre, eq. (1))",
        headers=["position", "slit dose %", "scan dose %"],
        rows=rows,
        notes=["Fig. 9 (cell bounding box) is a layout illustration with "
               "no data content; its math lives in "
               "Placement.neighborhood_bbox"],
    )


def fig2_dose_sensitivity(node_name: str = "65nm") -> TableResult:
    """Fig. 2: dose sensitivity -- increasing dose decreases CD.

    Linear CD-vs-dose with the paper's typical Ds = -2 nm/%.
    """
    from repro.constants import DEFAULT_DOSE_SENSITIVITY
    from repro.tech import device

    node = get_node(node_name)
    doses = np.linspace(-5, 5, 21)
    rows = [
        [
            float(d),
            float(node.l_nominal
                  + device.dose_to_delta_cd(d, DEFAULT_DOSE_SENSITIVITY)),
        ]
        for d in doses
    ]
    return TableResult(
        exp_id="Fig. 2",
        title=f"Dose sensitivity: printed CD vs dose ({node_name}, "
        "Ds = -2 nm/%)",
        headers=["dose %", "CD nm"],
        rows=rows,
        notes=["increasing dose decreases the printed CD (negative Ds)"],
    )


def fig3_delay_vs_length(node_name: str = "65nm") -> TableResult:
    """Fig. 3: inverter delay vs gate length (approximately linear)."""
    node = get_node(node_name)
    lib = CellLibrary(node_name)
    inv = lib.cell("INVX1")
    lengths = np.linspace(node.l_nominal - 10, node.l_nominal + 10, 21)
    loads = 4.0  # fF, a representative FO-like load
    rows = []
    for length in lengths:
        r_n = float(device.on_resistance(node, length, inv.w_n))
        r_p = float(device.on_resistance(node, length, inv.w_p))
        c = loads + float(device.parasitic_cap(node, inv.w_n + inv.w_p))
        tphl = np.log(2) * r_n * c * 1e-3
        tplh = np.log(2) * r_p * c * 1e-3
        rows.append([float(length), tplh, tphl])
    return TableResult(
        exp_id="Fig. 3",
        title=f"INVX1 delay vs gate length ({node_name})",
        headers=["L nm", "TPLH ns", "TPHL ns"],
        rows=rows,
        notes=["delay is approximately linear in L near nominal"],
    )


def fig4_delay_vs_width(node_name: str = "65nm") -> TableResult:
    """Fig. 4: inverter delay vs gate width change (approximately linear)."""
    node = get_node(node_name)
    lib = CellLibrary(node_name)
    inv = lib.cell("INVX1")
    dws = np.linspace(-10, 10, 21)
    rows = []
    for dw in dws:
        r_n = float(device.on_resistance(node, node.l_nominal, inv.w_n + dw))
        r_p = float(device.on_resistance(node, node.l_nominal, inv.w_p + dw))
        c = 4.0 + float(device.parasitic_cap(node, inv.w_n + inv.w_p + 2 * dw))
        rows.append(
            [float(dw), np.log(2) * r_p * c * 1e-3, np.log(2) * r_n * c * 1e-3]
        )
    return TableResult(
        exp_id="Fig. 4",
        title=f"INVX1 delay vs gate width change ({node_name})",
        headers=["dW nm", "TPLH ns", "TPHL ns"],
        rows=rows,
        notes=["delay decreases approximately linearly as width grows"],
    )


def fig5_leakage_vs_length(node_name: str = "65nm") -> TableResult:
    """Fig. 5: INVX1 average leakage vs gate length (exponential)."""
    node = get_node(node_name)
    lib = CellLibrary(node_name)
    from repro.library import cell_leakage

    lengths = np.linspace(node.l_nominal - 10, node.l_nominal + 10, 21)
    rows = []
    for length in lengths:
        leak = cell_leakage(node, lib.cell("INVX1"), dl_nm=length - node.l_nominal)
        rows.append([float(length), leak])
    return TableResult(
        exp_id="Fig. 5",
        title=f"INVX1 average leakage vs gate length ({node_name}, "
        "VDD nominal, 25C, TT)",
        headers=["L nm", "leakage uW"],
        rows=rows,
        notes=["leakage is exponential in gate length"],
    )


def fig6_leakage_vs_width(node_name: str = "65nm") -> TableResult:
    """Fig. 6: INVX1 average leakage vs gate width change (linear)."""
    node = get_node(node_name)
    lib = CellLibrary(node_name)
    dws = np.linspace(-10, 10, 21)
    rows = []
    from repro.library import cell_leakage

    for dw in dws:
        rows.append(
            [float(dw), cell_leakage(node, lib.cell("INVX1"), dw_nm=float(dw))]
        )
    return TableResult(
        exp_id="Fig. 6",
        title=f"INVX1 average leakage vs gate width change ({node_name})",
        headers=["dW nm", "leakage uW"],
        rows=rows,
        notes=["leakage is linear in gate width"],
    )


def fig10_slack_profiles(design: str = "AES-65", grid_size: float = 5.0,
                         top_k: int = 1000, n_bins: int = 30) -> TableResult:
    """Fig. 10: endpoint slack profiles for Orig / DMopt / dosePl / Bias.

    All four designs' slacks are measured against the *original* MCT so
    the profiles share an x-axis, as in the paper's figure.
    """
    ctx = get_context(design)
    period = ctx.baseline.mct

    orig = ctx.analyzer.analyze(clock_period=period)
    qcp = optimize_dose_map(ctx, grid_size, mode="qcp")
    dmopt = ctx.analyzer.analyze(
        doses=ctx.gate_doses(qcp.dose_map_poly), clock_period=period
    )
    dp = run_dosepl(ctx, qcp.dose_map_poly)
    dp_analyzer = ctx.analyzer_for(dp.placement)
    dosepl = dp_analyzer.analyze(
        doses=ctx.gate_doses(qcp.dose_map_poly, placement=dp.placement),
        clock_period=period,
    )
    bias_res, bias_leak, bias_doses = bias_critical_paths(ctx, k=top_k)
    bias = ctx.analyzer.analyze(doses=bias_doses, clock_period=period)

    all_slacks = np.concatenate(
        [
            np.fromiter(r.slack.values(), dtype=float)
            for r in (orig, dmopt, dosepl, bias)
        ]
    )
    lo, hi = float(all_slacks.min()), float(np.percentile(all_slacks, 75))
    edges = np.linspace(lo, hi, n_bins + 1)
    rows = []
    series = {"Orig": orig, "DMopt": dmopt, "dosePl": dosepl, "Bias": bias}
    counts = {
        name: np.histogram(
            np.fromiter(r.slack.values(), dtype=float), bins=edges
        )[0]
        for name, r in series.items()
    }
    for b in range(n_bins):
        rows.append(
            [
                0.5 * (edges[b] + edges[b + 1]),
                int(counts["Orig"][b]),
                int(counts["DMopt"][b]),
                int(counts["dosePl"][b]),
                int(counts["Bias"][b]),
            ]
        )
    tr = TableResult(
        exp_id="Fig. 10",
        title=f"Slack profiles of {design} (reference period = original MCT)",
        headers=["slack ns", "Orig", "DMopt", "dosePl", "Bias"],
        rows=rows,
    )
    tr.notes.append(
        "worst slack: "
        f"Orig {min(orig.slack.values()):+.3f}, "
        f"DMopt {min(dmopt.slack.values()):+.3f}, "
        f"dosePl {min(dosepl.slack.values()):+.3f}, "
        f"Bias {min(bias.slack.values()):+.3f} ns"
    )
    tr.notes.append(
        f"Bias leakage cost: {bias_leak:.1f} uW vs "
        f"{ctx.baseline_leakage:.1f} uW baseline"
    )
    return tr


def ascii_plot(table: TableResult, x_col: str, y_col: str, width: int = 60,
               height: int = 14) -> str:
    """Tiny ASCII scatter of one series, for terminal inspection."""
    xs = np.array(table.column(x_col), dtype=float)
    ys = np.array(table.column(y_col), dtype=float)
    grid = [[" "] * width for _ in range(height)]
    x0, x1 = xs.min(), xs.max()
    y0, y1 = ys.min(), ys.max()
    if x1 == x0 or y1 == y0:
        return f"(flat series: {y_col} constant at {ys[0]:.4g})"
    for x, y in zip(xs, ys):
        col = int((x - x0) / (x1 - x0) * (width - 1))
        row = height - 1 - int((y - y0) / (y1 - y0) * (height - 1))
        grid[row][col] = "*"
    lines = [f"{table.exp_id}: {y_col} vs {x_col}"]
    lines += ["|" + "".join(r) for r in grid]
    lines.append("+" + "-" * width)
    lines.append(f" x: [{x0:.3g}, {x1:.3g}]  y: [{y0:.4g}, {y1:.4g}]")
    return "\n".join(lines)
