"""Regenerate every paper table/figure from the command line.

Usage::

    python -m repro.experiments                # everything (takes a while)
    python -m repro.experiments table2 table7  # a subset
    python -m repro.experiments --list         # show available experiments

Results are printed and saved under ``benchmarks/results/`` so the
benchmark suite and EXPERIMENTS.md share one source of truth.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments import (
    fig1_dose_profiles,
    fig2_dose_sensitivity,
    fig3_delay_vs_length,
    fig4_delay_vs_width,
    fig5_leakage_vs_length,
    fig6_leakage_vs_width,
    fig10_slack_profiles,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)

EXPERIMENTS = {
    "fig1": fig1_dose_profiles,
    "fig2": fig2_dose_sensitivity,
    "fig3": fig3_delay_vs_length,
    "fig4": fig4_delay_vs_width,
    "fig5": fig5_leakage_vs_length,
    "fig6": fig6_leakage_vs_width,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "table8": table8,
    "fig10": fig10_slack_profiles,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("names", nargs="*", help="experiment names (default: all)")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--out",
        default="benchmarks/results",
        help="output directory for the formatted tables",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for the DMopt tables (4/5/6); 0 = all "
        "cores; default: REPRO_JOBS env or serial",
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="write a JSONL run manifest (solver traces, stage timings); "
        "optional PATH overrides the default "
        "(REPRO_TELEMETRY_PATH or repro_telemetry.jsonl)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="JSONL checkpoint file for the DMopt tables (4/5/6): each "
        "completed cell is appended under a content-hash key so an "
        "interrupted run can restart with --resume",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed cells from --checkpoint instead of "
        "truncating it (requires --checkpoint)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget for the DMopt tables; a cell "
        "exceeding it is killed and reported as status=timeout "
        "(default: REPRO_CELL_TIMEOUT env or no deadline)",
    )
    parser.add_argument(
        "--certify",
        action="store_true",
        help="independently re-verify every DMopt cell (dose range, "
        "smoothness, timing, leakage) and fail the run on violation",
    )
    args = parser.parse_args(argv)
    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint")

    if args.trace is not None:
        from repro import telemetry

        telemetry.configure(
            enabled=True,
            path=None if args.trace is True else args.trace,
        )

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = args.names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; try --list")

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    parallelizable = {"table4", "table5", "table6"}
    # without --resume the checkpoint starts fresh, but only the FIRST
    # table of this invocation truncates it -- later tables append to
    # the same file (cell keys are content hashes, so tables never
    # collide)
    resume = args.resume
    from repro import obs

    with obs.span("experiments", names=names):
        for name in names:
            t0 = time.perf_counter()
            kwargs = {}
            if name in parallelizable:
                # only pass flags the user actually set, so monkeypatched /
                # reduced-signature table functions keep working
                if args.jobs is not None:
                    kwargs["jobs"] = args.jobs
                if args.checkpoint is not None:
                    kwargs["checkpoint"] = args.checkpoint
                    kwargs["resume"] = resume
                    resume = True
                if args.cell_timeout is not None:
                    kwargs["cell_timeout"] = args.cell_timeout
                if args.certify:
                    kwargs["certify"] = True
            with obs.span(f"experiment.{name}"):
                table = EXPERIMENTS[name](**kwargs)
            elapsed = time.perf_counter() - t0
            print(table.format())
            print(f"[{name}: {elapsed:.1f} s]")
            print()
            (out_dir / f"{name}.txt").write_text(table.format() + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
