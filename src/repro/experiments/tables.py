"""Regeneration of the paper's evaluation tables (II-VIII).

Each ``tableN`` function runs the corresponding experiment on the
synthetic testcases and returns a :class:`~repro.experiments.harness.TableResult`
with the same row/column structure the paper reports.  Design contexts
are cached per (design, fit_width) so a full run characterizes each
library once.
"""

from __future__ import annotations

from repro.core import (
    DesignContext,
    DoseplConfig,
    optimize_dose_map,
    run_dosepl,
    uniform_dose_sweep,
)
from repro.experiments.harness import (
    DMoptCell,
    TableResult,
    resolve_jobs,
    run_dmopt_cells,
)
from repro.netlist import make_design

#: Grid sizes per node, as in the paper (coarsest differs by node).
GRID_SIZES = {"65nm": (5.0, 10.0, 30.0), "90nm": (5.0, 10.0, 50.0)}

_CTX_CACHE: dict = {}


def get_context(design: str, fit_width: bool = False,
                sta_backend: str = None) -> DesignContext:
    """Shared, cached design context (placement + baseline + fitters).

    ``sta_backend`` selects the STA engine ("vector" | "reference");
    contexts are cached per backend so differential experiments can hold
    both alive side by side.
    """
    key = (design, fit_width, sta_backend)
    if key not in _CTX_CACHE:
        _CTX_CACHE[key] = DesignContext(
            make_design(design), fit_width=fit_width, sta_backend=sta_backend
        )
    return _CTX_CACHE[key]


def _sweep_table(exp_id: str, design: str) -> TableResult:
    ctx = get_context(design)
    points = uniform_dose_sweep(ctx)
    rows = [
        [
            f"{p.dose:+.1f}",
            p.mct,
            p.mct_improvement_pct,
            p.leakage,
            p.leakage_improvement_pct,
        ]
        for p in points
    ]
    neg = [p for p in points if p.dose < 0]
    pos = [p for p in points if p.dose > 0]
    tr = TableResult(
        exp_id=exp_id,
        title=f"Uniform poly dose sweep on {design}",
        headers=["dose %", "MCT ns", "MCT imp %", "leakage uW", "leak imp %"],
        rows=rows,
    )
    tr.notes.append(
        "negative dose: leakage saved "
        f"{max(p.leakage_improvement_pct for p in neg):.1f}% at worst MCT "
        f"{min(p.mct_improvement_pct for p in neg):.1f}%"
    )
    tr.notes.append(
        "positive dose: MCT improved "
        f"{max(p.mct_improvement_pct for p in pos):.1f}% at worst leakage "
        f"{min(p.leakage_improvement_pct for p in pos):.1f}%"
    )
    return tr


def table2() -> TableResult:
    """Table II: uniform dose sweep, AES-65."""
    return _sweep_table("Table II", "AES-65")


def table3() -> TableResult:
    """Table III: uniform dose sweep, AES-90."""
    return _sweep_table("Table III", "AES-90")


def _node_grid_sizes(design: str) -> tuple:
    """Default grid sizes for a design without building its context."""
    node = design.rsplit("-", 1)[1] + "nm"
    return GRID_SIZES[node]


def _use_cell_runner(jobs, checkpoint, cell_timeout, certify) -> bool:
    """Route through :func:`run_dmopt_cells` instead of the plain loop?

    Parallelism is the historical trigger; checkpointing, watchdog
    deadlines, and certification also live in the cell runner, so any of
    them forces the cells path even at ``jobs=1`` (results are identical
    either way -- that is the cell runner's determinism guarantee).
    """
    return (
        resolve_jobs(jobs) > 1
        or checkpoint is not None
        or cell_timeout is not None
        or certify
    )


def table4(designs=None, grid_sizes=None, jobs=None, checkpoint=None,
           resume=True, cell_timeout=None, certify=False) -> TableResult:
    """Table IV: DMopt on the poly layer, QP and QCP, per grid size.

    QP minimizes leakage under the baseline-MCT bound; QCP minimizes MCT
    under a no-leakage-increase budget (smoothness delta = 2, range
    +/-5 %), exactly the paper's settings.  ``jobs`` (or ``REPRO_JOBS``)
    > 1 fans the (design, grid, mode) cells across processes with
    identical results (see :func:`repro.experiments.harness.run_dmopt_cells`,
    which also documents ``checkpoint``/``resume``, ``cell_timeout``,
    and ``certify``).
    """
    if designs is None:
        designs = ("AES-65", "JPEG-65", "AES-90", "JPEG-90")
    pairs = [
        (design, g)
        for design in designs
        for g in (grid_sizes or _node_grid_sizes(design))
    ]
    rows = []
    if _use_cell_runner(jobs, checkpoint, cell_timeout, certify):
        cells = [
            DMoptCell(design, g, mode=mode)
            for design, g in pairs
            for mode in ("qp", "qcp")
        ]
        out = dict(zip(((c.design, c.grid_size, c.mode) for c in cells),
                       run_dmopt_cells(cells, jobs=jobs,
                                       checkpoint=checkpoint, resume=resume,
                                       cell_timeout=cell_timeout,
                                       certify=certify)))
        for design, g in pairs:
            qp = out[(design, g, "qp")]
            qcp = out[(design, g, "qcp")]
            rows.append(
                [
                    design,
                    f"{g:.0f}x{g:.0f}",
                    qp["mct"],
                    qp["mct_improvement_pct"],
                    qp["leakage"],
                    qp["leakage_improvement_pct"],
                    qp["runtime"],
                    qcp["mct"],
                    qcp["mct_improvement_pct"],
                    qcp["leakage"],
                    qcp["leakage_improvement_pct"],
                    qcp["runtime"],
                ]
            )
        return _table4_result(rows)
    for design, g in pairs:
        ctx = get_context(design)
        qp = optimize_dose_map(ctx, g, mode="qp")
        qcp = optimize_dose_map(ctx, g, mode="qcp")
        rows.append(
            [
                design,
                f"{g:.0f}x{g:.0f}",
                qp.mct,
                qp.mct_improvement_pct,
                qp.leakage,
                qp.leakage_improvement_pct,
                qp.runtime,
                qcp.mct,
                qcp.mct_improvement_pct,
                qcp.leakage,
                qcp.leakage_improvement_pct,
                qcp.runtime,
            ]
        )
    return _table4_result(rows)


def _table4_result(rows) -> TableResult:
    return TableResult(
        exp_id="Table IV",
        title="DMopt on poly layer (gate length modulation), delta=2, +/-5%",
        headers=[
            "design", "grid um",
            "QP MCT", "QP MCT imp %", "QP leak", "QP leak imp %", "QP s",
            "QCP MCT", "QCP MCT imp %", "QCP leak", "QCP leak imp %", "QCP s",
        ],
        rows=rows,
    )


def _both_layer_cells(designs, grid_sizes, mode, jobs, checkpoint=None,
                      resume=True, cell_timeout=None, certify=False):
    """Parallel (poly, both) result-dict pairs for tables V/VI."""
    cells = [
        DMoptCell(design, g, mode=mode, both_layers=bl, fit_width=True)
        for design in designs
        for g in grid_sizes
        for bl in (False, True)
    ]
    out = run_dmopt_cells(cells, jobs=jobs, checkpoint=checkpoint,
                          resume=resume, cell_timeout=cell_timeout,
                          certify=certify)
    return {
        (c.design, c.grid_size, c.both_layers): r
        for c, r in zip(cells, out)
    }


def table5(designs=("AES-65", "JPEG-65"), grid_sizes=(5.0, 10.0, 30.0),
           jobs=None, checkpoint=None, resume=True, cell_timeout=None,
           certify=False) -> TableResult:
    """Table V: QCP for improved timing, poly-only vs both layers."""
    rows = []
    if _use_cell_runner(jobs, checkpoint, cell_timeout, certify):
        out = _both_layer_cells(designs, grid_sizes, "qcp", jobs,
                                checkpoint=checkpoint, resume=resume,
                                cell_timeout=cell_timeout, certify=certify)
        for design in designs:
            for g in grid_sizes:
                poly = out[(design, g, False)]
                both = out[(design, g, True)]
                rows.append(
                    [
                        design,
                        f"{g:.0f}x{g:.0f}",
                        poly["mct"],
                        poly["mct_improvement_pct"],
                        both["mct"],
                        both["mct_improvement_pct"],
                        poly["leakage"],
                        both["leakage"],
                    ]
                )
        return _table5_result(rows)
    for design in designs:
        ctx_w = get_context(design, fit_width=True)
        for g in grid_sizes:
            poly = optimize_dose_map(ctx_w, g, mode="qcp", both_layers=False)
            both = optimize_dose_map(ctx_w, g, mode="qcp", both_layers=True)
            rows.append(
                [
                    design,
                    f"{g:.0f}x{g:.0f}",
                    poly.mct,
                    poly.mct_improvement_pct,
                    both.mct,
                    both.mct_improvement_pct,
                    poly.leakage,
                    both.leakage,
                ]
            )
    return _table5_result(rows)


def _table5_result(rows) -> TableResult:
    return TableResult(
        exp_id="Table V",
        title="QCP timing optimization: gate length vs length+width modulation",
        headers=[
            "design", "grid um",
            "Lgate MCT", "Lgate imp %", "Both MCT", "Both imp %",
            "Lgate leak", "Both leak",
        ],
        rows=rows,
        notes=["both-layer improvement over poly-only is slight: "
               "max |dW| = 10 nm vs >= 200 nm transistor widths"],
    )


def table6(designs=("AES-65", "JPEG-65"), grid_sizes=(5.0, 10.0, 30.0),
           jobs=None, checkpoint=None, resume=True, cell_timeout=None,
           certify=False) -> TableResult:
    """Table VI: QP for improved leakage, poly-only vs both layers."""
    rows = []
    if _use_cell_runner(jobs, checkpoint, cell_timeout, certify):
        out = _both_layer_cells(designs, grid_sizes, "qp", jobs,
                                checkpoint=checkpoint, resume=resume,
                                cell_timeout=cell_timeout, certify=certify)
        for design in designs:
            for g in grid_sizes:
                poly = out[(design, g, False)]
                both = out[(design, g, True)]
                rows.append(
                    [
                        design,
                        f"{g:.0f}x{g:.0f}",
                        poly["leakage"],
                        poly["leakage_improvement_pct"],
                        both["leakage"],
                        both["leakage_improvement_pct"],
                        poly["mct"],
                        both["mct"],
                    ]
                )
        return _table6_result(rows)
    for design in designs:
        ctx_w = get_context(design, fit_width=True)
        for g in grid_sizes:
            poly = optimize_dose_map(ctx_w, g, mode="qp", both_layers=False)
            both = optimize_dose_map(ctx_w, g, mode="qp", both_layers=True)
            rows.append(
                [
                    design,
                    f"{g:.0f}x{g:.0f}",
                    poly.leakage,
                    poly.leakage_improvement_pct,
                    both.leakage,
                    both.leakage_improvement_pct,
                    poly.mct,
                    both.mct,
                ]
            )
    return _table6_result(rows)


def _table6_result(rows) -> TableResult:
    return TableResult(
        exp_id="Table VI",
        title="QP leakage optimization: gate length vs length+width modulation",
        headers=[
            "design", "grid um",
            "Lgate leak", "Lgate imp %", "Both leak", "Both imp %",
            "Lgate MCT", "Both MCT",
        ],
        rows=rows,
    )


def table7(designs=None) -> TableResult:
    """Table VII: fraction of timing endpoints within 95/90/80 % of MCT.

    The paper counts critical *paths*; at our testcase scale raw path
    counting saturates (a single deep cone contributes combinatorially
    many near-equal paths), so we report the per-endpoint worst path --
    the same criticality-concentration statistic with an unbiased
    population.  The trend the paper draws from this table (65 nm
    testcases have a near-critical "hill", 90 nm testcases do not) is
    what the benchmark checks.
    """
    if designs is None:
        designs = ("AES-65", "JPEG-65", "AES-90", "JPEG-90")
    rows = []
    for design in designs:
        ctx = get_context(design)
        arrivals = list(ctx.baseline.endpoint_arrival.values())
        mct = ctx.baseline.mct
        n = len(arrivals)
        frac = {
            t: sum(1 for a in arrivals if a >= t * mct) / n * 100.0
            for t in (0.95, 0.90, 0.80)
        }
        rows.append([design, frac[0.95], frac[0.90], frac[0.80]])
    return TableResult(
        exp_id="Table VII",
        title="Critical-endpoint concentration (worst path per endpoint)",
        headers=["design", "95-100% MCT %", "90-100% MCT %", "80-100% MCT %"],
        rows=rows,
        notes=["65 nm testcases concentrate near-critical paths (the "
               "'hill'); 90 nm testcases are dominated by a few paths"],
    )


def table8(designs=("AES-65", "JPEG-65"), grid_size: float = 5.0,
           dosepl_config: DoseplConfig = None) -> TableResult:
    """Table VIII: QCP dose map optimization followed by dosePl."""
    rows = []
    for design in designs:
        ctx = get_context(design)
        qcp = optimize_dose_map(ctx, grid_size, mode="qcp")
        dp = run_dosepl(ctx, qcp.dose_map_poly, config=dosepl_config)
        rows.append(
            [
                design,
                ctx.baseline.mct,
                qcp.mct,
                qcp.mct_improvement_pct,
                dp.mct,
                (ctx.baseline.mct - dp.mct) / ctx.baseline.mct * 100.0,
                qcp.leakage,
                dp.leakage,
                dp.swaps_accepted,
            ]
        )
    return TableResult(
        exp_id="Table VIII",
        title="QCP + dosePl (cell swapping), 5x5 um grids",
        headers=[
            "design", "nom MCT", "QCP MCT", "QCP imp %",
            "dosePl MCT", "dosePl imp %", "QCP leak", "dosePl leak",
            "swaps",
        ],
        rows=rows,
    )
