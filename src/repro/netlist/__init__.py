"""Netlist substrate: gate-level graph model and synthetic design generators."""

from repro.netlist.designs import DesignBundle, design_names, make_design
from repro.netlist.generators import (
    generate_aes_like,
    generate_jpeg_like,
    resize_for_fanout,
)
from repro.netlist.netlist import Gate, Net, Netlist, NetlistError

__all__ = [
    "Gate",
    "Net",
    "Netlist",
    "NetlistError",
    "generate_aes_like",
    "generate_jpeg_like",
    "resize_for_fanout",
    "DesignBundle",
    "design_names",
    "make_design",
]
