"""Gate-level netlist model.

A :class:`Netlist` is a set of named gates connected by named nets, with
primary inputs/outputs.  Sequential cells (flip-flops/latches) are
ordinary gates whose masters carry ``is_sequential``; for timing, their
outputs are treated as path start points (clk->q) and their data inputs as
path end points (setup) -- the standard "unrolling" the paper invokes in
Section II-C, which reduces the design to a combinational graph between a
fictitious source (index n+1) and sink (index 0).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Gate:
    """One cell instance.

    Attributes
    ----------
    name:
        Unique instance name.
    master:
        Library master name (e.g. ``"NAND2X1"``).
    inputs:
        Input net names, in pin order.
    output:
        Output net name (single-output cells only, as in the paper's
        model; multi-output masters are decomposed by the generators).
    """

    name: str
    master: str
    inputs: tuple
    output: str


@dataclass
class Net:
    """A net: one driver (gate output or primary input) and its sinks."""

    name: str
    driver: str = None  # gate name, or None when driven by a primary input
    sinks: list = field(default_factory=list)  # (gate_name, pin_index)
    is_primary_input: bool = False
    is_primary_output: bool = False

    @property
    def fanout(self) -> int:
        return len(self.sinks) + (1 if self.is_primary_output else 0)


class NetlistError(ValueError):
    """Structural problem in a netlist (multiple drivers, cycles, ...)."""


class Netlist:
    """A gate-level design.

    Gates and nets are stored in insertion order, which together with the
    seeded generators makes every derived artifact (placement, STA,
    optimization) fully deterministic.
    """

    def __init__(self, name: str, node_name: str = "65nm"):
        self.name = name
        self.node_name = node_name
        self.gates: dict = {}
        self.nets: dict = {}
        self.primary_inputs: list = []
        self.primary_outputs: list = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _net(self, net_name: str) -> Net:
        net = self.nets.get(net_name)
        if net is None:
            net = Net(net_name)
            self.nets[net_name] = net
        return net

    def add_primary_input(self, net_name: str) -> None:
        net = self._net(net_name)
        if net.driver is not None:
            raise NetlistError(f"net {net_name!r} already driven by {net.driver!r}")
        if net.is_primary_input:
            raise NetlistError(f"primary input {net_name!r} declared twice")
        net.is_primary_input = True
        self.primary_inputs.append(net_name)

    def add_primary_output(self, net_name: str) -> None:
        net = self._net(net_name)
        if net.is_primary_output:
            raise NetlistError(f"primary output {net_name!r} declared twice")
        net.is_primary_output = True
        self.primary_outputs.append(net_name)

    def add_gate(self, name: str, master: str, inputs, output: str) -> Gate:
        """Add a cell instance; validates single-driver nets."""
        if name in self.gates:
            raise NetlistError(f"gate {name!r} declared twice")
        gate = Gate(name=name, master=master, inputs=tuple(inputs), output=output)
        out_net = self._net(output)
        if out_net.driver is not None or out_net.is_primary_input:
            raise NetlistError(f"net {output!r} has multiple drivers")
        out_net.driver = name
        for pin, net_name in enumerate(gate.inputs):
            self._net(net_name).sinks.append((name, pin))
        self.gates[name] = gate
        return gate

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def gate(self, name: str) -> Gate:
        try:
            return self.gates[name]
        except KeyError:
            raise KeyError(f"unknown gate {name!r}") from None

    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise KeyError(f"unknown net {name!r}") from None

    def fanin_gates(self, gate_name: str):
        """Names of gates driving the inputs of ``gate_name`` (no PIs)."""
        result = []
        for net_name in self.gate(gate_name).inputs:
            driver = self.nets[net_name].driver
            if driver is not None:
                result.append(driver)
        return result

    def fanout_gates(self, gate_name: str):
        """Names of gates driven by the output of ``gate_name``."""
        out = self.gate(gate_name).output
        return [sink for sink, _pin in self.nets[out].sinks]

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    @property
    def n_nets(self) -> int:
        return len(self.nets)

    def master_histogram(self) -> dict:
        """Instance count per master name."""
        hist: dict = {}
        for g in self.gates.values():
            hist[g.master] = hist.get(g.master, 0) + 1
        return hist

    # ------------------------------------------------------------------
    # validation and ordering
    # ------------------------------------------------------------------
    def validate(self, library) -> None:
        """Check structural sanity against a :class:`CellLibrary`.

        * every master exists and pin counts match,
        * every net has a driver (gate or primary input),
        * no combinational cycles (flip-flop outputs break cycles).
        """
        for g in self.gates.values():
            master = library.cell(g.master)  # raises on unknown master
            expected = master.n_inputs + (1 if master.is_sequential else 0)
            # Sequential cells carry an implicit clock pin that we do not
            # model as a net; data pins only.
            if len(g.inputs) != master.n_inputs:
                raise NetlistError(
                    f"gate {g.name!r} ({g.master}): {len(g.inputs)} inputs, "
                    f"master expects {master.n_inputs} (+clock: {expected})"
                )
        for net in self.nets.values():
            if net.driver is None and not net.is_primary_input:
                raise NetlistError(f"net {net.name!r} has no driver")
        self.topological_order(library)  # raises on cycles

    def topological_order(self, library) -> list:
        """Gate names in combinational topological order.

        Sequential gates appear first (they are timing sources); a cycle
        through combinational gates raises :class:`NetlistError`.
        """
        is_seq = {
            name: library.cell(g.master).is_sequential
            for name, g in self.gates.items()
        }
        indeg = {}
        for name in self.gates:
            if is_seq[name]:
                indeg[name] = 0  # FF: launches at clk edge, no comb fanin dep
            else:
                indeg[name] = len(self.fanin_gates(name))
        queue = deque(name for name in self.gates if indeg[name] == 0)
        seen_in_queue = set(queue)
        order = []
        visited = set()
        while queue:
            name = queue.popleft()
            if name in visited:
                continue
            visited.add(name)
            order.append(name)
            for succ in self.fanout_gates(name):
                if is_seq[succ]:
                    continue  # data arc into a FF ends the path
                indeg[succ] -= 1
                if indeg[succ] == 0 and succ not in seen_in_queue:
                    queue.append(succ)
                    seen_in_queue.add(succ)
        if len(order) != len(self.gates):
            missing = sorted(set(self.gates) - visited)[:5]
            raise NetlistError(
                f"combinational cycle detected; unplaced gates include {missing}"
            )
        return order

    def __repr__(self):
        return (
            f"Netlist({self.name!r}, {self.n_gates} gates, {self.n_nets} nets, "
            f"{len(self.primary_inputs)} PIs, {len(self.primary_outputs)} POs)"
        )
