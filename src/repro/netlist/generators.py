"""Synthetic gate-level design generators.

The paper evaluates on four industrial placed-and-routed designs (AES and
JPEG cores at 65 nm and 90 nm, Table I).  Those netlists are proprietary,
so this module generates structurally similar synthetic designs:

* :func:`generate_aes_like` -- a round-based cipher datapath: register
  banks feeding parallel S-box-like logic clouds, MixColumns-like XOR
  trees across lanes, and key-XOR layers.  Its parallel, equal-depth lanes
  produce the dense near-critical slack "hill" the paper reports for the
  65 nm AES (Table VII: 16.5 % of paths within 95 % of MCT).

* :func:`generate_jpeg_like` -- a DCT/quantize pipeline: ripple-carry
  adder chains of heterogeneous widths, quantizer logic clouds and
  MUX-based zigzag reordering.  Path depths are spread out, giving the
  flatter criticality profile of the paper's JPEG cores.

A ``depth_jitter`` knob widens the per-lane depth distribution; the 90 nm
design variants use larger jitter so that only a few paths dominate,
matching Table VII's 90 nm rows.

All generators are deterministic for a given seed.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.netlist import Netlist

#: Combinational master kinds the random clouds draw from, with weights
#: loosely matching synthesized-datapath cell mixes.
_CLOUD_MIX = [
    ("INV", 1, 0.14),
    ("NAND2", 2, 0.22),
    ("NOR2", 2, 0.16),
    ("NAND3", 3, 0.08),
    ("NOR3", 3, 0.05),
    ("XOR2", 2, 0.12),
    ("XNOR2", 2, 0.04),
    ("AOI21", 3, 0.08),
    ("OAI21", 3, 0.08),
    ("MUX2", 3, 0.03),
]


class _Builder:
    """Incremental netlist builder with fresh-name counters."""

    def __init__(self, name: str, node_name: str, seed: int):
        self.netlist = Netlist(name, node_name)
        self.rng = np.random.default_rng(seed)
        self._net_counter = 0
        self._gate_counter = 0

    def new_net(self, hint: str = "n") -> str:
        self._net_counter += 1
        return f"{hint}_{self._net_counter}"

    def add(self, kind: str, inputs, hint: str = "g") -> str:
        """Add an X1 gate of ``kind``; returns its output net name."""
        self._gate_counter += 1
        out = self.new_net(hint)
        self.netlist.add_gate(
            f"{hint}_{self._gate_counter}", f"{kind}X1", inputs, out
        )
        return out

    def pick_inputs(self, pool, k: int):
        """Draw k distinct nets from pool (with replacement if too small)."""
        pool = list(pool)
        if len(pool) >= k:
            idx = self.rng.choice(len(pool), size=k, replace=False)
        else:
            idx = self.rng.choice(len(pool), size=k, replace=True)
        return [pool[i] for i in idx]


def _register_bank(b: _Builder, d_nets, hint: str):
    """One DFF per data net; returns the Q net names."""
    return [b.add("DFF", [d], hint=f"{hint}_ff") for d in d_nets]


def _xor_tree(b: _Builder, nets, hint: str) -> str:
    """Balanced XOR2 reduction tree over ``nets``; returns the root net."""
    level = list(nets)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(b.add("XOR2", [level[i], level[i + 1]], hint=f"{hint}_xt"))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _cloud_template(rng, n_inputs: int, depth: int, width: int):
    """Random layered-logic *structure*: layers of (kind, input indices).

    Separating structure from instantiation lets a caller stamp the same
    cloud into many lanes (a repeated S-box), which is what creates the
    near-critical path "hill" of the 65 nm testcases (paper Table VII).
    """
    kinds = [k for k, _n, _w in _CLOUD_MIX]
    n_in = {k: n for k, n, _w in _CLOUD_MIX}
    weights = np.array([w for _k, _n, w in _CLOUD_MIX])
    weights = weights / weights.sum()

    layers = []
    prev2_size, prev_size = 0, n_inputs
    for _layer in range(depth):
        pool_size = prev_size + (max(1, prev2_size // 3) if prev2_size else 0)
        gates = []
        for _ in range(width):
            kind = kinds[int(rng.choice(len(kinds), p=weights))]
            k = n_in[kind]
            if pool_size >= k:
                idx = rng.choice(pool_size, size=k, replace=False)
            else:
                idx = rng.choice(pool_size, size=k, replace=True)
            gates.append((kind, tuple(int(i) for i in idx)))
        layers.append(gates)
        prev2_size, prev_size = prev_size, width
    return layers


def _instantiate_cloud(b: _Builder, template, inputs, hint: str):
    """Stamp a cloud template onto concrete input nets."""
    prev2: list = []
    prev = list(inputs)
    for li, layer in enumerate(template):
        pool = prev + (prev2[: max(1, len(prev2) // 3)] if prev2 else [])
        outs = [
            b.add(kind, [pool[i] for i in idx], hint=f"{hint}_l{li}")
            for kind, idx in layer
        ]
        prev2 = prev
        prev = outs
    return prev


def _logic_cloud(b: _Builder, inputs, depth: int, width: int, hint: str):
    """Layered random logic cloud; returns the last layer's output nets."""
    template = _cloud_template(b.rng, len(list(inputs)), depth, width)
    return _instantiate_cloud(b, template, inputs, hint)


def _adder_chain(b: _Builder, a_nets, b_nets, carry_in: str, hint: str):
    """Ripple-carry full-adder chain; returns (sum nets, carry-out net).

    The FA master has 3 inputs (a, b, cin) and one modeled output; the
    carry is produced by a dedicated AOI21 so both sum and carry exist as
    real nets (our masters are single-output).
    """
    sums = []
    carry = carry_in
    for i, (a, d) in enumerate(zip(a_nets, b_nets)):
        s = b.add("FA", [a, d, carry], hint=f"{hint}_s{i}")
        carry = b.add("AOI21", [a, d, carry], hint=f"{hint}_c{i}")
        sums.append(s)
    return sums, carry


def _jitter(b: _Builder, base: int, jitter: float) -> int:
    """Depth with multiplicative jitter, at least 1."""
    if jitter <= 0:
        return max(1, base)
    factor = float(b.rng.uniform(1.0 - jitter, 1.0 + jitter))
    return max(1, int(round(base * factor)))


def generate_aes_like(
    name: str = "AES",
    node_name: str = "65nm",
    n_lanes: int = 16,
    bits_per_lane: int = 8,
    n_rounds: int = 2,
    sbox_depth: int = 9,
    sbox_width: int = 8,
    depth_jitter: float = 0.0,
    seed: int = 1,
) -> Netlist:
    """Round-based cipher-like design (see module docstring).

    Approximate gate count:
    ``n_rounds * n_lanes * (bits + sbox_depth*sbox_width + ~2*bits)``.
    """
    b = _Builder(name, node_name, seed)
    nl = b.netlist

    # primary inputs: plaintext + key bits
    state = []
    for lane in range(n_lanes):
        lane_bits = []
        for bit in range(bits_per_lane):
            pi = f"pt_{lane}_{bit}"
            nl.add_primary_input(pi)
            lane_bits.append(pi)
        state.append(lane_bits)
    key_bits = []
    for k in range(n_lanes):
        pi = f"key_{k}"
        nl.add_primary_input(pi)
        key_bits.append(pi)

    group = 4  # MixColumns-like grouping of lanes
    for rnd in range(n_rounds):
        # input registers of the round
        state = [
            _register_bank(b, lane_bits, hint=f"r{rnd}_lane{i}")
            for i, lane_bits in enumerate(state)
        ]
        # S-box clouds per lane: with zero jitter the *same* template is
        # stamped into every lane (a repeated S-box macro), so lane paths
        # have near-identical delays -- the 65 nm criticality hill.  With
        # jitter, each lane gets its own template at a jittered depth.
        shared = (
            _cloud_template(b.rng, bits_per_lane, sbox_depth, sbox_width)
            if depth_jitter <= 0
            else None
        )
        state = [
            _instantiate_cloud(
                b,
                shared
                if shared is not None
                else _cloud_template(
                    b.rng,
                    bits_per_lane,
                    _jitter(b, sbox_depth, depth_jitter),
                    sbox_width,
                ),
                lane_bits,
                hint=f"r{rnd}_sbox{i}",
            )[:bits_per_lane]
            for i, lane_bits in enumerate(state)
        ]
        # pad lanes whose cloud produced fewer nets than bits_per_lane
        state = [
            lane_bits + lane_bits[: bits_per_lane - len(lane_bits)]
            for lane_bits in state
        ]
        # MixColumns-like cross-lane XOR trees
        mixed = []
        for g0 in range(0, n_lanes - group + 1, group):
            lanes = state[g0 : g0 + group]
            new_lanes = []
            for li in range(group):
                bits = []
                for bit in range(bits_per_lane):
                    contrib = [lanes[(li + off) % group][bit] for off in range(3)]
                    bits.append(_xor_tree(b, contrib, hint=f"r{rnd}_mix{g0+li}"))
                new_lanes.append(bits)
            mixed.extend(new_lanes)
        mixed.extend(state[len(mixed) :])  # lanes outside full groups pass through
        # AddRoundKey-like XOR with key bits
        state = [
            [
                b.add("XOR2", [bit, key_bits[i % len(key_bits)]], hint=f"r{rnd}_ark")
                for bit in lane_bits
            ]
            for i, lane_bits in enumerate(mixed)
        ]

    # output registers + primary outputs
    state = [
        _register_bank(b, lane_bits, hint=f"out_lane{i}")
        for i, lane_bits in enumerate(state)
    ]
    for i, lane_bits in enumerate(state):
        for j, net in enumerate(lane_bits):
            po = b.add("BUF", [net], hint=f"po_{i}_{j}")
            nl.add_primary_output(po)
    return nl


def generate_jpeg_like(
    name: str = "JPEG",
    node_name: str = "65nm",
    n_channels: int = 12,
    min_width: int = 4,
    max_width: int = 12,
    quant_depth: int = 7,
    quant_width: int = 6,
    n_stages: int = 3,
    depth_jitter: float = 0.25,
    seed: int = 2,
) -> Netlist:
    """DCT/quantize-like pipelined datapath (see module docstring).

    Channel ``c`` carries an adder of width interpolated between
    ``min_width`` and ``max_width`` -- the width spread is what produces
    the heterogeneous path-depth profile of the JPEG testcases.
    """
    if max_width < min_width:
        raise ValueError("max_width must be >= min_width")
    b = _Builder(name, node_name, seed)
    nl = b.netlist

    widths = np.linspace(min_width, max_width, n_channels).round().astype(int)

    channels = []
    for c, w in enumerate(widths):
        bits = []
        for i in range(int(w)):
            pi = f"pix_{c}_{i}"
            nl.add_primary_input(pi)
            bits.append(pi)
        channels.append(bits)
    zero = b.add("INV", [channels[0][0]], hint="zero")  # constant-ish carry-in

    for stage in range(n_stages):
        # stage registers
        channels = [
            _register_bank(b, bits, hint=f"s{stage}_ch{c}")
            for c, bits in enumerate(channels)
        ]
        # butterfly: pair channels, add/sub via ripple chains
        next_channels = []
        for c in range(0, len(channels) - 1, 2):
            a, d = channels[c], channels[c + 1]
            n = min(len(a), len(d))
            sums, cout = _adder_chain(b, a[:n], d[:n], zero, hint=f"s{stage}_add{c}")
            next_channels.append(sums + [cout] + a[n:])
            diff_bits = [
                b.add("XNOR2", [x, y], hint=f"s{stage}_sub{c}")
                for x, y in zip(a[:n], d[:n])
            ]
            next_channels.append(diff_bits + d[n:])
        if len(channels) % 2:
            next_channels.append(channels[-1])
        channels = next_channels
        # quantizer-ish cloud on each channel (jittered depth)
        channels = [
            _logic_cloud(
                b,
                bits,
                depth=_jitter(b, quant_depth, depth_jitter),
                width=max(quant_width, len(bits) // 2),
                hint=f"s{stage}_q{c}",
            )
            for c, bits in enumerate(channels)
        ]
        # zigzag-like MUX shuffle between adjacent channels
        shuffled = []
        for c, bits in enumerate(channels):
            other = channels[(c + 1) % len(channels)]
            sel = bits[0]
            shuffled.append(
                [
                    b.add(
                        "MUX2",
                        [bit, other[i % len(other)], sel],
                        hint=f"s{stage}_zz{c}",
                    )
                    for i, bit in enumerate(bits)
                ]
            )
        channels = shuffled

    channels = [
        _register_bank(b, bits, hint=f"out_ch{c}") for c, bits in enumerate(channels)
    ]
    for c, bits in enumerate(channels):
        for i, net in enumerate(bits):
            po = b.add("BUF", [net], hint=f"po_{c}_{i}")
            nl.add_primary_output(po)
    return nl


def resize_for_fanout(netlist: Netlist, library) -> Netlist:
    """Simple fanout-based sizing pass.

    Rebuilds the netlist choosing, for each gate, the largest available
    drive strength not exceeding what its fanout warrants (fanout <= 2 ->
    X1, <= 5 -> X2, <= 10 -> X4, else X8).  Mirrors the sizing a synthesis
    tool would have done, so high-fanout nets do not dominate timing for
    the wrong reason.
    """
    available: dict = {}
    for name, master in library.masters.items():
        available.setdefault(master.kind, []).append(master.drive)
    for kind in available:
        available[kind].sort()

    def pick_drive(kind: str, fanout: int) -> int:
        want = 1 if fanout <= 2 else 2 if fanout <= 5 else 4 if fanout <= 10 else 8
        drives = [d for d in available[kind] if d <= want]
        return drives[-1] if drives else available[kind][0]

    sized = Netlist(netlist.name, netlist.node_name)
    for pi in netlist.primary_inputs:
        sized.add_primary_input(pi)
    for g in netlist.gates.values():
        kind = library.cell(g.master).kind
        fanout = netlist.nets[g.output].fanout
        sized.add_gate(
            g.name, f"{kind}X{pick_drive(kind, fanout)}", g.inputs, g.output
        )
    for po in netlist.primary_outputs:
        sized.add_primary_output(po)
    return sized
