"""Named benchmark designs mirroring the paper's Table I testcases.

The paper uses four industrial designs; we generate synthetic analogues
(see :mod:`repro.netlist.generators` and DESIGN.md for the substitution
rationale) at roughly 1/7 scale so the full benchmark suite runs in
minutes.  Chip area is derived from each node's *cells-per-grid density*
in the paper (about 6.3 cells per 5x5 um^2 grid at 65 nm and 2.2 at
90 nm), because Section V identifies that density -- not raw cell count --
as the first-order control on achievable optimization quality.

Use :func:`make_design` to get a :class:`DesignBundle` with the sized
netlist, its library, and the die outline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.library import CellLibrary
from repro.netlist.generators import (
    generate_aes_like,
    generate_jpeg_like,
    resize_for_fanout,
)
from repro.netlist.netlist import Netlist

#: Cell density (cells per um^2) per node, from paper Table I:
#: 65 nm ~ 16187/58000 ~ 0.28; 90 nm ~ 21944/250000 ~ 0.088.
CELL_DENSITY = {"65nm": 0.27, "90nm": 0.088}


@dataclass
class DesignBundle:
    """A generated testcase: netlist + library + die outline (um)."""

    name: str
    netlist: Netlist
    library: CellLibrary
    die_width: float
    die_height: float

    @property
    def node_name(self) -> str:
        return self.library.node.name

    @property
    def die_area(self) -> float:
        return self.die_width * self.die_height

    def __repr__(self):
        return (
            f"DesignBundle({self.name!r}, {self.netlist.n_gates} gates, "
            f"die {self.die_width:.0f}x{self.die_height:.0f} um)"
        )


def _die_for(netlist: Netlist, library: CellLibrary) -> tuple:
    """Square-ish die sized for the node's paper-matching cell density,
    with the height snapped to an integer number of placement rows."""
    density = CELL_DENSITY[library.node.name]
    side = math.sqrt(netlist.n_gates / density)
    row_h = library.node.row_height
    n_rows = max(2, int(round(side / row_h)))
    height = n_rows * row_h
    width = netlist.n_gates / density / height
    return width, height


_SPECS = {
    # name: (generator, node, kwargs)
    "AES-65": (
        generate_aes_like,
        "65nm",
        dict(n_lanes=12, n_rounds=2, sbox_depth=9, sbox_width=8,
             depth_jitter=0.0, seed=65001),
    ),
    "JPEG-65": (
        generate_jpeg_like,
        "65nm",
        dict(n_channels=16, min_width=6, max_width=16, quant_depth=8,
             quant_width=7, n_stages=4, depth_jitter=0.20, seed=65002),
    ),
    "AES-90": (
        generate_aes_like,
        "90nm",
        dict(n_lanes=10, n_rounds=2, sbox_depth=8, sbox_width=8,
             depth_jitter=0.35, seed=90001),
    ),
    "JPEG-90": (
        generate_jpeg_like,
        "90nm",
        dict(n_channels=14, min_width=5, max_width=14, quant_depth=7,
             quant_width=6, n_stages=4, depth_jitter=0.45, seed=90002),
    ),
}


def design_names():
    """The four paper testcase names."""
    return list(_SPECS)


def make_design(name: str, scale: float = 1.0) -> DesignBundle:
    """Generate a named testcase.

    Parameters
    ----------
    name:
        One of ``AES-65``, ``JPEG-65``, ``AES-90``, ``JPEG-90``.
    scale:
        Structural scale factor (>1 grows lane/channel counts toward the
        paper's full-size instances; the default keeps the suite fast).
    """
    try:
        generator, node_name, kwargs = _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown design {name!r}; available: {design_names()}"
        ) from None
    kwargs = dict(kwargs)
    if scale != 1.0:
        for key in ("n_lanes", "n_channels"):
            if key in kwargs:
                kwargs[key] = max(2, int(round(kwargs[key] * scale)))
    library = CellLibrary(node_name)
    netlist = generator(name=name, node_name=node_name, **kwargs)
    netlist = resize_for_fanout(netlist, library)
    netlist.validate(library)
    die_w, die_h = _die_for(netlist, library)
    return DesignBundle(
        name=name,
        netlist=netlist,
        library=library,
        die_width=die_w,
        die_height=die_h,
    )
