"""Physical constants and unit conventions used throughout :mod:`repro`.

Unit conventions (uniform across the whole library):

============  ==========================
Quantity      Unit
============  ==========================
time          nanoseconds (ns)
distance      micrometers (um)
CD / gate L   nanometers (nm)
gate width    nanometers (nm)
capacitance   femtofarads (fF)
resistance    kilo-ohms (kOhm)  [kOhm * fF = ps = 1e-3 ns]
power         microwatts (uW)
voltage       volts (V)
current       microamps (uA)
dose change   percent (%) relative to nominal exposure energy
============  ==========================
"""

# Boltzmann constant times unit charge: thermal voltage at temperature T (K)
# vT = k*T/q; at 298.15 K (25 C, the paper's leakage simulation condition)
THERMAL_VOLTAGE_25C = 0.02569  # volts

#: Default dose sensitivity, nm of CD change per percent dose change.
#: The paper assumes the "typical value of -2 nm/%" [van Schoot et al. 2002].
DEFAULT_DOSE_SENSITIVITY = -2.0  # nm / %

#: Default DoseMapper correction range, percent (paper: +/-5 %).
DEFAULT_DOSE_RANGE = 5.0

#: Default dose-map smoothness bound between adjacent grids, percent
#: (paper experiments: delta = 2).
DEFAULT_SMOOTHNESS = 2.0

#: kOhm * fF product expressed in ns.
KOHM_FF_TO_NS = 1e-3
