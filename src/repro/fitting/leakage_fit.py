"""Leakage coefficient fitting: Leak(dL, dW) ~ c + beta*dL + alpha*dL^2 + gamma*dW.

The paper approximates the (physically exponential) leakage-vs-gate-length
relation by a **quadratic** "to facilitate the problem formulation and
solution method" (Section II-C, footnote 4), and leakage-vs-width as
linear.  The fitted alpha_p, beta_p, gamma_p feed the QP objective /
QCP constraint of equation (2); the constant term is dropped there
because only *delta* leakage matters (Section III).

Leakage does not depend on slew/load, so there is one fit per master.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LeakageFit:
    """Quadratic-in-dL, linear-in-dW leakage model for one master.

    ``leak(dl, dw) ~ c + beta * dl + alpha * dl^2 + gamma * dw`` (uW, nm).

    alpha > 0 (convexity -- required for the QP to be convex), beta < 0
    (longer gate leaks less), gamma > 0 (wider device leaks more).
    """

    c: float
    alpha: float
    beta: float
    gamma: float
    ssr: float

    def predict(self, dl_nm: float, dw_nm: float = 0.0) -> float:
        return self.c + self.beta * dl_nm + self.alpha * dl_nm**2 + self.gamma * dw_nm

    def predict_delta(self, dl_nm: float, dw_nm: float = 0.0) -> float:
        """Delta leakage vs nominal: the paper's equation (2) form."""
        return self.beta * dl_nm + self.alpha * dl_nm**2 + self.gamma * dw_nm


class LeakageFitter:
    """Fits and caches per-master leakage coefficients."""

    def __init__(self, library, fit_width: bool = False, n_dose_samples: int = 9):
        if n_dose_samples < 3:
            raise ValueError("need at least 3 dose samples to fit a quadratic")
        self.library = library
        self.fit_width = bool(fit_width)
        self._doses = np.linspace(
            -library.dose_range, library.dose_range, n_dose_samples
        )
        self._cache: dict = {}

    def fit(self, master_name: str) -> LeakageFit:
        hit = self._cache.get(master_name)
        if hit is not None:
            return hit
        lib = self.library

        samples = []
        for dp in self._doses:
            dl = lib.dose_to_dl(dp)
            if self.fit_width:
                for da in self._doses:
                    dw = lib.dose_to_dw(da)
                    cc = lib.characterized(master_name, float(dp), float(da))
                    samples.append((dl, dw, cc.leakage_uw))
            else:
                cc = lib.characterized(master_name, float(dp), 0.0)
                samples.append((dl, 0.0, cc.leakage_uw))

        dls = np.array([s[0] for s in samples])
        dws = np.array([s[1] for s in samples])
        vals = np.array([s[2] for s in samples])
        if self.fit_width:
            design = np.stack([np.ones_like(dls), dls, dls**2, dws], axis=1)
        else:
            design = np.stack([np.ones_like(dls), dls, dls**2], axis=1)
        coeffs, *_ = np.linalg.lstsq(design, vals, rcond=None)
        resid = vals - design @ coeffs
        fit = LeakageFit(
            c=float(coeffs[0]),
            beta=float(coeffs[1]),
            alpha=float(max(coeffs[2], 0.0)),  # clamp: keep QP convex
            gamma=float(coeffs[3]) if self.fit_width else 0.0,
            ssr=float(np.sum(resid**2)),
        )
        self._cache[master_name] = fit
        return fit

    def max_ssr(self) -> float:
        if not self._cache:
            return 0.0
        return max(f.ssr for f in self._cache.values())
