"""Delay coefficient fitting: t(dL, dW) ~ t0 + A*dL + B*dW.

The paper calibrates, per cell master and per (input slew, load
capacitance) table entry, the linear coefficients ``A_p`` (delay vs gate
length) and ``B_p`` (delay vs gate width) by least squares over the
characterized library variants ("we perform curve fitting for cell delay
versus gate length using the least square method", Section V; "different
values of A_p and B_p are obtained from processing of Liberty nonlinear
delay model tables", Section II-C).

Coefficients are fitted at the characterized table entry **nearest** to
each instance's analyzed (slew, load) operating point, per Section IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DelayFit:
    """Linear delay model around nominal for one (master, slew, load).

    ``delay(dl, dw) ~ t0 + a * dl + b * dw`` with dl/dw in nm, delay ns.

    ``a`` corresponds to the paper's A_p (positive: longer gate, slower)
    and ``b`` to B_p (negative: wider gate, faster).  ``ssr`` is the sum
    of squared residuals of the fit -- the paper's fit-quality metric
    (max SSR 0.0005 for poly-only vs 0.0101 for both layers).
    """

    t0: float
    a: float
    b: float
    ssr: float

    def predict(self, dl_nm: float, dw_nm: float = 0.0) -> float:
        return self.t0 + self.a * dl_nm + self.b * dw_nm


class DelayFitter:
    """Fits and caches per-(master, table-entry) delay coefficients.

    Parameters
    ----------
    library:
        A :class:`~repro.library.CellLibrary`.
    fit_width:
        When True, fit over the 2-D (dL, dW) variant grid (both-layer
        optimization); otherwise over dL only with b = 0 (poly-only).
        The paper observes the 2-D fit has ~20x worse residuals, which
        propagates into slightly worse both-layer optimization results
        (Table V's JPEG-65 anomaly).
    n_dose_samples:
        Dose sample count per axis used for fitting (odd, includes 0).
    """

    def __init__(self, library, fit_width: bool = False, n_dose_samples: int = 5):
        if n_dose_samples < 3:
            raise ValueError("need at least 3 dose samples to fit a line")
        self.library = library
        self.fit_width = bool(fit_width)
        self._doses = np.linspace(
            -library.dose_range, library.dose_range, n_dose_samples
        )
        self._cache: dict = {}

    # ------------------------------------------------------------------
    def fit_at_entry(self, master_name: str, i_slew: int, j_load: int) -> DelayFit:
        """Fit coefficients at one characterized table entry."""
        key = (master_name, i_slew, j_load)
        hit = self._cache.get(key)
        if hit is not None:
            return hit

        lib = self.library
        nominal = lib.nominal(master_name)
        slew = float(nominal.delay.slew_axis[i_slew])
        load = float(nominal.delay.load_axis[j_load])

        samples = []
        for dp in self._doses:
            dl = lib.dose_to_dl(dp)
            if self.fit_width:
                for da in self._doses:
                    dw = lib.dose_to_dw(da)
                    cc = lib.characterized(master_name, float(dp), float(da))
                    samples.append((dl, dw, cc.delay_at(slew, load)))
            else:
                cc = lib.characterized(master_name, float(dp), 0.0)
                samples.append((dl, 0.0, cc.delay_at(slew, load)))

        dls = np.array([s[0] for s in samples])
        dws = np.array([s[1] for s in samples])
        vals = np.array([s[2] for s in samples])
        if self.fit_width:
            design = np.stack([np.ones_like(dls), dls, dws], axis=1)
        else:
            design = np.stack([np.ones_like(dls), dls], axis=1)
        coeffs, *_ = np.linalg.lstsq(design, vals, rcond=None)
        resid = vals - design @ coeffs
        fit = DelayFit(
            t0=float(coeffs[0]),
            a=float(coeffs[1]),
            b=float(coeffs[2]) if self.fit_width else 0.0,
            ssr=float(np.sum(resid**2)),
        )
        self._cache[key] = fit
        return fit

    def fit_for(self, master_name: str, slew_ns: float, load_ff: float) -> DelayFit:
        """Coefficients at the table entry nearest an operating point."""
        table = self.library.nominal(master_name).delay
        i, j = table.nearest_index(slew_ns, load_ff)
        return self.fit_at_entry(master_name, i, j)

    def max_ssr(self) -> float:
        """Worst sum-of-squared-residuals across all fits done so far."""
        if not self._cache:
            return 0.0
        return max(f.ssr for f in self._cache.values())
