"""Coefficient fitting: A/B delay and alpha/beta/gamma leakage models."""

from repro.fitting.delay_fit import DelayFit, DelayFitter
from repro.fitting.leakage_fit import LeakageFit, LeakageFitter

__all__ = ["DelayFit", "DelayFitter", "LeakageFit", "LeakageFitter"]
