"""repro: Dose map and placement co-optimization for timing yield and leakage.

A from-scratch Python reproduction of Jeong, Kahng, Park, Yao,
"Dose Map and Placement Co-Optimization for Improved Timing Yield and
Leakage Power" (DAC 2008 / IEEE TCAD 2010).

Public entry points:

* :class:`repro.library.CellLibrary` -- technology + characterized cells,
* :mod:`repro.netlist.designs` -- the AES/JPEG-like benchmark designs,
* :class:`repro.core.model.DesignContext` -- an analyzed placed design,
* :func:`repro.core.dmopt.optimize_dose_map` -- the paper's DMopt (QP/QCP),
* :func:`repro.core.dosepl.run_dosepl` -- the dose-map-aware placement pass,
* :mod:`repro.experiments` -- regeneration of every paper table and figure.
"""

__version__ = "1.0.0"
