"""Cell library: master set plus dose-variant characterization cache.

A :class:`CellLibrary` owns the 36+9 masters of one technology node and
serves characterized variants for any (delta-L, delta-W) printing bias.
Following the paper, the manufacturable variants form a discrete grid: 21
dose steps of 0.5 % from -5 % to +5 % per layer ("21 different
characterized libraries ... 441 (i.e., 21 x 21)", Section V), and
optimized continuous doses are *snapped* to this grid before golden
signoff ("a rounding step is needed to snap the computed gate lengths and
widths to the cell masters with nearest drive strengths").
"""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_DOSE_RANGE, DEFAULT_DOSE_SENSITIVITY
from repro.library.cell import CellMaster, build_masters
from repro.library.characterize import CharacterizedCell, characterize_cell
from repro.tech.node import TechNode, get_node

#: Dose granularity of the characterized variant grid, in percent.
DOSE_STEP = 0.5


class CellLibrary:
    """Standard-cell library for one technology node.

    Parameters
    ----------
    node:
        Technology node (or its name, e.g. ``"65nm"``).
    dose_sensitivity:
        CD change per percent dose (nm/%); default -2 nm/% as in the paper.
    dose_range:
        Maximum |dose| characterized, percent; default 5.
    """

    def __init__(
        self,
        node,
        dose_sensitivity: float = DEFAULT_DOSE_SENSITIVITY,
        dose_range: float = DEFAULT_DOSE_RANGE,
    ):
        if isinstance(node, str):
            node = get_node(node)
        self.node: TechNode = node
        self.dose_sensitivity = float(dose_sensitivity)
        self.dose_range = float(dose_range)
        # Unit inverter widths anchored to the node's minimum width.
        self._unit_wn = node.w_min
        self._unit_wp = 2.0 * node.w_min
        self.masters: dict = build_masters(self._unit_wn, self._unit_wp)
        self._cache: dict = {}

    # ------------------------------------------------------------------
    # master access
    # ------------------------------------------------------------------
    def cell(self, name: str) -> CellMaster:
        """Look up a master by name."""
        try:
            return self.masters[name]
        except KeyError:
            raise KeyError(f"unknown cell master {name!r}") from None

    @property
    def combinational_names(self):
        return sorted(n for n, m in self.masters.items() if not m.is_sequential)

    @property
    def sequential_names(self):
        return sorted(n for n, m in self.masters.items() if m.is_sequential)

    # ------------------------------------------------------------------
    # dose <-> CD conversion
    # ------------------------------------------------------------------
    def dose_to_dl(self, dose_percent: float) -> float:
        """Poly-layer dose change (%) -> gate length change (nm)."""
        return self.dose_sensitivity * float(dose_percent)

    def dose_to_dw(self, dose_percent: float) -> float:
        """Active-layer dose change (%) -> gate width change (nm)."""
        return self.dose_sensitivity * float(dose_percent)

    def variant_doses(self) -> np.ndarray:
        """The characterized dose grid: -range..+range in 0.5 % steps."""
        n = int(round(self.dose_range / DOSE_STEP))
        return np.arange(-n, n + 1) * DOSE_STEP

    def snap_dose(self, dose_percent: float) -> float:
        """Snap a continuous dose to the nearest characterized variant."""
        clipped = min(max(float(dose_percent), -self.dose_range), self.dose_range)
        return round(clipped / DOSE_STEP) * DOSE_STEP

    # ------------------------------------------------------------------
    # characterized variants
    # ------------------------------------------------------------------
    def characterized(
        self, name: str, dose_poly: float = 0.0, dose_active: float = 0.0
    ) -> CharacterizedCell:
        """Characterized variant of master ``name`` at the given doses.

        Doses are in percent; they are converted to (delta-L, delta-W) via
        the dose sensitivity.  Results are cached per (master, doses
        rounded to 1e-3 %) -- the golden flow only ever asks for snapped
        doses, so the cache stays small (at most 21 x 21 per master).
        """
        key = (name, round(float(dose_poly), 3), round(float(dose_active), 3))
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        cc = characterize_cell(
            self.node,
            self.cell(name),
            dl_nm=self.dose_to_dl(dose_poly),
            dw_nm=self.dose_to_dw(dose_active),
        )
        self._cache[key] = cc
        return cc

    def nominal(self, name: str) -> CharacterizedCell:
        """Characterized master at nominal dose."""
        return self.characterized(name, 0.0, 0.0)

    def __repr__(self):
        return (
            f"CellLibrary(node={self.node.name!r}, "
            f"{len(self.combinational_names)} comb + "
            f"{len(self.sequential_names)} seq masters)"
        )
