"""Standard-cell master definitions.

A :class:`CellMaster` describes one library cell (e.g. ``NAND2X1``) in
enough electrical detail for the analytical characterizer in
:mod:`repro.library.characterize` to produce NLDM-style delay/slew tables
and leakage numbers: per-network transistor widths, series-stack depths,
number of internal stages, and footprint.

The cell set mirrors the paper's production libraries: **36 combinational
masters and 9 sequential masters** per node (Section II-C: "36 different
65 nm standard cell masters ... 36 combinational cells and nine sequential
cells").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CellMaster:
    """One standard-cell master.

    Attributes
    ----------
    name:
        Library name, e.g. ``"NAND2X1"``.
    kind:
        Logical function family, e.g. ``"NAND2"``.
    drive:
        Drive strength multiplier (1, 2, 4, 8).
    n_inputs:
        Number of data inputs (excludes clock for sequential cells).
    w_n, w_p:
        Effective NMOS / PMOS network widths in nm at this drive strength
        (per-finger width times finger count).
    stack_n, stack_p:
        Worst-case series-stack depth of the pull-down / pull-up networks
        (e.g. 2 for NAND2 pull-down).
    stages:
        Number of internal switching stages (1 for INV/NAND/NOR/AOI,
        2 for BUF/AND/OR/XOR/MUX, 3 for flops' clk->q path).
    is_sequential:
        True for flip-flops and latches.
    width_sites:
        Cell footprint in placement sites.
    leak_states:
        Average-leakage derating across input states (1.0 = all devices
        contribute their nominal off current; series stacks leak less).
    intrinsic_ns:
        Fixed intrinsic delay added per stage (wire/internal-node RC not
        captured by the load-dependent term), in ns.
    setup_ns, clk_q_extra_ns:
        Sequential-only: setup time and extra clk->q latency.
    """

    name: str
    kind: str
    drive: int
    n_inputs: int
    w_n: float
    w_p: float
    stack_n: int
    stack_p: int
    stages: int
    is_sequential: bool
    width_sites: int
    leak_states: float
    intrinsic_ns: float = 0.002
    setup_ns: float = 0.0
    clk_q_extra_ns: float = 0.0

    @property
    def w_total(self) -> float:
        """Total transistor width (nm) -- proxy for leakage footprint."""
        return self.w_n + self.w_p

    def __post_init__(self):
        if self.drive < 1:
            raise ValueError(f"{self.name}: drive must be >= 1")
        if self.w_n <= 0 or self.w_p <= 0:
            raise ValueError(f"{self.name}: transistor widths must be positive")
        if self.stages < 1:
            raise ValueError(f"{self.name}: stages must be >= 1")


def _comb(
    kind: str,
    drive: int,
    n_inputs: int,
    stack_n: int,
    stack_p: int,
    stages: int,
    unit_wn: float,
    unit_wp: float,
    base_sites: int,
    leak_states: float,
) -> CellMaster:
    """Build one combinational master scaled by drive strength."""
    return CellMaster(
        name=f"{kind}X{drive}",
        kind=kind,
        drive=drive,
        n_inputs=n_inputs,
        # Series stacks are upsized so the stacked network drives like the
        # unit inverter (standard logical-effort sizing).
        w_n=unit_wn * drive * stack_n,
        w_p=unit_wp * drive * stack_p,
        stack_n=stack_n,
        stack_p=stack_p,
        stages=stages,
        is_sequential=False,
        width_sites=base_sites + drive - 1,
        leak_states=leak_states,
    )


def _seq(
    kind: str,
    drive: int,
    n_inputs: int,
    unit_wn: float,
    unit_wp: float,
    base_sites: int,
    setup_ns: float,
    clk_q_extra_ns: float,
) -> CellMaster:
    """Build one sequential master scaled by drive strength."""
    return CellMaster(
        name=f"{kind}X{drive}",
        kind=kind,
        drive=drive,
        n_inputs=n_inputs,
        w_n=unit_wn * drive,
        w_p=unit_wp * drive,
        stack_n=2,
        stack_p=2,
        stages=3,
        is_sequential=True,
        width_sites=base_sites + 2 * (drive - 1),
        leak_states=2.4,  # flops hold many devices; several leak paths
        setup_ns=setup_ns,
        clk_q_extra_ns=clk_q_extra_ns,
    )


def build_masters(unit_wn: float, unit_wp: float) -> dict:
    """Construct the full master set for one node.

    Parameters
    ----------
    unit_wn, unit_wp:
        Unit (X1 inverter) NMOS and PMOS widths in nm for the node.

    Returns
    -------
    dict
        Mapping master name -> :class:`CellMaster`; exactly 36
        combinational and 9 sequential masters.
    """
    masters = []

    # --- combinational: kind, drives, n_in, stack_n, stack_p, stages, sites, leak
    combo_spec = [
        ("INV", (1, 2, 4, 8), 1, 1, 1, 1, 1, 1.00),
        ("BUF", (1, 2, 4, 8), 1, 1, 1, 2, 2, 1.60),
        ("NAND2", (1, 2, 4), 2, 2, 1, 1, 2, 0.75),
        ("NAND3", (1, 2), 3, 3, 1, 1, 3, 0.65),
        ("NAND4", (1,), 4, 4, 1, 1, 4, 0.60),
        ("NOR2", (1, 2, 4), 2, 1, 2, 1, 2, 0.75),
        ("NOR3", (1, 2), 3, 1, 3, 1, 3, 0.65),
        ("NOR4", (1,), 4, 1, 4, 1, 4, 0.60),
        ("AND2", (1, 2), 2, 2, 1, 2, 3, 1.40),
        ("OR2", (1, 2), 2, 1, 2, 2, 3, 1.40),
        ("XOR2", (1, 2), 2, 2, 2, 2, 4, 1.80),
        ("XNOR2", (1,), 2, 2, 2, 2, 4, 1.80),
        ("AOI21", (1, 2), 3, 2, 2, 1, 3, 0.70),
        ("AOI22", (1,), 4, 2, 2, 1, 4, 0.70),
        ("OAI21", (1, 2), 3, 2, 2, 1, 3, 0.70),
        ("OAI22", (1,), 4, 2, 2, 1, 4, 0.70),
        ("MUX2", (1, 2), 3, 2, 2, 2, 4, 1.70),
        ("FA", (1,), 3, 2, 2, 2, 6, 2.20),
    ]
    for kind, drives, n_in, sn, sp, stages, sites, leak in combo_spec:
        for drive in drives:
            masters.append(
                _comb(kind, drive, n_in, sn, sp, stages, unit_wn, unit_wp, sites, leak)
            )

    # --- sequential: kind, drives, n_in (data inputs), sites, setup, clkq-extra
    seq_spec = [
        ("DFF", (1, 2, 4), 1, 5, 0.045, 0.030),
        ("DFFR", (1, 2), 2, 6, 0.050, 0.034),
        ("DFFS", (1,), 2, 6, 0.050, 0.034),
        ("SDFF", (1, 2), 3, 7, 0.055, 0.038),
        ("LATCH", (1,), 1, 4, 0.030, 0.022),
    ]
    for kind, drives, n_in, sites, setup, clkq in seq_spec:
        for drive in drives:
            masters.append(
                _seq(kind, drive, n_in, unit_wn, unit_wp, sites, setup, clkq)
            )

    result = {m.name: m for m in masters}
    n_comb = sum(1 for m in result.values() if not m.is_sequential)
    n_seq = sum(1 for m in result.values() if m.is_sequential)
    assert n_comb == 36, f"expected 36 combinational masters, got {n_comb}"
    assert n_seq == 9, f"expected 9 sequential masters, got {n_seq}"
    return result
