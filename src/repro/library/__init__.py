"""Standard-cell library substrate: masters, NLDM tables, characterization."""

from repro.library.cell import CellMaster, build_masters
from repro.library.characterize import (
    CharacterizedCell,
    cell_leakage,
    characterize_cell,
    input_capacitance,
)
from repro.library.library import DOSE_STEP, CellLibrary
from repro.library.nldm import NLDMTable, default_load_axis, default_slew_axis

__all__ = [
    "CellMaster",
    "build_masters",
    "CharacterizedCell",
    "characterize_cell",
    "cell_leakage",
    "input_capacitance",
    "CellLibrary",
    "DOSE_STEP",
    "NLDMTable",
    "default_slew_axis",
    "default_load_axis",
]
