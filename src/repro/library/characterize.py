"""Cell characterization: analytical device model -> NLDM tables.

This is the repository's counterpart of the paper's "pre-characterized
cell libraries with gate length and gate width variants" (Section V): for
a given master and a (delta-L, delta-W) printing bias, we compute Liberty
style delay and output-slew tables over a slew x load window, plus the
cell's input pin capacitance and state-averaged leakage power.

Multi-stage cells (BUF, AND2, XOR2, flops, ...) are characterized by
chaining stage models with slew propagation, so their delay sensitivity to
gate length is correspondingly larger than single-stage cells' -- the
per-master A_p spread the paper's fitting step exists to capture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.library.cell import CellMaster
from repro.library.nldm import NLDMTable, default_load_axis, default_slew_axis
from repro.tech import device
from repro.tech.node import TechNode

#: Width ratio of internal (non-output) stages relative to the output stage.
_INTERNAL_STAGE_SCALE = 0.5


@dataclass(frozen=True)
class CharacterizedCell:
    """Characterization result for one (master, delta-L, delta-W) variant.

    Attributes
    ----------
    master:
        The characterized :class:`~repro.library.cell.CellMaster`.
    dl_nm, dw_nm:
        Gate length / width bias (nm) relative to nominal printing.
    delay:
        NLDM propagation-delay table (ns), averaged over rise/fall.
    out_slew:
        NLDM output transition table (ns).
    input_cap_ff:
        Input pin capacitance (fF) -- per data pin.
    leakage_uw:
        State-averaged leakage power (uW).
    setup_ns:
        Setup time for sequential cells (0 for combinational).
    """

    master: CellMaster
    dl_nm: float
    dw_nm: float
    delay: NLDMTable
    out_slew: NLDMTable
    input_cap_ff: float
    leakage_uw: float
    setup_ns: float

    @property
    def name(self) -> str:
        return self.master.name

    def delay_at(self, slew_ns: float, load_ff: float) -> float:
        """Interpolated propagation delay (ns)."""
        return self.delay.lookup(slew_ns, load_ff)

    def slew_at(self, slew_ns: float, load_ff: float) -> float:
        """Interpolated output transition time (ns)."""
        return self.out_slew.lookup(slew_ns, load_ff)


def _stage_r_c(node: TechNode, master: CellMaster, dl_nm: float, dw_nm: float):
    """Effective (resistance, parasitic cap) of the master's output stage.

    Averages the pull-up and pull-down networks (rise/fall averaging) and
    applies the series-stack factors.
    """
    length = node.l_nominal + dl_nm
    w_n = master.w_n + dw_nm
    w_p = master.w_p + dw_nm
    r_down = float(device.on_resistance(node, length, w_n)) * master.stack_n
    r_up = float(device.on_resistance(node, length, w_p)) * master.stack_p
    r_eff = 0.5 * (r_down + r_up)
    c_par = float(device.parasitic_cap(node, w_n + w_p))
    return r_eff, c_par


def input_capacitance(node: TechNode, master: CellMaster, dw_nm: float = 0.0) -> float:
    """Input pin capacitance (fF): each pin gates one N and one P device."""
    return float(device.gate_input_cap(node, master.w_n + master.w_p + 2.0 * dw_nm))


def cell_leakage(
    node: TechNode, master: CellMaster, dl_nm: float = 0.0, dw_nm: float = 0.0
) -> float:
    """State-averaged leakage power (uW) of one cell instance.

    Averages the pull-up and pull-down network off-currents (each network
    is off roughly half the input states), derated by the per-master
    ``leak_states`` factor, with series stacks leaking proportionally less.
    """
    length = node.l_nominal + dl_nm
    i_n = float(
        device.leakage_current(node, length, master.w_n + dw_nm, stack=master.stack_n)
    )
    i_p = float(
        device.leakage_current(node, length, master.w_p + dw_nm, stack=master.stack_p)
    )
    return master.leak_states * 0.5 * (i_n + i_p) * node.vdd


def characterize_cell(
    node: TechNode,
    master: CellMaster,
    dl_nm: float = 0.0,
    dw_nm: float = 0.0,
    slew_axis: np.ndarray = None,
    load_axis: np.ndarray = None,
) -> CharacterizedCell:
    """Produce NLDM tables for one (master, delta-L, delta-W) variant.

    Raises
    ------
    ValueError
        If the bias drives gate length or any transistor width to zero or
        below (physically meaningless variant).
    """
    length = node.l_nominal + dl_nm
    if length <= 0:
        raise ValueError(f"gate length bias {dl_nm} nm yields non-positive length")
    if master.w_n + dw_nm <= 0 or master.w_p + dw_nm <= 0:
        raise ValueError(f"gate width bias {dw_nm} nm yields non-positive width")

    if slew_axis is None:
        slew_axis = default_slew_axis()
    if load_axis is None:
        load_axis = default_load_axis(input_capacitance(node, master))

    r_out, c_par_out = _stage_r_c(node, master, dl_nm, dw_nm)
    pin_cap = input_capacitance(node, master, dw_nm)

    slews = np.asarray(slew_axis, dtype=float)[:, None]  # (S, 1)
    loads = np.asarray(load_axis, dtype=float)[None, :]  # (1, C)

    # Chain the internal stages (if any) before the output stage.  Internal
    # stages see a fixed load: the gate cap of the next (scaled) stage.
    delay = np.zeros((slews.size, loads.shape[1]))
    cur_slew = np.broadcast_to(slews, (slews.size, loads.shape[1])).copy()
    ln2 = np.log(2.0)
    for _stage in range(master.stages - 1):
        w_int_n = master.w_n * _INTERNAL_STAGE_SCALE + dw_nm
        w_int_p = master.w_p * _INTERNAL_STAGE_SCALE + dw_nm
        r_int = 0.5 * (
            float(device.on_resistance(node, length, w_int_n)) * master.stack_n
            + float(device.on_resistance(node, length, w_int_p)) * master.stack_p
        )
        c_int = float(device.parasitic_cap(node, w_int_n + w_int_p)) + pin_cap
        stage_d = ln2 * r_int * c_int * 1e-3 + device._SLEW_DELAY_FACTOR * cur_slew
        delay += stage_d + master.intrinsic_ns
        cur_slew = np.full_like(cur_slew, device._SLEW_RC_FACTOR * r_int * c_int * 1e-3)

    # Output stage drives the external load.
    c_total = c_par_out + loads
    delay += (
        ln2 * r_out * c_total * 1e-3
        + device._SLEW_DELAY_FACTOR * cur_slew
        + master.intrinsic_ns
    )
    out_slew = device._SLEW_RC_FACTOR * r_out * c_total * 1e-3
    out_slew = np.broadcast_to(out_slew, delay.shape).copy()

    if master.is_sequential:
        delay = delay + master.clk_q_extra_ns

    return CharacterizedCell(
        master=master,
        dl_nm=dl_nm,
        dw_nm=dw_nm,
        delay=NLDMTable(slew_axis, load_axis, delay),
        out_slew=NLDMTable(slew_axis, load_axis, out_slew),
        input_cap_ff=pin_cap,
        leakage_uw=cell_leakage(node, master, dl_nm, dw_nm),
        setup_ns=master.setup_ns,
    )
