"""Nonlinear delay model (NLDM) lookup tables.

Liberty-style 2-D tables indexed by (input transition time, output load
capacitance), with bilinear interpolation inside the characterized window
and clamped extrapolation outside it -- the same access pattern a signoff
timer uses, and the raw material the paper's coefficient fitting consumes
("the coefficients of the delay functions may be calibrated for each entry
in each delay table", Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NLDMTable:
    """One 2-D lookup table: value = f(input slew, output load).

    Attributes
    ----------
    slew_axis:
        Strictly increasing input-transition axis (ns).
    load_axis:
        Strictly increasing output-load axis (fF).
    values:
        2-D array of shape ``(len(slew_axis), len(load_axis))``.
    """

    slew_axis: np.ndarray
    load_axis: np.ndarray
    values: np.ndarray

    def __post_init__(self):
        slew = np.asarray(self.slew_axis, dtype=float)
        load = np.asarray(self.load_axis, dtype=float)
        vals = np.asarray(self.values, dtype=float)
        if vals.shape != (slew.size, load.size):
            raise ValueError(
                f"values shape {vals.shape} does not match axes "
                f"({slew.size}, {load.size})"
            )
        if slew.size < 2 or load.size < 2:
            raise ValueError("axes need at least two points each")
        if np.any(np.diff(slew) <= 0) or np.any(np.diff(load) <= 0):
            raise ValueError("axes must be strictly increasing")
        object.__setattr__(self, "slew_axis", slew)
        object.__setattr__(self, "load_axis", load)
        object.__setattr__(self, "values", vals)

    def lookup(self, slew_ns: float, load_ff: float) -> float:
        """Bilinear interpolation, clamped to the table window."""
        s = float(np.clip(slew_ns, self.slew_axis[0], self.slew_axis[-1]))
        c = float(np.clip(load_ff, self.load_axis[0], self.load_axis[-1]))
        i = int(np.searchsorted(self.slew_axis, s, side="right") - 1)
        j = int(np.searchsorted(self.load_axis, c, side="right") - 1)
        i = min(i, self.slew_axis.size - 2)
        j = min(j, self.load_axis.size - 2)
        s0, s1 = self.slew_axis[i], self.slew_axis[i + 1]
        c0, c1 = self.load_axis[j], self.load_axis[j + 1]
        fs = (s - s0) / (s1 - s0)
        fc = (c - c0) / (c1 - c0)
        v = self.values
        return float(
            v[i, j] * (1 - fs) * (1 - fc)
            + v[i + 1, j] * fs * (1 - fc)
            + v[i, j + 1] * (1 - fs) * fc
            + v[i + 1, j + 1] * fs * fc
        )

    def nearest_index(self, slew_ns: float, load_ff: float) -> tuple:
        """Index of the characterized entry nearest to (slew, load).

        Used by the coefficient fitter: the paper applies "the
        coefficients associated with the nearest entry" to each cell
        instance.
        """
        i = int(np.argmin(np.abs(self.slew_axis - slew_ns)))
        j = int(np.argmin(np.abs(self.load_axis - load_ff)))
        return i, j


def default_slew_axis() -> np.ndarray:
    """Default characterization slew axis (ns), 7 points."""
    return np.array([0.008, 0.016, 0.032, 0.064, 0.128, 0.256, 0.512])


def default_load_axis(unit_cap_ff: float) -> np.ndarray:
    """Default characterization load axis (fF), 7 points.

    Scaled by ``unit_cap_ff`` (the input capacitance of the node's unit
    inverter) so the table window covers fanouts of roughly 0.5x to 32x.
    """
    return unit_cap_ff * np.array([0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
