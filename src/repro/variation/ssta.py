"""Statistical static timing analysis (SSTA), first-order canonical form.

The analytic complement of :mod:`repro.variation.montecarlo`: gate delays
are modeled in the canonical first-order form

    D = d0 + sum_k s_k * X_k + r * R,

where the ``X_k`` are shared standard-normal sources (one per spatial
correlation grid -- the systematic CD component) and ``R`` is a
gate-private standard normal (the random CD component).  Arrival times
propagate through SUM exactly and through MAX with Clark's moment
matching, preserving spatial correlation -- which is exactly what a dose
map manipulates, making SSTA the natural yield analysis for this paper's
setting.

Outputs the chip MCT as a canonical form, from which mean, sigma, and
timing-yield quantiles follow in closed form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dosemap import GridPartition
from repro.variation.montecarlo import VariationModel

_SQRT2PI = math.sqrt(2.0 * math.pi)


def _phi(x: float) -> float:
    """Standard normal pdf."""
    return math.exp(-0.5 * x * x) / _SQRT2PI


def _cap_phi(x: float) -> float:
    """Standard normal cdf."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


@dataclass
class CanonicalDelay:
    """First-order canonical random variable (see module docstring)."""

    mean: float
    sens: np.ndarray  # sensitivities to the shared sources
    rand: float  # sigma of the private independent part

    @property
    def variance(self) -> float:
        return float(self.sens @ self.sens + self.rand * self.rand)

    @property
    def sigma(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    def shifted(self, delta_mean: float) -> "CanonicalDelay":
        return CanonicalDelay(self.mean + delta_mean, self.sens, self.rand)

    def plus(self, other: "CanonicalDelay") -> "CanonicalDelay":
        """Exact sum (private parts are independent)."""
        return CanonicalDelay(
            self.mean + other.mean,
            self.sens + other.sens,
            math.hypot(self.rand, other.rand),
        )

    def quantile(self, q: float) -> float:
        """Gaussian quantile of this variable."""
        from scipy.stats import norm

        return float(self.mean + self.sigma * norm.ppf(q))


def clark_max(a: CanonicalDelay, b: CanonicalDelay) -> CanonicalDelay:
    """Clark's moment-matched MAX of two canonical variables."""
    var_a, var_b = a.variance, b.variance
    cov = float(a.sens @ b.sens)  # private parts are independent
    theta2 = max(var_a + var_b - 2.0 * cov, 1e-30)
    theta = math.sqrt(theta2)
    alpha = (a.mean - b.mean) / theta
    p = _cap_phi(alpha)
    d = _phi(alpha)

    mean = a.mean * p + b.mean * (1.0 - p) + theta * d
    second = (
        (var_a + a.mean**2) * p
        + (var_b + b.mean**2) * (1.0 - p)
        + (a.mean + b.mean) * theta * d
    )
    var = max(second - mean * mean, 0.0)

    sens = p * a.sens + (1.0 - p) * b.sens
    resid = var - float(sens @ sens)
    rand = math.sqrt(resid) if resid > 0 else 0.0
    return CanonicalDelay(mean, sens, rand)


class SSTA:
    """Block-based SSTA over a design context.

    Parameters
    ----------
    ctx:
        A :class:`~repro.core.model.DesignContext`.
    model:
        The :class:`~repro.variation.montecarlo.VariationModel` whose
        random/systematic decomposition defines the canonical sources.
    """

    def __init__(self, ctx, model: VariationModel):
        self.ctx = ctx
        self.model = model
        nl = ctx.netlist
        lib = ctx.library
        place = ctx.placement
        self._order = nl.topological_order(lib)
        part = GridPartition(
            place.die.width, place.die.height, model.correlation_grid_um
        )
        self.partition = part
        assign = part.assign_gates(place)
        self._grid_of = {g: assign[g] for g in self._order}
        self._n_sources = part.n_grids
        self._is_seq = {
            g: lib.cell(nl.gates[g].master).is_sequential for g in self._order
        }

    def _gate_delay_canonical(self, name: str, dose_map=None) -> CanonicalDelay:
        ctx = self.ctx
        a = ctx.delay_fit_for(name).a  # ns per nm of gate length
        t0 = ctx.baseline.gate_delay[name]
        if dose_map is not None:
            dl = ctx.library.dose_to_dl(
                dose_map.dose_of_gate(ctx.placement, name)
            )
            t0 = max(t0 + a * dl, 0.0)
        sens = np.zeros(self._n_sources)
        sens[self._grid_of[name]] = a * self.model.sigma_systematic_nm
        rand = abs(a) * self.model.sigma_random_nm
        return CanonicalDelay(t0, sens, rand)

    def analyze(self, dose_map=None) -> CanonicalDelay:
        """Propagate canonical arrivals; returns the chip MCT variable."""
        ctx = self.ctx
        nl = ctx.netlist
        lib = ctx.library
        wire = ctx.baseline.wire_delay
        zero = CanonicalDelay(0.0, np.zeros(self._n_sources), 0.0)

        arrival: dict = {}
        for name in self._order:
            gate = nl.gates[name]
            delay = self._gate_delay_canonical(name, dose_map)
            if self._is_seq[name]:
                arrival[name] = delay
                continue
            best = None
            for net_name in gate.inputs:
                drv = nl.nets[net_name].driver
                if drv is None:
                    pin = zero
                else:
                    pin = arrival[drv].shifted(wire.get((drv, name), 0.0))
                best = pin if best is None else clark_max(best, pin)
            base = best if best is not None else zero
            arrival[name] = base.plus(delay)

        mct = None
        for name in self._order:
            gate = nl.gates[name]
            if nl.nets[gate.output].is_primary_output:
                cand = arrival[name]
                mct = cand if mct is None else clark_max(mct, cand)
        for name in self._order:
            if not self._is_seq[name]:
                continue
            gate = nl.gates[name]
            setup = lib.cell(gate.master).setup_ns
            for net_name in gate.inputs:
                drv = nl.nets[net_name].driver
                if drv is None:
                    continue
                cand = arrival[drv].shifted(
                    wire.get((drv, name), 0.0) + setup
                )
                mct = cand if mct is None else clark_max(mct, cand)
        if mct is None:
            raise ValueError("design has no timing endpoints")
        return mct


def ssta_timing_yield(mct: CanonicalDelay, clock_period: float) -> float:
    """P(MCT <= T) under the Gaussian canonical model."""
    if mct.sigma == 0:
        return 1.0 if mct.mean <= clock_period else 0.0
    return _cap_phi((clock_period - mct.mean) / mct.sigma)
