"""Monte Carlo leakage distribution under CD variation.

Chip leakage under gate-length variation is the classic heavy-tailed
(lognormal-like) distribution: the exponential leakage-vs-L relation
turns symmetric CD noise into asymmetric leakage noise, so *mean* chip
leakage exceeds the leakage of the mean chip.  This estimator samples the
exact exponential device model (not the optimizer's quadratic), fully
vectorized across samples and gates, and quantifies how a dose map shifts
the distribution.
"""

from __future__ import annotations

import numpy as np

from repro.tech import device


class LeakageMonteCarlo:
    """Vectorized exact-model leakage sampler for one design.

    Parameters
    ----------
    ctx:
        A :class:`~repro.core.model.DesignContext`.  Per-gate device
        parameters (widths, stacks, state factors) are captured once; the
        per-sample evaluation is pure numpy.
    """

    def __init__(self, ctx):
        self.ctx = ctx
        nl = ctx.netlist
        lib = ctx.library
        self.node = lib.node
        order = nl.topological_order(lib)
        self._order = order
        masters = [lib.cell(nl.gates[g].master) for g in order]
        self._w_n = np.array([m.w_n for m in masters])
        self._w_p = np.array([m.w_p for m in masters])
        self._stack_n = np.array([float(m.stack_n) for m in masters])
        self._stack_p = np.array([float(m.stack_p) for m in masters])
        self._leak_states = np.array([m.leak_states for m in masters])

    def _gate_dose_shift_nm(self, dose_map) -> np.ndarray:
        if dose_map is None:
            return np.zeros(len(self._order))
        lib = self.ctx.library
        place = self.ctx.placement
        return np.array(
            [
                lib.dose_to_dl(dose_map.dose_of_gate(place, g))
                for g in self._order
            ]
        )

    def leakage_samples(self, dl_nm: np.ndarray, dose_map=None) -> np.ndarray:
        """Total chip leakage (uW) per sample.

        ``dl_nm`` has shape (n_samples, n_gates) in topological order
        (compatible with :meth:`TimingMonteCarlo.sample_dl`).
        """
        dl_nm = np.atleast_2d(np.asarray(dl_nm, dtype=float))
        if dl_nm.shape[1] != len(self._order):
            raise ValueError(
                f"dl matrix has {dl_nm.shape[1]} gate columns, design has "
                f"{len(self._order)}"
            )
        node = self.node
        lengths = node.l_nominal + dl_nm + self._gate_dose_shift_nm(dose_map)
        lengths = np.maximum(lengths, 1.0)
        i_n = device.leakage_current(node, lengths, self._w_n) / self._stack_n
        i_p = device.leakage_current(node, lengths, self._w_p) / self._stack_p
        per_gate = self._leak_states * 0.5 * (i_n + i_p) * node.vdd
        return per_gate.sum(axis=1)

    def nominal_leakage(self) -> float:
        """Zero-variation total (sanity anchor to the golden analysis)."""
        return float(self.leakage_samples(np.zeros((1, len(self._order))))[0])


def leakage_statistics(samples: np.ndarray) -> dict:
    """Summary statistics of a leakage sample set.

    Returns mean, std, p50/p95/p99 and the mean/median ratio (a
    tail-heaviness indicator; > 1 for the lognormal-like chip leakage).
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("no samples")
    p50, p95, p99 = np.percentile(samples, [50, 95, 99])
    return {
        "mean": float(samples.mean()),
        "std": float(samples.std()),
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "mean_over_median": float(samples.mean() / p50),
    }
