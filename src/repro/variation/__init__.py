"""Monte Carlo timing-yield estimation under CD variation."""

from repro.variation.leakage_mc import LeakageMonteCarlo, leakage_statistics
from repro.variation.ssta import (
    SSTA,
    CanonicalDelay,
    clark_max,
    ssta_timing_yield,
)
from repro.variation.montecarlo import (
    TimingMonteCarlo,
    VariationModel,
    timing_yield,
    yield_curve,
)

__all__ = [
    "VariationModel",
    "TimingMonteCarlo",
    "timing_yield",
    "yield_curve",
    "LeakageMonteCarlo",
    "leakage_statistics",
    "SSTA",
    "CanonicalDelay",
    "clark_max",
    "ssta_timing_yield",
]
