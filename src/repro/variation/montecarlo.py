"""Monte Carlo timing yield under CD variation.

The paper's title promises *timing yield enhancement*; its evaluation
reports MCT as the yield proxy.  This module closes the loop with an
explicit parametric-yield estimator: sample within-die gate-length
variation (random per-gate plus spatially-correlated systematic
components, the decomposition of the paper's Section I), propagate each
sample through a **linearized timing model** (per-gate delay
``t0 + A_p * dL``, the same first-order model DMopt optimizes), and
report ``yield(T) = P(MCT <= T)`` with and without an optimized dose map.

The linearized evaluation is vectorized across samples -- one topological
sweep evaluates every Monte Carlo sample simultaneously -- so thousands
of chips cost about as much as one golden STA pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dosemap import GridPartition


@dataclass(frozen=True)
class VariationModel:
    """Within-die gate-length variation model (nm).

    Attributes
    ----------
    sigma_random_nm:
        Per-gate independent CD sigma.
    sigma_systematic_nm:
        Sigma of the spatially-correlated component: one value per
        correlation grid, shared by all gates in that grid (ACLV-style
        residual signature).
    correlation_grid_um:
        Edge length of the correlation grid.
    """

    sigma_random_nm: float = 1.0
    sigma_systematic_nm: float = 1.0
    correlation_grid_um: float = 20.0
    seed: int = 42


class TimingMonteCarlo:
    """Vectorized linearized-timing Monte Carlo engine for one design.

    Parameters
    ----------
    ctx:
        A :class:`~repro.core.model.DesignContext`; its baseline STA
        supplies per-gate nominal delays, delay sensitivities (A_p), arc
        wire delays and the DAG.
    """

    def __init__(self, ctx):
        self.ctx = ctx
        nl = ctx.netlist
        lib = ctx.library
        baseline = ctx.baseline
        order = nl.topological_order(lib)
        self._order = order
        self._index = {name: i for i, name in enumerate(order)}
        self._t0 = np.array([baseline.gate_delay[g] for g in order])
        self._a = np.array([ctx.delay_fit_for(g).a for g in order])
        is_seq = {
            name: lib.cell(g.master).is_sequential
            for name, g in nl.gates.items()
        }
        # fanin arcs per gate: (driver index, wire delay); None driver = PI
        arcs = []
        endpoints = []  # (gate index, extra delay) contributing to MCT
        for name in order:
            gate = nl.gates[name]
            fanins = []
            if not is_seq[name]:
                for net_name in gate.inputs:
                    drv = nl.nets[net_name].driver
                    if drv is not None:
                        wd = baseline.wire_delay.get((drv, name), 0.0)
                        fanins.append((self._index[drv], wd))
            arcs.append(fanins)
            if nl.nets[gate.output].is_primary_output:
                endpoints.append((self._index[name], 0.0))
        for name in order:
            if not is_seq[name]:
                continue
            gate = nl.gates[name]
            setup = lib.cell(gate.master).setup_ns
            for net_name in gate.inputs:
                drv = nl.nets[net_name].driver
                if drv is not None:
                    wd = baseline.wire_delay.get((drv, name), 0.0)
                    endpoints.append((self._index[drv], wd + setup))
        self._arcs = arcs
        self._endpoints = endpoints

    # ------------------------------------------------------------------
    def sample_dl(self, model: VariationModel, n_samples: int) -> np.ndarray:
        """Sample per-gate gate-length deviations, shape (n, n_gates)."""
        if n_samples < 1:
            raise ValueError("need at least one sample")
        rng = np.random.default_rng(model.seed)
        n_gates = len(self._order)
        dl = model.sigma_random_nm * rng.standard_normal((n_samples, n_gates))
        if model.sigma_systematic_nm > 0:
            place = self.ctx.placement
            part = GridPartition(
                place.die.width, place.die.height, model.correlation_grid_um
            )
            assign = part.assign_gates(place)
            grid_of_gate = np.array(
                [assign[g] for g in self._order], dtype=int
            )
            sys = model.sigma_systematic_nm * rng.standard_normal(
                (n_samples, part.n_grids)
            )
            dl += sys[:, grid_of_gate]
        return dl

    def _gate_dose_shift_nm(self, dose_map) -> np.ndarray:
        """Per-gate printed dL (nm) induced by a dose map."""
        if dose_map is None:
            return np.zeros(len(self._order))
        lib = self.ctx.library
        place = self.ctx.placement
        return np.array(
            [
                lib.dose_to_dl(dose_map.dose_of_gate(place, g))
                for g in self._order
            ]
        )

    def mct_samples(self, dl_nm: np.ndarray, dose_map=None) -> np.ndarray:
        """MCT (ns) of each variation sample, optionally under a dose map.

        ``dl_nm`` has shape (n_samples, n_gates) in topological gate
        order (as produced by :meth:`sample_dl`).
        """
        dl_nm = np.atleast_2d(np.asarray(dl_nm, dtype=float))
        if dl_nm.shape[1] != len(self._order):
            raise ValueError(
                f"dl matrix has {dl_nm.shape[1]} gate columns, design has "
                f"{len(self._order)}"
            )
        total_dl = dl_nm + self._gate_dose_shift_nm(dose_map)[None, :]
        delays = np.maximum(self._t0[None, :] + self._a[None, :] * total_dl, 0.0)

        n = dl_nm.shape[0]
        arrival = np.zeros((n, len(self._order)))
        for gi in range(len(self._order)):
            fanins = self._arcs[gi]
            if fanins:
                best = arrival[:, fanins[0][0]] + fanins[0][1]
                for drv, wd in fanins[1:]:
                    np.maximum(best, arrival[:, drv] + wd, out=best)
                arrival[:, gi] = best + delays[:, gi]
            else:
                arrival[:, gi] = delays[:, gi]

        mct = np.zeros(n)
        for gi, extra in self._endpoints:
            np.maximum(mct, arrival[:, gi] + extra, out=mct)
        return mct

    def nominal_mct(self) -> float:
        """MCT of the linearized model at zero variation (sanity anchor)."""
        return float(self.mct_samples(np.zeros((1, len(self._order))))[0])


def timing_yield(mct_samples: np.ndarray, clock_period: float) -> float:
    """Fraction of sampled chips meeting the clock period."""
    mct_samples = np.asarray(mct_samples)
    if mct_samples.size == 0:
        raise ValueError("no samples")
    return float(np.mean(mct_samples <= clock_period))


def yield_curve(mct_samples: np.ndarray, periods) -> np.ndarray:
    """Yield at each candidate clock period."""
    return np.array([timing_yield(mct_samples, t) for t in periods])
