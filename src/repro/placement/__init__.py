"""Placement substrate: die/row model, placer, legalizer, HPWL."""

from repro.placement.hpwl import incident_hpwl, incident_nets, net_hpwl, total_hpwl
from repro.placement.legalize import (
    LegalizationError,
    has_overlaps,
    legalize,
    max_displacement,
)
from repro.placement.placement import Die, Placement
from repro.placement.placer import place_design, serpentine_placement

__all__ = [
    "Die",
    "Placement",
    "net_hpwl",
    "incident_nets",
    "incident_hpwl",
    "total_hpwl",
    "legalize",
    "max_displacement",
    "has_overlaps",
    "LegalizationError",
    "place_design",
    "serpentine_placement",
]
