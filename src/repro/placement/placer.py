"""Initial placement for synthetic designs.

The paper's testcases arrive placed-and-routed; our substitute placer must
deliver the property the dose-map optimization depends on: **spatial
locality of logically related cells** (a lane's S-box occupies a
contiguous region, so a dose-grid change affects a coherent set of
paths).  The generators emit gates module-by-module, so a serpentine
placement in emission order -- with a small seeded shuffle window to avoid
artificial perfect ordering -- produces exactly that locality.  The result
is then legalized onto rows/sites.
"""

from __future__ import annotations

import numpy as np

from repro.placement.legalize import legalize
from repro.placement.placement import Die, Placement


def serpentine_placement(
    netlist,
    library,
    die: Die,
    shuffle_window: int = 12,
    utilization: float = 0.75,
    seed: int = 7,
) -> Placement:
    """Place cells in emission order along serpentine rows, then legalize.

    Parameters
    ----------
    shuffle_window:
        Cells are locally shuffled within windows of this size before
        placing, to emulate placer noise without destroying locality.
    utilization:
        Fraction of each row filled before moving to the next, spreading
        whitespace uniformly.
    """
    if not 0.05 < utilization <= 1.0:
        raise ValueError("utilization must be in (0.05, 1]")
    rng = np.random.default_rng(seed)
    names = list(netlist.gates)
    # local shuffle: permute within consecutive windows
    if shuffle_window > 1:
        for start in range(0, len(names), shuffle_window):
            window = names[start : start + shuffle_window]
            rng.shuffle(window)
            names[start : start + shuffle_window] = window

    placement = Placement(die)
    row_capacity = die.width * utilization
    x, row, direction = 0.0, 0, 1
    for name in names:
        width = library.cell(netlist.gate(name).master).width_sites * die.site_width
        gap = width / utilization
        if x + gap > row_capacity / utilization:
            row += 1
            direction *= -1
            x = 0.0
            if row >= die.n_rows:
                row = 0  # wrap: legalization will resolve the overlap
        x_pos = x if direction > 0 else max(0.0, die.width - x - width)
        placement.place(name, min(x_pos, die.width), row * die.row_height)
        x += gap
    return legalize(placement, netlist, library)


def place_design(bundle, seed: int = 7) -> Placement:
    """Place a :class:`~repro.netlist.designs.DesignBundle` on its die."""
    node = bundle.library.node
    die = Die(
        width=bundle.die_width,
        height=bundle.die_height,
        row_height=node.row_height,
        site_width=node.site_width,
    )
    return serpentine_placement(bundle.netlist, bundle.library, die, seed=seed)
