"""Placement legalization.

A single-pass Abacus-style legalizer: cells are assigned to their nearest
row, then packed left-to-right in x-order with minimum displacement so no
two cells overlap and every cell sits on a site boundary.  dosePl invokes
this after each swap round ("a legalization process is invoked to legalize
the swapped cells", Section IV-A).
"""

from __future__ import annotations

import math

from repro.placement.placement import Placement


class LegalizationError(ValueError):
    """The cells of some row cannot fit within the die width."""


def legalize(placement: Placement, netlist, library) -> Placement:
    """Return a legalized copy of ``placement``.

    Cells keep their row (nearest to the input y) and their x-order within
    the row; overlaps are resolved by packing at site granularity with
    minimal rightward/leftward shifts.

    Raises
    ------
    LegalizationError
        If a row's total cell width exceeds the die width.
    """
    die = placement.die
    site_w = die.site_width

    # group cells by nearest row
    rows: dict = {r: [] for r in range(die.n_rows)}
    for name, (x, y) in placement.items():
        rows[die.row_of(y)].append((x, name))

    legal = Placement(die)
    for r, cells in rows.items():
        if not cells:
            continue
        cells.sort()
        widths = [
            library.cell(netlist.gate(name).master).width_sites * site_w
            for _x, name in cells
        ]
        if sum(widths) > die.width + 1e-9:
            raise LegalizationError(
                f"row {r}: cells need {sum(widths):.1f} um, die is "
                f"{die.width:.1f} um wide"
            )
        # left-to-right pack: place each cell at max(desired, previous end),
        # snapped to sites
        cursor = 0.0
        placed = []
        for (x, name), w in zip(cells, widths):
            x_snap = round(max(x, cursor) / site_w) * site_w
            if x_snap < cursor - 1e-9:
                x_snap = cursor
            placed.append((name, x_snap, w))
            cursor = x_snap + w
        # if the row overflowed the right edge, shift the tail back left
        # (site-aligned)
        overflow = cursor - die.width
        if overflow > 1e-9:
            shifted = []
            cursor = math.floor(die.width / site_w) * site_w
            for name, x, w in reversed(placed):
                x_new = min(x, math.floor((cursor - w) / site_w) * site_w)
                shifted.append((name, max(0.0, x_new), w))
                cursor = max(0.0, x_new)
            placed = list(reversed(shifted))
        y = r * die.row_height
        for name, x, _w in placed:
            legal.place(name, min(x, die.width), min(y, die.height))
    return legal


def max_displacement(before: Placement, after: Placement) -> float:
    """Largest Manhattan move (um) any cell made during legalization."""
    worst = 0.0
    for name, (x0, y0) in before.items():
        x1, y1 = after.location(name)
        worst = max(worst, abs(x1 - x0) + abs(y1 - y0))
    return worst


def has_overlaps(placement: Placement, netlist, library) -> bool:
    """Whether any two same-row cells overlap (for assertions in tests)."""
    rows: dict = {}
    for name, (x, y) in placement.items():
        rows.setdefault(placement.die.row_of(y), []).append((x, name))
    for cells in rows.values():
        cells.sort()
        end = -1.0
        for x, name in cells:
            if x < end - 1e-9:
                return True
            w = (
                library.cell(netlist.gate(name).master).width_sites
                * placement.die.site_width
            )
            end = x + w
    return False
