"""Row-based placement data model.

A :class:`Placement` maps each gate to an (x, y) location on a die made of
standard-cell rows.  It supports the spatial queries the dose-map flow and
the dosePl cell-swapping heuristic need: per-region cell lists, cell
bounding boxes over fanin/fanout neighborhoods (paper Fig. 9), Manhattan
distances, and position swaps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Die:
    """Die outline and row geometry (all um)."""

    width: float
    height: float
    row_height: float
    site_width: float

    def __post_init__(self):
        if self.width <= 0 or self.height <= 0:
            raise ValueError("die dimensions must be positive")
        if self.row_height <= 0 or self.site_width <= 0:
            raise ValueError("row/site geometry must be positive")

    @property
    def n_rows(self) -> int:
        return max(1, int(self.height / self.row_height))

    @property
    def n_sites(self) -> int:
        return max(1, int(self.width / self.site_width))

    def row_of(self, y: float) -> int:
        """Row index containing coordinate y (clamped)."""
        return min(self.n_rows - 1, max(0, int(y / self.row_height)))

    def site_of(self, x: float) -> int:
        """Site index containing coordinate x (clamped)."""
        return min(self.n_sites - 1, max(0, int(round(x / self.site_width))))


class Placement:
    """Cell locations on a die.

    Locations are the cells' left edges at their row baseline; the
    y-coordinate of a placed cell is always ``row * row_height``.
    """

    def __init__(self, die: Die):
        self.die = die
        self._pos: dict = {}  # gate name -> (x, y)

    # ------------------------------------------------------------------
    # basic access
    # ------------------------------------------------------------------
    def place(self, gate_name: str, x: float, y: float) -> None:
        if not (0 <= x <= self.die.width and 0 <= y <= self.die.height):
            raise ValueError(
                f"({x:.2f}, {y:.2f}) outside die "
                f"{self.die.width:.2f}x{self.die.height:.2f}"
            )
        self._pos[gate_name] = (float(x), float(y))

    def location(self, gate_name: str) -> tuple:
        try:
            return self._pos[gate_name]
        except KeyError:
            raise KeyError(f"gate {gate_name!r} is not placed") from None

    def is_placed(self, gate_name: str) -> bool:
        return gate_name in self._pos

    def __len__(self):
        return len(self._pos)

    def __contains__(self, gate_name: str) -> bool:
        return gate_name in self._pos

    def items(self):
        return self._pos.items()

    def copy(self) -> "Placement":
        dup = Placement(self.die)
        dup._pos = dict(self._pos)
        return dup

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def swap(self, g1: str, g2: str) -> None:
        """Exchange the locations of two placed cells."""
        p1, p2 = self.location(g1), self.location(g2)
        self._pos[g1], self._pos[g2] = p2, p1

    def distance(self, g1: str, g2: str) -> float:
        """Manhattan distance between two cells (um)."""
        (x1, y1), (x2, y2) = self.location(g1), self.location(g2)
        return abs(x1 - x2) + abs(y1 - y2)

    def neighborhood_bbox(self, gate_name: str, netlist) -> tuple:
        """Bounding box over the cell, its fanins and its fanouts.

        This is the paper's cell bounding box (Fig. 9): swapping a cell
        within it has low likelihood of increasing wirelength.
        Returns (x_min, y_min, x_max, y_max).
        """
        names = [gate_name]
        names += netlist.fanin_gates(gate_name)
        names += netlist.fanout_gates(gate_name)
        xs, ys = [], []
        for n in names:
            if n in self._pos:
                x, y = self._pos[n]
                xs.append(x)
                ys.append(y)
        return (min(xs), min(ys), max(xs), max(ys))

    def in_box(self, gate_name: str, box: tuple, margin: float = 0.0) -> bool:
        """Whether a cell lies inside a (x0, y0, x1, y1) box (with margin)."""
        x, y = self.location(gate_name)
        x0, y0, x1, y1 = box
        return (x0 - margin <= x <= x1 + margin) and (y0 - margin <= y <= y1 + margin)

    def cells_in_region(self, x0: float, y0: float, x1: float, y1: float):
        """All placed cells with location inside the closed rectangle."""
        return [
            name
            for name, (x, y) in self._pos.items()
            if x0 <= x <= x1 and y0 <= y <= y1
        ]

    def gate_pitch(self) -> float:
        """Average cell pitch: chip dimension / sqrt(gate count).

        The paper uses this as the distance-threshold unit for dosePl
        ("chip dimension divided by the square root of gate count").
        """
        if not self._pos:
            raise ValueError("empty placement has no gate pitch")
        dim = math.sqrt(self.die.width * self.die.height)
        return dim / math.sqrt(len(self._pos))

    def __repr__(self):
        return (
            f"Placement({len(self._pos)} cells on "
            f"{self.die.width:.0f}x{self.die.height:.0f} um)"
        )
