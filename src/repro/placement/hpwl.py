"""Half-perimeter wirelength (HPWL) estimation.

HPWL is the standard placement wirelength proxy and the filter metric
dosePl uses before attempting a swap (paper Appendix A: "HPWL-based wire
length comparison ... only if the estimated wirelength increase for all
incident nets is below a predefined threshold").
"""

from __future__ import annotations


def net_hpwl(netlist, placement, net_name: str) -> float:
    """HPWL (um) of one net over its placed driver and sink cells.

    Primary I/O endpoints have no location and are ignored; a net with
    fewer than two placed endpoints has zero HPWL.
    """
    net = netlist.net(net_name)
    names = []
    if net.driver is not None:
        names.append(net.driver)
    names.extend(sink for sink, _pin in net.sinks)
    xs, ys = [], []
    for n in names:
        if placement.is_placed(n):
            x, y = placement.location(n)
            xs.append(x)
            ys.append(y)
    if len(xs) < 2:
        return 0.0
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def incident_nets(netlist, gate_name: str):
    """All nets touching a gate: its inputs plus its output."""
    gate = netlist.gate(gate_name)
    return list(dict.fromkeys(list(gate.inputs) + [gate.output]))


def incident_hpwl(netlist, placement, gate_name: str) -> float:
    """Total HPWL (um) of the nets incident to one cell.

    For the NAND cell of paper Fig. 9 this is the four incident nets'
    combined wirelength.
    """
    return sum(
        net_hpwl(netlist, placement, n) for n in incident_nets(netlist, gate_name)
    )


def total_hpwl(netlist, placement) -> float:
    """Total HPWL (um) over all nets of the design."""
    return sum(net_hpwl(netlist, placement, n) for n in netlist.nets)
