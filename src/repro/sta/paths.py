"""Top-K critical path enumeration.

dosePl operates on "the top-K (e.g., K = 10,000) critical paths" from
golden timing analysis (Section IV-A).  This module enumerates paths of
the timing DAG in strictly non-increasing total-delay order using a
best-first search with exact upper bounds (prefix delay + longest
downstream suffix), so the first K emitted paths are exactly the K most
critical ones.

The DAG mirrors the STA abstraction: node weight = gate delay, arc weight
= interconnect delay, flip-flops act as sources (clk->q) and their D-pins
as endpoints (+setup), primary outputs are endpoints.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.sta.timing import TimingResult

_SOURCE = "__SRC__"
_SINK = "__SNK__"


@dataclass(frozen=True)
class TimingPath:
    """One register-to-register / I/O timing path.

    Attributes
    ----------
    gates:
        Gate names along the path in signal order (launch cell first).
    delay:
        Total path delay (ns), including clk->q at the launch flop and
        setup at the capture flop where applicable.
    endpoint:
        Endpoint label: ``"PO:<net>"`` or ``"FF:<flop>:<net>"``.
    """

    gates: tuple
    delay: float
    endpoint: str

    def slack(self, period: float) -> float:
        return period - self.delay

    def __len__(self):
        return len(self.gates)


def _build_dag(netlist, library, result: TimingResult):
    """Adjacency: node -> list of (succ node, arc weight, endpoint label)."""
    is_seq = {
        name: library.cell(g.master).is_sequential
        for name, g in netlist.gates.items()
    }
    adj: dict = {_SOURCE: []}
    for name, gate in netlist.gates.items():
        arcs = []
        out_net = netlist.nets[gate.output]
        if out_net.is_primary_output:
            arcs.append((_SINK, 0.0, f"PO:{gate.output}"))
        for succ, _pin in out_net.sinks:
            wd = result.wire_delay.get((name, succ), 0.0)
            if is_seq[succ]:
                setup = library.cell(netlist.gate(succ).master).setup_ns
                arcs.append((_SINK, wd + setup, f"FF:{succ}:{gate.output}"))
            else:
                arcs.append((succ, wd + result.gate_delay[succ], None))
        adj[name] = arcs
        if is_seq[name]:
            adj[_SOURCE].append((name, result.gate_delay[name], None))
        elif any(netlist.nets[n].driver is None for n in gate.inputs):
            adj[_SOURCE].append((name, result.gate_delay[name], None))
    adj[_SINK] = []
    return adj


def _longest_to_sink(adj) -> dict:
    """Longest-path distance from every node to the sink (DAG DP)."""
    memo: dict = {_SINK: 0.0}
    # iterative DFS to avoid recursion limits on deep designs
    stack = [(_SOURCE, False)]
    while stack:
        node, expanded = stack.pop()
        if node in memo:
            continue
        if expanded:
            best = float("-inf")
            for succ, w, _lbl in adj[node]:
                if succ in memo:
                    best = max(best, w + memo[succ])
            memo[node] = best if adj[node] else float("-inf")
        else:
            stack.append((node, True))
            for succ, _w, _lbl in adj[node]:
                if succ not in memo:
                    stack.append((succ, False))
    return memo


def top_k_paths(netlist, library, result: TimingResult, k: int) -> list:
    """The K most critical paths, in non-increasing delay order.

    ``result`` must come from a :class:`TimingAnalyzer` pass on the same
    netlist/library (its gate and wire delays define the DAG weights).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    adj = _build_dag(netlist, library, result)
    down = _longest_to_sink(adj)
    if down.get(_SOURCE, float("-inf")) == float("-inf"):
        return []  # no endpoint reachable

    paths = []
    counter = 0  # tie-breaker so heapq never compares tuples of gates
    heap = [(-down[_SOURCE], counter, _SOURCE, 0.0, (), None)]
    while heap and len(paths) < k:
        neg_bound, _cnt, node, dist, prefix, label = heapq.heappop(heap)
        if node == _SINK:
            paths.append(TimingPath(gates=prefix, delay=dist, endpoint=label))
            continue
        for succ, w, lbl in adj[node]:
            if down.get(succ, float("-inf")) == float("-inf"):
                continue
            nd = dist + w
            counter += 1
            new_prefix = prefix if succ == _SINK else prefix + (succ,)
            heapq.heappush(
                heap,
                (-(nd + down[succ]), counter, succ, nd, new_prefix, lbl or label),
            )
    return paths


def criticality_histogram(paths, mct: float, thresholds=(0.95, 0.90, 0.80)) -> dict:
    """Fraction of paths with delay above each threshold x MCT.

    Reproduces the paper's Table VII metric ("percentage of critical
    timing paths ... within a specific range of timing").
    """
    if not paths:
        return {t: 0.0 for t in thresholds}
    n = len(paths)
    return {
        t: sum(1 for p in paths if p.delay >= t * mct) / n * 100.0
        for t in thresholds
    }
