"""Signoff-style text reports.

Human-readable reports in the flavor of PrimeTime's ``report_timing`` and
SOC Encounter's power report -- the artifacts the paper's flow consumes
("wire delay is obtained from golden static timing analysis reports",
Section III).  Useful for debugging dose maps and for downstream users
who want familiar-looking output.
"""

from __future__ import annotations

from repro.sta.paths import top_k_paths


def report_timing(
    netlist,
    library,
    result,
    n_paths: int = 3,
    clock_period: float = None,
) -> str:
    """Top-N critical path report (per-gate incr/arrival columns)."""
    period = result.mct if clock_period is None else float(clock_period)
    paths = top_k_paths(netlist, library, result, n_paths)
    lines = [
        "Timing report",
        f"  clock period : {period:.4f} ns",
        f"  design MCT   : {result.mct:.4f} ns",
        f"  worst slack  : {period - result.mct:+.4f} ns",
        "",
    ]
    for idx, path in enumerate(paths, 1):
        lines.append(f"Path {idx}: delay {path.delay:.4f} ns, "
                     f"slack {path.slack(period):+.4f} ns, "
                     f"endpoint {path.endpoint}")
        lines.append(f"  {'instance':<22}{'cell':<10}{'incr':>9}{'arrival':>10}")
        arrival = 0.0
        prev = None
        for gate_name in path.gates:
            incr = result.gate_delay[gate_name]
            if prev is not None:
                incr += result.wire_delay.get((prev, gate_name), 0.0)
            arrival += incr
            master = netlist.gate(gate_name).master
            lines.append(
                f"  {gate_name:<22}{master:<10}{incr:>9.4f}{arrival:>10.4f}"
            )
            prev = gate_name
        if path.endpoint.startswith("FF:"):
            flop = path.endpoint.split(":")[1]
            setup = library.cell(netlist.gate(flop).master).setup_ns
            wire = result.wire_delay.get((prev, flop), 0.0)
            arrival += wire + setup
            lines.append(
                f"  {flop + ' (setup)':<22}{'':<10}{wire + setup:>9.4f}"
                f"{arrival:>10.4f}"
            )
        lines.append("")
    return "\n".join(lines)


def report_power(netlist, library, doses=None, top_n: int = 10) -> str:
    """Leakage power report grouped by master, worst offenders first."""
    from repro.power import leakage_by_master, total_leakage

    by_master = leakage_by_master(netlist, library, doses)
    total = total_leakage(netlist, library, doses)
    hist = netlist.master_histogram()
    ranked = sorted(by_master.items(), key=lambda kv: -kv[1])
    lines = [
        "Leakage power report",
        f"  total leakage : {total:.3f} uW over {netlist.n_gates} cells",
        "",
        f"  {'master':<10}{'count':>7}{'leakage uW':>12}{'share %':>9}",
    ]
    for master, leak in ranked[:top_n]:
        lines.append(
            f"  {master:<10}{hist[master]:>7}{leak:>12.3f}"
            f"{leak / total * 100:>9.2f}"
        )
    if len(ranked) > top_n:
        rest = sum(v for _k, v in ranked[top_n:])
        lines.append(
            f"  {'(others)':<10}{'':>7}{rest:>12.3f}{rest / total * 100:>9.2f}"
        )
    return "\n".join(lines)


def report_dose_map(dose_map, dose_range: float = 5.0) -> str:
    """ASCII heat map of a dose map (rows top-to-bottom = +y down)."""
    ramp = " .:-=+*#%@"
    values = dose_map.values
    lines = [
        f"Dose map ({dose_map.layer}), {values.shape[0]}x{values.shape[1]} "
        f"grids, range [{values.min():+.2f}, {values.max():+.2f}] %",
    ]
    span = 2.0 * dose_range
    for row in values[::-1]:  # print +y at the top
        chars = []
        for v in row:
            frac = min(max((v + dose_range) / span, 0.0), 1.0)
            chars.append(ramp[int(frac * (len(ramp) - 1))])
        lines.append("  |" + "".join(chars) + "|")
    lines.append(f"  legend: ' '={-dose_range:+.0f}% ... '@'={dose_range:+.0f}%")
    return "\n".join(lines)
