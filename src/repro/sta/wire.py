"""Wire parasitics and delay from placement geometry.

The paper's flow extracts golden wire parasitics once (dose-map changes on
poly/active do not move wires) and adds wire delay "in between gates"
(Section III).  We estimate per-net capacitance from HPWL and per-arc
delay from the driver-to-sink Manhattan distance with a first-order Elmore
model of a distributed RC line loaded by the sink pin.
"""

from __future__ import annotations

from repro.constants import KOHM_FF_TO_NS
from repro.placement.hpwl import net_hpwl


def net_wire_cap(netlist, placement, net_name: str, node,
                 length_um: float = None) -> float:
    """Total routed capacitance (fF) of one net.

    Uses ``length_um`` when given (e.g. from the global router);
    otherwise falls back to the HPWL estimate.
    """
    if length_um is None:
        length_um = net_hpwl(netlist, placement, net_name)
    return node.wire_c_per_um * length_um


def arc_wire_delay(
    netlist, placement, driver_gate: str, sink_gate: str, sink_cap_ff: float, node
) -> float:
    """Elmore delay (ns) from a driver output to one sink pin.

    Distributed line of length d: ``R_wire * (C_wire/2 + C_sink)`` with
    R_wire and C_wire proportional to the Manhattan driver-sink distance.
    Unplaced endpoints (primary I/O) contribute zero wire delay.
    """
    if not (placement.is_placed(driver_gate) and placement.is_placed(sink_gate)):
        return 0.0
    dist = placement.distance(driver_gate, sink_gate)
    r_w = node.wire_r_per_um * dist
    c_w = node.wire_c_per_um * dist
    return r_w * (0.5 * c_w + sink_cap_ff) * KOHM_FF_TO_NS
