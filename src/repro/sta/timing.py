"""Block-based static timing analysis.

The golden timer of the flow (PrimeTime's role in the paper): forward
arrival/slew propagation over the combinational graph -- with sequential
cells acting as path sources (clk->q) and path endpoints (D-pin arrival +
setup) per the paper's unrolling -- followed by a backward required-time
pass for slacks.

Besides MCT and slacks, the analyzer reports each instance's **input slew
and output load**, which is exactly what the dose-map optimizer's
coefficient fitting consumes ("timing analysis can be performed to
generate the input slews and output load capacitances of all the cell
instances", Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sta.wire import arc_wire_delay, net_wire_cap

#: Default primary-input transition time (ns).
DEFAULT_INPUT_SLEW = 0.05
#: Fixed load (fF) seen by nets that drive a primary output.
DEFAULT_PO_LOAD = 2.0


def beats_worst_pin(arr, slew, best_arr, best_slew) -> bool:
    """Deterministic worst-pin order: lexicographic max on (arrival, slew).

    The critical input of a gate is the latest-arriving pin; among pins
    with *exactly* equal arrival the larger slew wins.  Every STA backend
    must implement this precise ordering (the vectorized engine mirrors
    it in :func:`repro.sta.compiled.lex_max_reduce`), otherwise
    equal-arrival pins would make gate delays backend-dependent.
    """
    return arr > best_arr or (arr == best_arr and slew > best_slew)


@dataclass
class TimingResult:
    """Result of one STA pass.

    All per-gate dictionaries are keyed by gate name.  ``arrival`` and
    ``slack`` refer to the gate's *output* node; ``gate_delay`` is the
    delay through the gate along its critical input; ``input_slew`` and
    ``load`` are the fitting inputs; ``wire_delay`` maps (driver, sink)
    gate pairs to the interconnect arc delay between them.
    """

    mct: float
    arrival: dict
    slack: dict
    gate_delay: dict
    input_slew: dict
    load: dict
    wire_delay: dict
    endpoint_arrival: dict = field(default_factory=dict)

    @property
    def worst_slack(self) -> float:
        return min(self.slack.values())

    def critical_gates(self, threshold: float = 0.0):
        """Gates with slack <= threshold."""
        return [g for g, s in self.slack.items() if s <= threshold]


class TimingAnalyzer:
    """STA engine bound to one (netlist, library, placement).

    Parameters
    ----------
    netlist, library, placement:
        The design under analysis.
    input_slew:
        Transition time assumed at primary inputs and clock pins (ns).
    po_load:
        Capacitive load on primary outputs (fF).

    The expensive topological preprocessing is done once; ``analyze`` can
    then be called repeatedly with different dose assignments (the golden
    signoff after each DMopt / dosePl step).
    """

    def __init__(
        self,
        netlist,
        library,
        placement,
        input_slew: float = DEFAULT_INPUT_SLEW,
        po_load: float = DEFAULT_PO_LOAD,
        net_lengths: dict = None,
    ):
        self.netlist = netlist
        self.library = library
        self.placement = placement
        self.input_slew = float(input_slew)
        self.po_load = float(po_load)
        #: Optional per-net routed lengths (um) from a global router;
        #: nets absent from the dict fall back to HPWL estimates.
        self.net_lengths = net_lengths
        self.node = library.node
        self._order = netlist.topological_order(library)
        self._is_seq = {
            name: library.cell(g.master).is_sequential
            for name, g in netlist.gates.items()
        }
        self._nominal_loads = None

    def invalidate_caches(self) -> None:
        """Drop cached nominal net loads (call after moving cells)."""
        self._nominal_loads = None

    # ------------------------------------------------------------------
    def _variant(self, gate_name: str, doses):
        """Characterized cell for a gate under the dose assignment."""
        master = self.netlist.gate(gate_name).master
        if doses is None:
            return self.library.nominal(master)
        dp, da = doses.get(gate_name, (0.0, 0.0))
        return self.library.characterized(master, dp, da)

    def _net_loads(self, doses):
        """Capacitive load (fF) per net: wire + sink pins (+ PO load).

        The nominal (``doses is None``) loads depend only on geometry and
        the zero-dose library, so they are computed once per analyzer and
        reused across calls (``invalidate_caches`` resets them).
        """
        if doses is None and self._nominal_loads is not None:
            return self._nominal_loads
        loads = {}
        for net_name, net in self.netlist.nets.items():
            length = (
                self.net_lengths.get(net_name)
                if self.net_lengths is not None
                else None
            )
            cap = net_wire_cap(
                self.netlist, self.placement, net_name, self.node,
                length_um=length,
            )
            for sink, _pin in net.sinks:
                cap += self._variant(sink, doses).input_cap_ff
            if net.is_primary_output:
                cap += self.po_load
            loads[net_name] = cap
        if doses is None:
            self._nominal_loads = loads
        return loads

    # ------------------------------------------------------------------
    def analyze(self, doses=None, clock_period: float = None) -> TimingResult:
        """Run one STA pass.

        Parameters
        ----------
        doses:
            Optional mapping ``gate name -> (poly dose %, active dose %)``;
            missing gates are at nominal dose.
        clock_period:
            Required time budget for slack computation; defaults to the
            computed MCT (so the worst slack is exactly 0).
        """
        nl, place, node = self.netlist, self.placement, self.node
        loads = self._net_loads(doses)

        # One characterized-cell fetch per gate per call: the endpoint
        # and backward passes revisit sequential cells already resolved
        # in the forward pass.
        variants: dict = {}

        def variant(name):
            cc = variants.get(name)
            if cc is None:
                cc = variants[name] = self._variant(name, doses)
            return cc

        arrival: dict = {}
        out_slew: dict = {}
        gate_delay: dict = {}
        input_slew_used: dict = {}
        load_used: dict = {}
        wire_delay: dict = {}
        endpoint_arrival: dict = {}

        for name in self._order:
            gate = nl.gates[name]
            cc = variant(name)
            load = loads[gate.output]
            load_used[name] = load
            if self._is_seq[name]:
                # clk->q launch: arrival measured from the clock edge
                delay = cc.delay_at(self.input_slew, load)
                arrival[name] = delay
                gate_delay[name] = delay
                input_slew_used[name] = self.input_slew
                out_slew[name] = cc.slew_at(self.input_slew, load)
                continue
            # Single delay per gate, evaluated at the latest-arriving
            # pin's slew -- the same abstraction as the paper's constraint
            # set (5): a_r + t_q <= a_q with one t_q per gate.
            best_arr, best_slew = 0.0, self.input_slew
            for net_name in gate.inputs:
                net = nl.nets[net_name]
                if net.driver is None:
                    arr, slew = 0.0, self.input_slew
                else:
                    drv = net.driver
                    wd = arc_wire_delay(nl, place, drv, name, cc.input_cap_ff, node)
                    wire_delay[(drv, name)] = wd
                    arr, slew = arrival[drv] + wd, out_slew[drv]
                if beats_worst_pin(arr, slew, best_arr, best_slew):
                    best_arr, best_slew = arr, slew
            delay = cc.delay_at(best_slew, load)
            gate_delay[name] = delay
            arrival[name] = best_arr + delay
            input_slew_used[name] = best_slew
            out_slew[name] = cc.slew_at(best_slew, load)

        # ---- endpoints: PO drivers and FF D-pins ----
        mct = 0.0
        for name in self._order:
            gate = nl.gates[name]
            if nl.nets[gate.output].is_primary_output:
                endpoint_arrival[f"PO:{gate.output}"] = arrival[name]
                mct = max(mct, arrival[name])
        for name in self._order:
            if not self._is_seq[name]:
                continue
            gate = nl.gates[name]
            cc = variant(name)
            for net_name in gate.inputs:
                net = nl.nets[net_name]
                if net.driver is None:
                    continue
                drv = net.driver
                wd = arc_wire_delay(nl, place, drv, name, cc.input_cap_ff, node)
                wire_delay[(drv, name)] = wd
                t = arrival[drv] + wd + cc.setup_ns
                endpoint_arrival[f"FF:{name}:{net_name}"] = t
                mct = max(mct, t)

        # ---- backward pass: required times and slacks ----
        period = mct if clock_period is None else float(clock_period)
        inf = float("inf")
        required = {name: inf for name in self._order}
        for name in self._order:
            gate = nl.gates[name]
            if nl.nets[gate.output].is_primary_output:
                required[name] = min(required[name], period)
        for name in reversed(self._order):
            gate = nl.gates[name]
            for succ in nl.fanout_gates(name):
                wd = wire_delay.get((name, succ), 0.0)
                if self._is_seq[succ]:
                    setup = variant(succ).setup_ns
                    required[name] = min(required[name], period - setup - wd)
                else:
                    required[name] = min(
                        required[name], required[succ] - gate_delay[succ] - wd
                    )
        slack = {}
        for name in self._order:
            req = required[name]
            slack[name] = (req - arrival[name]) if req < inf else period

        return TimingResult(
            mct=mct,
            arrival=arrival,
            slack=slack,
            gate_delay=gate_delay,
            input_slew=input_slew_used,
            load=load_used,
            wire_delay=wire_delay,
            endpoint_arrival=endpoint_arrival,
        )
