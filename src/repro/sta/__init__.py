"""Static timing analysis substrate."""

from repro.sta.erc import ErcResult, check_electrical_rules, default_limits
from repro.sta.hold import DEFAULT_HOLD_NS, HoldResult, analyze_hold
from repro.sta.paths import TimingPath, criticality_histogram, top_k_paths
from repro.sta.report import report_dose_map, report_power, report_timing
from repro.sta.timing import (
    DEFAULT_INPUT_SLEW,
    DEFAULT_PO_LOAD,
    TimingAnalyzer,
    TimingResult,
)
from repro.sta.wire import arc_wire_delay, net_wire_cap

__all__ = [
    "TimingAnalyzer",
    "TimingResult",
    "DEFAULT_INPUT_SLEW",
    "DEFAULT_PO_LOAD",
    "TimingPath",
    "top_k_paths",
    "criticality_histogram",
    "net_wire_cap",
    "arc_wire_delay",
    "analyze_hold",
    "HoldResult",
    "DEFAULT_HOLD_NS",
    "report_timing",
    "report_power",
    "report_dose_map",
    "check_electrical_rules",
    "ErcResult",
    "default_limits",
]
