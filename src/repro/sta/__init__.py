"""Static timing analysis substrate.

Two interchangeable engines produce identical :class:`TimingResult`
objects:

``vector`` (default)
    :class:`~repro.sta.compiled.VectorTimingAnalyzer` -- compiled
    timing graph, level-parallel NumPy propagation, incremental
    re-timing.  The production hot path.
``reference``
    :class:`~repro.sta.timing.TimingAnalyzer` -- the per-gate dict
    engine, kept as the readable golden model for differential testing.

Pick one with :func:`make_analyzer` or the ``REPRO_STA_BACKEND``
environment variable.
"""

import os

from repro.sta.compiled import CompiledTimingGraph, VectorTimingAnalyzer
from repro.sta.erc import ErcResult, check_electrical_rules, default_limits
from repro.sta.hold import DEFAULT_HOLD_NS, HoldResult, analyze_hold
from repro.sta.paths import TimingPath, criticality_histogram, top_k_paths
from repro.sta.report import report_dose_map, report_power, report_timing
from repro.sta.timing import (
    DEFAULT_INPUT_SLEW,
    DEFAULT_PO_LOAD,
    TimingAnalyzer,
    TimingResult,
)
from repro.sta.wire import arc_wire_delay, net_wire_cap

#: Engine used when callers don't specify one ("vector" | "reference").
DEFAULT_STA_BACKEND = os.environ.get("REPRO_STA_BACKEND", "vector")

_BACKENDS = {
    "vector": VectorTimingAnalyzer,
    "reference": TimingAnalyzer,
}


def make_analyzer(netlist, library, placement, backend: str = None, **kwargs):
    """Construct an STA engine for the requested backend.

    ``backend`` defaults to :data:`DEFAULT_STA_BACKEND`.  Both engines
    share the ``analyze(doses, clock_period) -> TimingResult`` contract;
    only the ``vector`` engine additionally offers ``rebind``,
    ``update_placement`` and ``trial_mct``.
    """
    name = DEFAULT_STA_BACKEND if backend is None else backend
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown STA backend {name!r}; expected one of {sorted(_BACKENDS)}"
        ) from None
    return cls(netlist, library, placement, **kwargs)


__all__ = [
    "TimingAnalyzer",
    "VectorTimingAnalyzer",
    "CompiledTimingGraph",
    "TimingResult",
    "make_analyzer",
    "DEFAULT_STA_BACKEND",
    "DEFAULT_INPUT_SLEW",
    "DEFAULT_PO_LOAD",
    "TimingPath",
    "top_k_paths",
    "criticality_histogram",
    "net_wire_cap",
    "arc_wire_delay",
    "analyze_hold",
    "HoldResult",
    "DEFAULT_HOLD_NS",
    "report_timing",
    "report_power",
    "report_dose_map",
    "check_electrical_rules",
    "ErcResult",
    "default_limits",
]
