"""Min-delay (hold) analysis.

The paper's introduction distinguishes setup-critical devices (want more
dose, shorter gates) from hold-critical devices ("for devices that are on
hold timing-critical paths ... a smaller than nominal dose on poly layer
... will be desirable").  Its formulations optimize setup timing only;
this module supplies the complementary check: shortest-path arrival
analysis and per-endpoint hold slack, so a dose map can be *validated*
against hold safety after optimization (more dose on a short path could
otherwise race the clock).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sta.wire import arc_wire_delay

#: Default flip-flop hold requirement (ns): data must stay stable this
#: long after the clock edge.
DEFAULT_HOLD_NS = 0.012


@dataclass
class HoldResult:
    """Min-delay analysis result.

    ``min_arrival`` maps gate names to the *earliest* output transition
    (ns after the launching clock edge); ``hold_slack`` maps capture
    endpoints (``"FF:<flop>:<net>"``) to min-arrival minus the hold
    requirement.  Negative slack = hold violation.
    """

    min_arrival: dict
    hold_slack: dict

    @property
    def worst_hold_slack(self) -> float:
        if not self.hold_slack:
            return float("inf")
        return min(self.hold_slack.values())

    @property
    def violations(self) -> list:
        return [ep for ep, s in self.hold_slack.items() if s < 0]


def analyze_hold(analyzer, doses=None, hold_ns: float = DEFAULT_HOLD_NS) -> HoldResult:
    """Shortest-path (early-mode) timing over a TimingAnalyzer's design.

    Mirrors :meth:`repro.sta.timing.TimingAnalyzer.analyze` but
    propagates the *minimum* arrival: for each gate the earliest input
    transition plus the gate delay at that input's slew.  Sequential
    cells launch at clk->q as in max-mode.
    """
    nl = analyzer.netlist
    place = analyzer.placement
    node = analyzer.node
    loads = analyzer._net_loads(doses)

    min_arrival: dict = {}
    out_slew: dict = {}
    hold_slack: dict = {}

    for name in analyzer._order:
        gate = nl.gates[name]
        cc = analyzer._variant(name, doses)
        load = loads[gate.output]
        if analyzer._is_seq[name]:
            delay = cc.delay_at(analyzer.input_slew, load)
            min_arrival[name] = delay
            out_slew[name] = cc.slew_at(analyzer.input_slew, load)
            continue
        # early mode minimizes the full per-pin (arrival + delay at that
        # pin's slew), which guarantees min-arrival <= max-arrival: the
        # max-mode value is one particular pin's sum, and this is the
        # minimum over all pins' sums
        best_total, best_slew = None, analyzer.input_slew
        for net_name in gate.inputs:
            net = nl.nets[net_name]
            if net.driver is None:
                arr, slew = 0.0, analyzer.input_slew
            else:
                drv = net.driver
                wd = arc_wire_delay(nl, place, drv, name, cc.input_cap_ff, node)
                arr, slew = min_arrival[drv] + wd, out_slew[drv]
            total = arr + cc.delay_at(slew, load)
            if best_total is None or total < best_total:
                best_total, best_slew = total, slew
        min_arrival[name] = (
            best_total
            if best_total is not None
            else cc.delay_at(analyzer.input_slew, load)
        )
        out_slew[name] = cc.slew_at(best_slew, load)

    # hold endpoints: FF data pins driven by gates
    for name in analyzer._order:
        if not analyzer._is_seq[name]:
            continue
        gate = nl.gates[name]
        cc = analyzer._variant(name, doses)
        for net_name in gate.inputs:
            net = nl.nets[net_name]
            if net.driver is None:
                continue
            drv = net.driver
            wd = arc_wire_delay(nl, place, drv, name, cc.input_cap_ff, node)
            arrival = min_arrival[drv] + wd
            hold_slack[f"FF:{name}:{net_name}"] = arrival - hold_ns

    return HoldResult(min_arrival=min_arrival, hold_slack=hold_slack)
