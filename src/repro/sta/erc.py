"""Electrical rule checks (ERC): max-transition and max-capacitance.

Signoff flows gate timing results on electrical sanity: a cell driving
far beyond its characterized load window produces garbage delays, and
slow transitions burn short-circuit power and amplify noise.  Dose maps
interact with this: *reducing* dose lengthens gates and slows their
output transitions, so a leakage-recovery map can push marginal nets over
the transition limit -- worth checking after DMopt, exactly like timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ErcResult:
    """Violations found by :func:`check_electrical_rules`.

    Each violation is (gate name, value, limit).
    """

    max_slew_ns: float
    max_cap_ff: float
    slew_violations: list = field(default_factory=list)
    cap_violations: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.slew_violations and not self.cap_violations

    def summary(self) -> str:
        return (
            f"ERC: {len(self.slew_violations)} max-transition and "
            f"{len(self.cap_violations)} max-capacitance violations "
            f"(limits {self.max_slew_ns} ns / {self.max_cap_ff} fF)"
        )


def default_limits(library) -> tuple:
    """Characterization-window limits: the table axes' outer corners.

    A cell operating beyond its characterized slew/load window is
    extrapolating -- the classic signoff max_transition / max_cap source.
    """
    inv = library.nominal("INVX1")
    return float(inv.delay.slew_axis[-1]), None  # cap limit is per-cell


def check_electrical_rules(
    analyzer,
    doses=None,
    max_slew_ns: float = None,
    max_cap_ff: float = None,
) -> ErcResult:
    """Check every cell's output transition and load against limits.

    Parameters
    ----------
    analyzer:
        A :class:`~repro.sta.timing.TimingAnalyzer`.
    doses:
        Optional dose assignment (slower gates under negative dose).
    max_slew_ns:
        Global transition limit; default: the library's characterized
        slew-axis maximum.
    max_cap_ff:
        Global load limit; default: per-cell, the cell's characterized
        load-axis maximum.
    """
    lib = analyzer.library
    if max_slew_ns is None:
        max_slew_ns, _ = default_limits(lib)
    result = analyzer.analyze(doses=doses)
    loads = result.load

    erc = ErcResult(max_slew_ns=max_slew_ns, max_cap_ff=max_cap_ff or -1.0)
    for name in analyzer.netlist.gates:
        cc = analyzer._variant(name, doses)
        slew = cc.slew_at(result.input_slew[name], loads[name])
        if slew > max_slew_ns:
            erc.slew_violations.append((name, float(slew), max_slew_ns))
        limit = (
            max_cap_ff
            if max_cap_ff is not None
            else float(cc.delay.load_axis[-1])
        )
        if loads[name] > limit:
            erc.cap_violations.append((name, float(loads[name]), limit))
    erc.slew_violations.sort(key=lambda v: -v[1])
    erc.cap_violations.sort(key=lambda v: -v[1])
    return erc
