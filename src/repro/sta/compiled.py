"""Compiled, array-backed STA engine.

The golden timer's hot path (:mod:`repro.sta.timing`) is exact but walks
the netlist gate-by-gate in Python.  This module lowers the design into
flat NumPy structures **once** -- topological levels, CSR fanin/fanout
arc arrays, stacked NLDM delay/slew tables per characterized variant,
wire-geometry coefficients -- and then propagates arrival/slew for one
whole topological level per NumPy call (a vectorized bilinear
interpolation over the stacked tables).

On top of the full vectorized pass it supports **incremental re-timing**:
after a placement move or a per-gate dose change, only the dirty fanout
cone is re-propagated and only the affected net loads are rebuilt, so a
dosePl trial swap costs O(cone) instead of O(design).

Numerical contract: every arithmetic expression mirrors the reference
engine operation-for-operation (same association order, same clamping,
same tie-breaks), so both backends agree to the last ulp -- the
differential tests in ``tests/test_sta_vectorized.py`` pin this down.
"""

from __future__ import annotations

import numpy as np

from repro.constants import KOHM_FF_TO_NS
from repro.sta.timing import DEFAULT_INPUT_SLEW, DEFAULT_PO_LOAD, TimingResult

#: Fraction of the design above which an incremental pass falls back to
#: the full vectorized sweep (the bookkeeping would cost more than it
#: saves).
_INCREMENTAL_DIRTY_LIMIT = 0.35


def _bilinear(tab, sx, lx, s, c):
    """Vectorized clamped bilinear interpolation.

    ``tab`` is (m, S, L); ``sx``/``lx`` are the per-row axes (m, S) and
    (m, L); ``s``/``c`` are the query points (m,).  Replicates
    :meth:`repro.library.nldm.NLDMTable.lookup` exactly.
    """
    s = np.clip(s, sx[:, 0], sx[:, -1])
    c = np.clip(c, lx[:, 0], lx[:, -1])
    i = np.clip((sx <= s[:, None]).sum(axis=1) - 1, 0, sx.shape[1] - 2)
    j = np.clip((lx <= c[:, None]).sum(axis=1) - 1, 0, lx.shape[1] - 2)
    r = np.arange(tab.shape[0])
    s0, s1 = sx[r, i], sx[r, i + 1]
    c0, c1 = lx[r, j], lx[r, j + 1]
    fs = (s - s0) / (s1 - s0)
    fc = (c - c0) / (c1 - c0)
    return (
        tab[r, i, j] * (1 - fs) * (1 - fc)
        + tab[r, i + 1, j] * fs * (1 - fc)
        + tab[r, i, j + 1] * (1 - fs) * fc
        + tab[r, i + 1, j + 1] * fs * fc
    )


def lex_max_reduce(arr, slew, starts, seg_of):
    """Per-segment lexicographic max of (arr, slew) pairs.

    Implements the reference engine's worst-arrival selection including
    its deterministic tie-break: within a segment the winner is the pair
    with the largest arrival, and among equal arrivals the largest slew
    (``arr > best or (arr == best and slew > best_slew)``).

    ``starts`` are the segment start offsets into ``arr``; ``seg_of``
    maps each element to its segment index.  Segments must be non-empty.
    Returns (best_arr, best_slew) per segment.
    """
    best_arr = np.maximum.reduceat(arr, starts)
    at_max = arr == best_arr[seg_of]
    best_slew = np.maximum.reduceat(
        np.where(at_max, slew, -np.inf), starts
    )
    return best_arr, best_slew


def _concat_ranges(starts, counts):
    """Indices [s0, s0+1, ..., s0+c0-1, s1, ...] for CSR slice gathers."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    return np.repeat(starts, counts) + (np.arange(total) - offsets)


class _VariantStack:
    """Registry of characterized (master, dose) variants as stacked arrays.

    Each distinct (master, poly dose, active dose) triple used by any
    analyze call gets a small integer id; the NLDM tables, axes, input
    capacitance and setup time of all registered variants live in
    contiguous arrays so a whole level can be interpolated in one shot.
    The stack grows lazily and is shared by every analyzer bound to the
    same compiled graph.
    """

    def __init__(self, library):
        self.library = library
        self._ids: dict = {}
        self._delay: list = []
        self._slew: list = []
        self._sax: list = []
        self._lax: list = []
        self._cap: list = []
        self._setup: list = []
        self._stacked = None

    def __len__(self):
        return len(self._delay)

    def vid(self, master: str, dose_poly: float, dose_active: float) -> int:
        """Variant id for a master at the given doses (registering it)."""
        key = (master, round(float(dose_poly), 3), round(float(dose_active), 3))
        v = self._ids.get(key)
        if v is not None:
            return v
        cc = self.library.characterized(master, dose_poly, dose_active)
        v = len(self._delay)
        self._ids[key] = v
        self._delay.append(np.asarray(cc.delay.values, dtype=float))
        self._slew.append(np.asarray(cc.out_slew.values, dtype=float))
        self._sax.append(np.asarray(cc.delay.slew_axis, dtype=float))
        self._lax.append(np.asarray(cc.delay.load_axis, dtype=float))
        self._cap.append(float(cc.input_cap_ff))
        self._setup.append(float(cc.setup_ns))
        self._stacked = None
        return v

    def arrays(self):
        """(delay, slew, slew_axis, load_axis, input_cap, setup) stacks."""
        if self._stacked is None:
            self._stacked = (
                np.stack(self._delay),
                np.stack(self._slew),
                np.stack(self._sax),
                np.stack(self._lax),
                np.array(self._cap),
                np.array(self._setup),
            )
        return self._stacked


class CompiledTimingGraph:
    """One-time lowering of (netlist, library) into flat timing arrays.

    Placement-independent: geometry (wire RC, net caps) lives on the
    :class:`VectorTimingAnalyzer` bound to a placement, so one compiled
    graph serves every trial placement of a dosePl run.

    Array layout
    ------------
    Gates are indexed 0..n-1 in topological order (``names``).  ``perm``
    re-sorts them by topological *level*; all per-arc CSR arrays are laid
    out so each level's arcs are contiguous (``fi_ptr`` is indexed by
    perm position).  Every gate owns a leading *virtual* fanin arc
    (``src == -1``) carrying the primary-input operating point
    ``(arrival 0, input slew)`` -- sequential cells, whose data pins end
    paths, own only that arc, which makes the forward kernel uniform.
    A trailing virtual fanout arc (``succ == -1``) keeps the backward
    min-reduction total.
    """

    def __init__(self, netlist, library):
        self.netlist = netlist
        self.library = library
        self.stack = _VariantStack(library)

        names = netlist.topological_order(library)
        self.names = names
        self.index = {name: i for i, name in enumerate(names)}
        n = len(names)
        self.n = n
        self.masters = [netlist.gates[g].master for g in names]
        self.is_seq = np.array(
            [library.cell(m).is_sequential for m in self.masters], dtype=bool
        )

        # ---- levels -------------------------------------------------
        level = np.zeros(n, dtype=np.int64)
        for i, name in enumerate(names):
            if self.is_seq[i]:
                continue
            best = 0
            for net_name in netlist.gates[name].inputs:
                drv = netlist.nets[net_name].driver
                if drv is not None:
                    best = max(best, int(level[self.index[drv]]) + 1)
            level[i] = best
        self.level = level
        self.n_levels = int(level.max()) + 1 if n else 0
        # stable sort keeps topological order within a level
        self.perm = np.argsort(level, kind="stable").astype(np.int64)
        self.pos_of = np.empty(n, dtype=np.int64)
        self.pos_of[self.perm] = np.arange(n)
        bounds = np.searchsorted(level[self.perm], np.arange(self.n_levels + 1))
        self.level_slices = [
            (int(bounds[k]), int(bounds[k + 1])) for k in range(self.n_levels)
        ]

        # ---- fanin arcs (perm-ordered CSR) --------------------------
        fi_src, fi_sink, fi_seg = [], [], []
        fi_ptr = [0]
        wd_keys = []  # (driver name, sink name) per *real* arc
        real_fi = []  # arc ids of real arcs
        for p in range(n):
            gid = int(self.perm[p])
            name = names[gid]
            fi_src.append(-1)  # virtual (0, input_slew) baseline
            fi_sink.append(gid)
            fi_seg.append(p)
            if not self.is_seq[gid]:
                for net_name in netlist.gates[name].inputs:
                    drv = netlist.nets[net_name].driver
                    if drv is None:
                        continue
                    real_fi.append(len(fi_src))
                    wd_keys.append((drv, name))
                    fi_src.append(self.index[drv])
                    fi_sink.append(gid)
                    fi_seg.append(p)
            fi_ptr.append(len(fi_src))
        self.fi_src = np.array(fi_src, dtype=np.int64)
        self.fi_sink = np.array(fi_sink, dtype=np.int64)
        self.fi_seg = np.array(fi_seg, dtype=np.int64)
        self.fi_ptr = np.array(fi_ptr, dtype=np.int64)
        self.real_fi = np.array(real_fi, dtype=np.int64)
        self.wd_keys_fi = wd_keys

        # ---- load CSR (gate-index ordered): sinks of each output net
        ld_sink, ld_owner = [], []
        ld_ptr = [0]
        hp_gate = []  # output-net endpoints (driver + sinks) for HPWL
        hp_ptr = [0]
        is_po = np.zeros(n, dtype=bool)
        self.out_nets = []
        po_ids, po_labels = [], []
        for gid, name in enumerate(names):
            out = netlist.gates[name].output
            self.out_nets.append(out)
            net = netlist.nets[out]
            hp_gate.append(gid)
            for sink, _pin in net.sinks:
                ld_sink.append(self.index[sink])
                ld_owner.append(gid)
                hp_gate.append(self.index[sink])
            ld_ptr.append(len(ld_sink))
            hp_ptr.append(len(hp_gate))
            if net.is_primary_output:
                is_po[gid] = True
                po_ids.append(gid)
                po_labels.append(f"PO:{out}")
        self.ld_sink = np.array(ld_sink, dtype=np.int64)
        self.ld_owner = np.array(ld_owner, dtype=np.int64)
        self.ld_ptr = np.array(ld_ptr, dtype=np.int64)
        self.hp_gate = np.array(hp_gate, dtype=np.int64)
        self.hp_ptr = np.array(hp_ptr, dtype=np.int64)
        self.is_po = is_po
        self.po_ids = np.array(po_ids, dtype=np.int64)
        self.po_labels = po_labels

        # ---- FF data-pin endpoint arcs ------------------------------
        ff_src, ff_gate, ff_labels, wd_keys_ff = [], [], [], []
        for gid, name in enumerate(names):
            if not self.is_seq[gid]:
                continue
            for net_name in netlist.gates[name].inputs:
                drv = netlist.nets[net_name].driver
                if drv is None:
                    continue
                ff_src.append(self.index[drv])
                ff_gate.append(gid)
                ff_labels.append(f"FF:{name}:{net_name}")
                wd_keys_ff.append((drv, name))
        self.ff_src = np.array(ff_src, dtype=np.int64)
        self.ff_gate = np.array(ff_gate, dtype=np.int64)
        self.ff_labels = ff_labels
        self.wd_keys_ff = wd_keys_ff

        # ---- fanout arcs (perm-ordered CSR, for the backward pass) --
        fo_succ, fo_seg = [], []
        fo_ptr = [0]
        for p in range(n):
            gid = int(self.perm[p])
            for succ in netlist.fanout_gates(names[gid]):
                fo_succ.append(self.index[succ])
                fo_seg.append(p)
            fo_succ.append(-1)  # virtual +inf arc: reduction never empty
            fo_seg.append(p)
            fo_ptr.append(len(fo_succ))
        self.fo_succ = np.array(fo_succ, dtype=np.int64)
        self.fo_seg = np.array(fo_seg, dtype=np.int64)
        self.fo_ptr = np.array(fo_ptr, dtype=np.int64)
        self.fo_owner = self.perm[self.fo_seg]

        # ---- incremental adjacency ----------------------------------
        # per gate: fanin arc ids touching it (as src or sink), fanout
        # arc ids, FF arc ids, the drivers of its input nets (whose net
        # loads depend on this gate's pin cap / position), and its
        # combinational fanout gate ids (dirty-cone closure).
        self.fi_touch = [[] for _ in range(n)]
        for a in self.real_fi:
            self.fi_touch[self.fi_src[a]].append(int(a))
            self.fi_touch[self.fi_sink[a]].append(int(a))
        self.fo_touch = [[] for _ in range(n)]
        for a, succ in enumerate(self.fo_succ):
            if succ >= 0:
                self.fo_touch[succ].append(a)
                self.fo_touch[self.fo_owner[a]].append(a)
        self.ff_touch = [[] for _ in range(n)]
        for a in range(len(self.ff_src)):
            self.ff_touch[self.ff_src[a]].append(a)
            self.ff_touch[self.ff_gate[a]].append(a)
        self.fanin_drivers = [set() for _ in range(n)]
        for a in self.real_fi:
            self.fanin_drivers[self.fi_sink[a]].add(int(self.fi_src[a]))
        for a in range(len(self.ff_src)):
            self.fanin_drivers[self.ff_gate[a]].add(int(self.ff_src[a]))
        self.comb_fanout = [[] for _ in range(n)]
        for a in self.real_fi:
            self.comb_fanout[self.fi_src[a]].append(int(self.fi_sink[a]))

        # nominal (zero-dose) variant ids
        self.nominal_vids = np.array(
            [self.stack.vid(m, 0.0, 0.0) for m in self.masters], dtype=np.int64
        )

    def vids_for(self, doses) -> np.ndarray:
        """Per-gate variant-id array for a dose assignment dict."""
        if doses is None:
            return self.nominal_vids
        vids = np.empty(self.n, dtype=np.int64)
        vid = self.stack.vid
        get = doses.get
        for i, name in enumerate(self.names):
            dp, da = get(name, (0.0, 0.0))
            vids[i] = vid(self.masters[i], dp, da)
        return vids


class VectorTimingAnalyzer:
    """Array-backed drop-in for :class:`repro.sta.timing.TimingAnalyzer`.

    Same constructor signature and ``analyze`` contract as the reference
    engine, same :class:`TimingResult` output, plus:

    ``rebind(placement)``
        A new analyzer for another placement sharing this one's compiled
        graph and variant stack (geometry is rebuilt vectorized).
    ``update_placement(moved)``
        Refresh wire geometry for a few moved cells and mark their
        cones dirty for the next (incremental) pass.
    ``mct(doses)`` / ``trial_mct(dose_updates)``
        Forward-only (no slacks, no dict building) MCT evaluation; with
        a cached state this re-propagates only the dirty cone -- the
        dosePl per-swap trial timer.
    """

    def __init__(
        self,
        netlist,
        library,
        placement,
        input_slew: float = DEFAULT_INPUT_SLEW,
        po_load: float = DEFAULT_PO_LOAD,
        net_lengths: dict = None,
        graph: CompiledTimingGraph = None,
    ):
        self.netlist = netlist
        self.library = library
        self.placement = placement
        self.input_slew = float(input_slew)
        self.po_load = float(po_load)
        self.net_lengths = net_lengths
        self.node = library.node
        if graph is None:
            graph = CompiledTimingGraph(netlist, library)
        elif graph.netlist is not netlist or graph.library is not library:
            raise ValueError("compiled graph belongs to a different design")
        self.graph = graph
        # reference-compatible internals (used by hold/ERC analysis)
        self._order = graph.names
        self._is_seq = dict(zip(graph.names, graph.is_seq.tolist()))
        self._state = None
        self._moved_pending: set = set()
        self._geometry_full()

    # -- reference-engine compatibility (hold / ERC duck typing) -------
    def _variant(self, gate_name: str, doses):
        master = self.netlist.gate(gate_name).master
        if doses is None:
            return self.library.nominal(master)
        dp, da = doses.get(gate_name, (0.0, 0.0))
        return self.library.characterized(master, dp, da)

    def _net_loads(self, doses):
        """Per-net capacitive loads dict (reference-compatible)."""
        from repro.sta.timing import TimingAnalyzer

        ref = TimingAnalyzer(
            self.netlist, self.library, self.placement,
            input_slew=self.input_slew, po_load=self.po_load,
            net_lengths=self.net_lengths,
        )
        return ref._net_loads(doses)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def _coords(self):
        g = self.graph
        n = g.n
        x = np.zeros(n)
        y = np.zeros(n)
        placed = np.zeros(n, dtype=bool)
        loc = self.placement
        for i, name in enumerate(g.names):
            if loc.is_placed(name):
                px, py = loc.location(name)
                x[i], y[i], placed[i] = px, py, True
        return x, y, placed

    def _arc_geometry(self, src, snk, x, y, placed):
        """(r_wire, c_wire) arrays for arcs; virtual/unplaced arcs get 0."""
        valid = (src >= 0) & placed[src] & placed[snk]
        s = np.where(src >= 0, src, 0)
        dist = np.where(
            valid,
            np.abs(x[s] - x[snk]) + np.abs(y[s] - y[snk]),
            0.0,
        )
        return self.node.wire_r_per_um * dist, self.node.wire_c_per_um * dist

    def _wire_caps(self, x, y, placed):
        """Per-gate output-net wire capacitance (HPWL or router length)."""
        g = self.graph
        ep = g.hp_gate
        starts = g.hp_ptr[:-1]
        xs = np.where(placed[ep], x[ep], np.inf)
        ys = np.where(placed[ep], y[ep], np.inf)
        xmin = np.minimum.reduceat(xs, starts)
        ymin = np.minimum.reduceat(ys, starts)
        xs = np.where(placed[ep], x[ep], -np.inf)
        ys = np.where(placed[ep], y[ep], -np.inf)
        xmax = np.maximum.reduceat(xs, starts)
        ymax = np.maximum.reduceat(ys, starts)
        count = np.add.reduceat(placed[ep].astype(np.int64), starts)
        with np.errstate(invalid="ignore"):
            hpwl = np.where(count >= 2, (xmax - xmin) + (ymax - ymin), 0.0)
        lengths = hpwl
        if self.net_lengths is not None:
            lengths = hpwl.copy()
            for gid, net in enumerate(g.out_nets):
                routed = self.net_lengths.get(net)
                if routed is not None:
                    lengths[gid] = routed
        return self.node.wire_c_per_um * lengths

    def _geometry_full(self):
        g = self.graph
        x, y, placed = self._coords()
        self._x, self._y, self._placed = x, y, placed
        self._fi_rw, self._fi_cw = self._arc_geometry(
            g.fi_src, g.fi_sink, x, y, placed
        )
        self._fo_rw, self._fo_cw = self._arc_geometry(
            g.fo_owner, np.where(g.fo_succ >= 0, g.fo_succ, 0), x, y, placed
        )
        # virtual fanout arcs must stay zero even if owner is placed
        virt = g.fo_succ < 0
        self._fo_rw[virt] = 0.0
        self._fo_cw[virt] = 0.0
        if len(g.ff_src):
            self._ff_rw, self._ff_cw = self._arc_geometry(
                g.ff_src, g.ff_gate, x, y, placed
            )
        else:
            self._ff_rw = np.empty(0)
            self._ff_cw = np.empty(0)
        self._wire_cap = self._wire_caps(x, y, placed)

    def update_placement(self, moved_gates) -> None:
        """Refresh geometry for moved cells; mark their cones dirty.

        Call after mutating this analyzer's bound placement (e.g. a
        dosePl swap, or its undo).  The next ``analyze``/``trial_mct``
        re-propagates only the affected cone.
        """
        g = self.graph
        node = self.node
        ids = [g.index[m] for m in moved_gates if m in g.index]
        if not ids:
            return
        loc = self.placement
        for gid in ids:
            name = g.names[gid]
            if loc.is_placed(name):
                px, py = loc.location(name)
                self._x[gid], self._y[gid] = px, py
                self._placed[gid] = True
            else:
                self._placed[gid] = False
        x, y, placed = self._x, self._y, self._placed

        def _dist(a, b):
            if placed[a] and placed[b]:
                return abs(x[a] - x[b]) + abs(y[a] - y[b])
            return 0.0

        fi_arcs = set()
        fo_arcs = set()
        ff_arcs = set()
        net_owners = set()
        for gid in ids:
            fi_arcs.update(g.fi_touch[gid])
            fo_arcs.update(g.fo_touch[gid])
            ff_arcs.update(g.ff_touch[gid])
            net_owners.add(gid)  # its own output net stretches
            net_owners.update(g.fanin_drivers[gid])  # input nets stretch
        for a in fi_arcs:
            d = _dist(g.fi_src[a], g.fi_sink[a])
            self._fi_rw[a] = node.wire_r_per_um * d
            self._fi_cw[a] = node.wire_c_per_um * d
        for a in fo_arcs:
            d = _dist(g.fo_owner[a], g.fo_succ[a])
            self._fo_rw[a] = node.wire_r_per_um * d
            self._fo_cw[a] = node.wire_c_per_um * d
        for a in ff_arcs:
            d = _dist(g.ff_src[a], g.ff_gate[a])
            self._ff_rw[a] = node.wire_r_per_um * d
            self._ff_cw[a] = node.wire_c_per_um * d
        for gid in net_owners:
            if (
                self.net_lengths is not None
                and g.out_nets[gid] in self.net_lengths
            ):
                continue  # routed length pinned by the router
            lo, hi = g.hp_ptr[gid], g.hp_ptr[gid + 1]
            xs, ys = [], []
            for ep in g.hp_gate[lo:hi]:
                if placed[ep]:
                    xs.append(x[ep])
                    ys.append(y[ep])
            hpwl = (
                (max(xs) - min(xs)) + (max(ys) - min(ys))
                if len(xs) >= 2
                else 0.0
            )
            self._wire_cap[gid] = node.wire_c_per_um * hpwl
        self._moved_pending.update(ids)

    def rebind(self, placement) -> "VectorTimingAnalyzer":
        """New analyzer for another placement, sharing the compiled graph."""
        return VectorTimingAnalyzer(
            self.netlist,
            self.library,
            placement,
            input_slew=self.input_slew,
            po_load=self.po_load,
            graph=self.graph,
        )

    # ------------------------------------------------------------------
    # forward propagation
    # ------------------------------------------------------------------
    def _loads_full(self, cap):
        g = self.graph
        loads = self._wire_cap.copy()
        np.add.at(loads, g.ld_owner, cap[g.ld_sink])
        loads[g.is_po] += self.po_load
        return loads

    def _forward_level(self, st, pos, arc_idx, starts_local, seg_local, cap, stacks):
        """Propagate one level's (sub)set of gates given their arc gather."""
        g = self.graph
        d_tab, s_tab, sax, lax = stacks
        ids = g.perm[pos]
        src = g.fi_src[arc_idx]
        snk = g.fi_sink[arc_idx]
        rw = self._fi_rw[arc_idx]
        cw = self._fi_cw[arc_idx]
        wd = rw * (0.5 * cw + cap[snk]) * KOHM_FF_TO_NS
        valid = src >= 0
        arr_in = np.where(valid, st["arrival"][src] + wd, 0.0)
        slew_in = np.where(valid, st["out_slew"][src], self.input_slew)
        best_arr, best_slew = lex_max_reduce(arr_in, slew_in, starts_local, seg_local)
        vids = st["vids"][ids]
        ld = st["loads"][ids]
        dly = _bilinear(d_tab[vids], sax[vids], lax[vids], best_slew, ld)
        slw = _bilinear(s_tab[vids], sax[vids], lax[vids], best_slew, ld)
        st["arrival"][ids] = best_arr + dly
        st["gate_delay"][ids] = dly
        st["in_slew"][ids] = best_slew
        st["out_slew"][ids] = slw

    def _forward_full(self, vids):
        g = self.graph
        d_tab, s_tab, sax, lax, cap_v, setup_v = g.stack.arrays()
        cap = cap_v[vids]
        st = {
            "vids": vids.copy(),
            "cap": cap,
            "loads": self._loads_full(cap),
            "arrival": np.zeros(g.n),
            "out_slew": np.zeros(g.n),
            "gate_delay": np.zeros(g.n),
            "in_slew": np.zeros(g.n),
        }
        stacks = (d_tab, s_tab, sax, lax)
        for lo, hi in g.level_slices:
            pos = np.arange(lo, hi)
            a0, a1 = int(g.fi_ptr[lo]), int(g.fi_ptr[hi])
            arc_idx = np.arange(a0, a1)
            starts_local = g.fi_ptr[lo:hi] - a0
            seg_local = g.fi_seg[a0:a1] - lo
            self._forward_level(
                st, pos, arc_idx, starts_local, seg_local, cap, stacks
            )
        self._state = st
        self._moved_pending = set()

    def _dirty_cone(self, vids):
        """Dirty gate set vs the cached state, or None for 'go full'."""
        g = self.graph
        st = self._state
        vid_chg = np.nonzero(vids != st["vids"])[0]
        if len(vid_chg) == 0 and not self._moved_pending:
            return set(), set()
        seeds = set(int(v) for v in vid_chg) | set(self._moved_pending)
        load_dirty = set()
        for gid in vid_chg:
            load_dirty |= g.fanin_drivers[gid]  # its pin cap is in their load
        for gid in self._moved_pending:
            load_dirty.add(gid)  # own output net stretched
            load_dirty |= g.fanin_drivers[gid]  # input nets stretched
            seeds.update(g.comb_fanout[gid])  # outgoing arc delays changed
        seeds |= load_dirty
        if len(seeds) > _INCREMENTAL_DIRTY_LIMIT * g.n:
            return None, None
        dirty = set()
        stack = list(seeds)
        while stack:
            v = stack.pop()
            if v in dirty:
                continue
            dirty.add(v)
            for succ in g.comb_fanout[v]:
                if succ not in dirty:
                    stack.append(succ)
            if len(dirty) > _INCREMENTAL_DIRTY_LIMIT * g.n:
                return None, None
        return dirty, load_dirty

    def _forward_incremental(self, vids, dirty, load_dirty):
        g = self.graph
        st = self._state
        d_tab, s_tab, sax, lax, cap_v, setup_v = g.stack.arrays()
        cap = cap_v[vids]
        st["vids"] = vids.copy()
        st["cap"] = cap
        loads = st["loads"]
        for gid in load_dirty:
            lo, hi = int(g.ld_ptr[gid]), int(g.ld_ptr[gid + 1])
            v = self._wire_cap[gid]
            for a in range(lo, hi):
                v = v + cap[g.ld_sink[a]]
            if g.is_po[gid]:
                v = v + self.po_load
            loads[gid] = v
        if dirty:
            pos_all = np.sort(g.pos_of[np.fromiter(dirty, dtype=np.int64)])
            levels = g.level[g.perm[pos_all]]
            stacks = (d_tab, s_tab, sax, lax)
            for lv in np.unique(levels):
                pos = pos_all[levels == lv]
                starts = g.fi_ptr[pos]
                counts = g.fi_ptr[pos + 1] - starts
                arc_idx = _concat_ranges(starts, counts)
                starts_local = np.cumsum(counts) - counts
                seg_local = np.repeat(np.arange(len(pos)), counts)
                self._forward_level(
                    st, pos, arc_idx, starts_local, seg_local, cap, stacks
                )
        self._moved_pending = set()

    def _ensure_forward(self, vids):
        from repro.obs import metrics

        if self._state is None:
            metrics.inc("sta.full_retime")
            self._forward_full(vids)
            return
        dirty, load_dirty = self._dirty_cone(vids)
        if dirty is None:
            metrics.inc("sta.full_retime")
            self._forward_full(vids)
        else:
            metrics.inc("sta.incremental_retime")
            self._forward_incremental(vids, dirty, load_dirty)

    # ------------------------------------------------------------------
    # endpoints / backward
    # ------------------------------------------------------------------
    def _endpoints(self):
        g = self.graph
        st = self._state
        _d, _s, _sx, _lx, _cap, setup_v = g.stack.arrays()
        ep_po = st["arrival"][g.po_ids] if len(g.po_ids) else np.empty(0)
        if len(g.ff_src):
            wd = self._ff_rw * (0.5 * self._ff_cw + st["cap"][g.ff_gate]) * KOHM_FF_TO_NS
            ep_ff = (st["arrival"][g.ff_src] + wd) + setup_v[st["vids"][g.ff_gate]]
        else:
            ep_ff = np.empty(0)
        mct = 0.0
        if len(ep_po):
            mct = max(mct, float(ep_po.max()))
        if len(ep_ff):
            mct = max(mct, float(ep_ff.max()))
        return ep_po, ep_ff, mct

    def _backward(self, period):
        g = self.graph
        st = self._state
        _d, _s, _sx, _lx, _cap, setup_v = g.stack.arrays()
        setup_of = setup_v[st["vids"]]
        cap = st["cap"]
        gate_delay = st["gate_delay"]
        inf = np.inf
        required = np.full(g.n, inf)
        required[g.po_ids] = period
        for lo, hi in reversed(g.level_slices):
            a0, a1 = int(g.fo_ptr[lo]), int(g.fo_ptr[hi])
            succ = g.fo_succ[a0:a1]
            valid = succ >= 0
            sc = np.where(valid, succ, 0)
            wd = self._fo_rw[a0:a1] * (
                0.5 * self._fo_cw[a0:a1] + cap[sc]
            ) * KOHM_FF_TO_NS
            contrib = np.where(
                valid,
                np.where(
                    g.is_seq[sc],
                    (period - setup_of[sc]) - wd,
                    (required[sc] - gate_delay[sc]) - wd,
                ),
                inf,
            )
            starts_local = g.fo_ptr[lo:hi] - a0
            seg_min = np.minimum.reduceat(contrib, starts_local)
            ids = g.perm[lo:hi]
            required[ids] = np.minimum(required[ids], seg_min)
        slack = np.where(required < inf, required - st["arrival"], period)
        return required, slack

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def analyze(self, doses=None, clock_period: float = None) -> TimingResult:
        """One STA pass; same contract as the reference engine.

        Consecutive calls on the same analyzer re-time incrementally:
        only gates whose dose changed -- plus cells moved via
        ``update_placement`` -- and their fanout cones are re-propagated.
        """
        g = self.graph
        vids = g.vids_for(doses)
        self._ensure_forward(vids)
        st = self._state
        ep_po, ep_ff, mct = self._endpoints()
        period = mct if clock_period is None else float(clock_period)
        _required, slack = self._backward(period)

        names = g.names
        arrival = dict(zip(names, st["arrival"].tolist()))
        slack_d = dict(zip(names, slack.tolist()))
        gate_delay = dict(zip(names, st["gate_delay"].tolist()))
        in_slew = dict(zip(names, st["in_slew"].tolist()))
        load_d = dict(zip(names, st["loads"].tolist()))
        endpoint_arrival = dict(zip(g.po_labels, ep_po.tolist()))
        endpoint_arrival.update(zip(g.ff_labels, ep_ff.tolist()))
        wire_delay = {}
        if len(g.real_fi):
            a = g.real_fi
            wd = self._fi_rw[a] * (
                0.5 * self._fi_cw[a] + st["cap"][g.fi_sink[a]]
            ) * KOHM_FF_TO_NS
            wire_delay.update(zip(g.wd_keys_fi, wd.tolist()))
        if len(g.ff_src):
            wd = self._ff_rw * (
                0.5 * self._ff_cw + st["cap"][g.ff_gate]
            ) * KOHM_FF_TO_NS
            wire_delay.update(zip(g.wd_keys_ff, wd.tolist()))
        return TimingResult(
            mct=mct,
            arrival=arrival,
            slack=slack_d,
            gate_delay=gate_delay,
            input_slew=in_slew,
            load=load_d,
            wire_delay=wire_delay,
            endpoint_arrival=endpoint_arrival,
        )

    def mct(self, doses=None) -> float:
        """Forward-only MCT (no slacks, no dict building)."""
        self._ensure_forward(self.graph.vids_for(doses))
        return self._endpoints()[2]

    def trial_mct(self, dose_updates: dict = None) -> float:
        """Incremental MCT after a trial perturbation.

        Requires a prior ``analyze``/``mct`` call to seed the cached
        state.  ``dose_updates`` maps gate name -> (poly %, active %)
        for just the gates whose dose changed; placement changes are
        picked up from earlier ``update_placement`` calls.  Cost is
        O(dirty cone), not O(design).
        """
        if self._state is None:
            raise RuntimeError("trial_mct needs a prior analyze()/mct() pass")
        g = self.graph
        vids = self._state["vids"]
        if dose_updates:
            vids = vids.copy()
            for name, (dp, da) in dose_updates.items():
                gid = g.index[name]
                vids[gid] = g.stack.vid(g.masters[gid], dp, da)
        self._ensure_forward(vids)
        return self._endpoints()[2]
