"""DoseMapper actuator profiles: Unicom-XL (slit) and Dosicom (scan).

The physical scanner does not realize an arbitrary per-grid dose map
directly; it composes a **slit-direction profile** (Unicom-XL: a variable
gray filter, polynomial up to 6th order in x) with a **scan-direction
profile** (Dosicom: pulse-energy modulation along y, represented as a sum
of up to eight Legendre polynomials -- the paper's equation (1)):

    D_set(y) = sum_{n=1..8} L_n P_n(y),   |y| <= 1.

This module evaluates those profiles and least-squares-projects an
optimized grid dose map onto the separable actuator basis
``slit(x) + scan(y)``, reporting the projection residual.  (The per-grid
constraints (3)-(4) of the optimization are the paper's own feasibility
abstraction; the projection quantifies how much of a solution the real
actuators can realize.)
"""

from __future__ import annotations

import numpy as np
from numpy.polynomial import legendre as npleg

#: Maximum Legendre order supported by the dose recipe (paper: 8).
MAX_LEGENDRE_ORDER = 8
#: Maximum slit polynomial order (paper: 6, on machines with Unicom XL).
MAX_SLIT_ORDER = 6


def legendre_scan_profile(coeffs, y) -> np.ndarray:
    """Evaluate the Dosicom dose set D_set(y) = sum L_n P_n(y).

    Parameters
    ----------
    coeffs:
        Legendre coefficients L_1..L_k (k <= 8); note the paper's sum
        starts at n = 1, so there is no constant term.
    y:
        Normalized scan positions in [-1, 1].
    """
    coeffs = np.asarray(coeffs, dtype=float)
    if coeffs.size > MAX_LEGENDRE_ORDER:
        raise ValueError(
            f"at most {MAX_LEGENDRE_ORDER} Legendre coefficients supported"
        )
    y = np.asarray(y, dtype=float)
    if np.any(np.abs(y) > 1 + 1e-12):
        raise ValueError("scan positions must satisfy |y| <= 1")
    full = np.concatenate([[0.0], coeffs])  # n starts at 1
    return npleg.legval(y, full)


def slit_profile(coeffs, x) -> np.ndarray:
    """Evaluate the Unicom-XL slit profile: plain polynomial in x.

    ``coeffs`` are ordered from the constant term upward (order <= 6).
    The default production filter is 2nd order (quadratic), per ASML
    guidance quoted in the paper.
    """
    coeffs = np.asarray(coeffs, dtype=float)
    if coeffs.size > MAX_SLIT_ORDER + 1:
        raise ValueError(f"slit polynomial order is limited to {MAX_SLIT_ORDER}")
    x = np.asarray(x, dtype=float)
    if np.any(np.abs(x) > 1 + 1e-12):
        raise ValueError("slit positions must satisfy |x| <= 1")
    return np.polynomial.polynomial.polyval(x, coeffs)


def fit_actuators(
    dose_values: np.ndarray,
    slit_order: int = 2,
    scan_order: int = MAX_LEGENDRE_ORDER,
):
    """Project a grid dose map onto the separable actuator basis.

    Finds slit polynomial coefficients ``s`` (order ``slit_order``) and
    Legendre scan coefficients ``L_1..L_{scan_order}`` minimizing

        || dose[i, j] - slit(x_j) - scan(y_i) ||_2

    over the grid centers mapped to [-1, 1].

    Returns
    -------
    (slit_coeffs, scan_coeffs, realized, rms_residual):
        ``realized`` is the separable approximation evaluated on the grid;
        ``rms_residual`` the root-mean-square dose error (%).
    """
    if slit_order < 0 or slit_order > MAX_SLIT_ORDER:
        raise ValueError(f"slit_order must be in [0, {MAX_SLIT_ORDER}]")
    if scan_order < 1 or scan_order > MAX_LEGENDRE_ORDER:
        raise ValueError(f"scan_order must be in [1, {MAX_LEGENDRE_ORDER}]")
    vals = np.asarray(dose_values, dtype=float)
    if vals.ndim != 2:
        raise ValueError("dose_values must be a 2-D grid")
    m, n = vals.shape
    x = np.linspace(-1, 1, n) if n > 1 else np.zeros(1)
    y = np.linspace(-1, 1, m) if m > 1 else np.zeros(1)

    # Design matrix: [x^0..x^slit_order | P_1(y)..P_k(y)] per grid cell.
    cols = []
    xx = np.tile(x, m)
    yy = np.repeat(y, n)
    for p in range(slit_order + 1):
        cols.append(xx**p)
    for k in range(1, scan_order + 1):
        basis = np.zeros(k + 1)
        basis[k] = 1.0
        cols.append(npleg.legval(yy, basis))
    design = np.stack(cols, axis=1)
    coeffs, *_ = np.linalg.lstsq(design, vals.reshape(-1), rcond=None)
    slit_coeffs = coeffs[: slit_order + 1]
    scan_coeffs = coeffs[slit_order + 1 :]
    realized = (design @ coeffs).reshape(m, n)
    rms = float(np.sqrt(np.mean((realized - vals) ** 2)))
    return slit_coeffs, scan_coeffs, realized, rms
