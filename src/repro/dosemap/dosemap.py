"""Dose map objects: per-grid delta-dose values with equipment checks.

A :class:`DoseMap` holds the delta-dose (percent, relative to the nominal
exposure energy) for every grid of a :class:`GridPartition` on one layer
(poly or active).  It enforces the two equipment feasibility properties
the paper encodes as constraints (3)/(4) and (8)/(9): the correction
range and the neighbor smoothness bound.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_DOSE_RANGE, DEFAULT_SMOOTHNESS
from repro.dosemap.grid import GridPartition

LAYER_POLY = "poly"
LAYER_ACTIVE = "active"


class DoseMap:
    """Delta-dose values (percent) on a grid partition for one layer."""

    def __init__(self, partition: GridPartition, layer: str = LAYER_POLY,
                 values=None):
        if layer not in (LAYER_POLY, LAYER_ACTIVE):
            raise ValueError(f"layer must be 'poly' or 'active', got {layer!r}")
        self.partition = partition
        self.layer = layer
        if values is None:
            self.values = np.zeros((partition.m, partition.n))
        else:
            values = np.asarray(values, dtype=float)
            if values.shape != (partition.m, partition.n):
                raise ValueError(
                    f"values shape {values.shape} does not match partition "
                    f"({partition.m}, {partition.n})"
                )
            self.values = values.copy()

    # ------------------------------------------------------------------
    def dose_at(self, x: float, y: float) -> float:
        """Delta dose (%) at a field location."""
        i, j = self.partition.grid_of(x, y)
        return float(self.values[i, j])

    def dose_of_gate(self, placement, gate_name: str) -> float:
        """Delta dose (%) applied to a placed gate."""
        x, y = placement.location(gate_name)
        return self.dose_at(x, y)

    def from_flat(self, flat) -> "DoseMap":
        """New map with values from a flat (row-major) vector."""
        arr = np.asarray(flat, dtype=float).reshape(
            self.partition.m, self.partition.n
        )
        return DoseMap(self.partition, self.layer, arr)

    def flat(self) -> np.ndarray:
        return self.values.reshape(-1).copy()

    def copy(self) -> "DoseMap":
        return DoseMap(self.partition, self.layer, self.values)

    # ------------------------------------------------------------------
    # equipment feasibility (paper constraints (3)-(4) / (8)-(9))
    # ------------------------------------------------------------------
    def range_violations(self, bound: float = DEFAULT_DOSE_RANGE) -> float:
        """Largest violation of |d| <= bound (0 when feasible)."""
        return float(max(0.0, np.max(np.abs(self.values)) - bound))

    def smoothness_violations(self, delta: float = DEFAULT_SMOOTHNESS) -> float:
        """Largest violation of the neighbor smoothness bound."""
        worst = 0.0
        v = self.values
        for (i1, j1), (i2, j2) in self.partition.neighbor_pairs():
            worst = max(worst, abs(v[i1, j1] - v[i2, j2]) - delta)
        return float(max(0.0, worst))

    def is_feasible(
        self,
        dose_range: float = DEFAULT_DOSE_RANGE,
        smoothness: float = DEFAULT_SMOOTHNESS,
        tol: float = 1e-6,
    ) -> bool:
        """Whether the map satisfies range and smoothness bounds."""
        return (
            self.range_violations(dose_range) <= tol
            and self.smoothness_violations(smoothness) <= tol
        )

    # ------------------------------------------------------------------
    def tiled(self, nx: int, ny: int) -> "DoseMap":
        """Tile the map for an exposure field holding nx x ny die copies.

        The paper notes the extension to multi-die fields: "multiple
        copies of the dose map solution are tiled horizontally and
        vertically".  Note the smoothness bound at copy seams must be
        checked by the caller at the field level (the returned map's
        partition covers the enlarged field).
        """
        if nx < 1 or ny < 1:
            raise ValueError("tile counts must be >= 1")
        p = self.partition
        big = GridPartition(
            width=p.width * nx,
            height=p.height * ny,
            g=p.g,
            m_explicit=p.m * ny,
            n_explicit=p.n * nx,
        )
        vals = np.tile(self.values, (ny, nx))
        return DoseMap(big, self.layer, vals)

    def __repr__(self):
        return (
            f"DoseMap({self.layer}, {self.partition.m}x{self.partition.n}, "
            f"range [{self.values.min():+.2f}, {self.values.max():+.2f}] %)"
        )
