"""Exposure simulation: what the scanner actually prints.

The dose map the optimizer produces is a per-grid *request*; the physical
exposure differs in two ways (Section II-A of the paper):

1. **slit averaging** -- the slit is a physical window of finite height;
   as it scans, each field point integrates illumination over the slit
   transit, low-pass filtering the dose profile along the scan (y)
   direction;
2. **actuator quantization** -- Dosicom updates pulse energy at a finite
   rate, piecewise-constant over scan segments.

This module applies both effects to a :class:`~repro.dosemap.DoseMap`
and returns the *printed* map, letting experiments quantify how much of
an optimized map's benefit survives the optics (complementing the
separable-basis projection in :mod:`repro.dosemap.profiles`).
"""

from __future__ import annotations

import numpy as np

from repro.dosemap.dosemap import DoseMap


def slit_convolve(dose_map: DoseMap, slit_height_um: float) -> DoseMap:
    """Low-pass filter the map along the scan (y) direction.

    Each printed row integrates the requested dose over a window of
    ``slit_height_um`` (a moving average over grid rows; the window is
    clipped at the field edges, preserving the mean).
    """
    if slit_height_um < 0:
        raise ValueError("slit height must be non-negative")
    part = dose_map.partition
    rows_in_window = max(1, int(round(slit_height_um / part.cell_height)))
    if rows_in_window == 1:
        return dose_map.copy()
    vals = dose_map.values
    m = part.m
    half = rows_in_window // 2
    smoothed = np.empty_like(vals)
    for i in range(m):
        lo = max(0, i - half)
        hi = min(m, i + half + 1)
        smoothed[i] = vals[lo:hi].mean(axis=0)
    return DoseMap(part, dose_map.layer, smoothed)


def quantize_scan(dose_map: DoseMap, rows_per_update: int) -> DoseMap:
    """Piecewise-constant pulse-energy updates along the scan direction.

    Dosicom adjusts dose at a finite update rate; groups of
    ``rows_per_update`` grid rows share one realized value (their mean).
    """
    if rows_per_update < 1:
        raise ValueError("rows_per_update must be >= 1")
    if rows_per_update == 1:
        return dose_map.copy()
    part = dose_map.partition
    vals = dose_map.values.copy()
    for start in range(0, part.m, rows_per_update):
        block = vals[start : start + rows_per_update]
        block[:] = block.mean(axis=0)
    return DoseMap(part, dose_map.layer, vals)


def simulate_exposure(
    dose_map: DoseMap,
    slit_height_um: float = 8.0,
    rows_per_update: int = 1,
) -> DoseMap:
    """Apply the exposure chain: quantization, then slit averaging."""
    printed = quantize_scan(dose_map, rows_per_update)
    return slit_convolve(printed, slit_height_um)


def printing_error(requested: DoseMap, printed: DoseMap) -> dict:
    """Request-vs-print statistics (percent dose units).

    Returns the max and RMS absolute error plus the smoothness of the
    printed map (optical averaging can only smooth, never roughen).
    """
    if requested.values.shape != printed.values.shape:
        raise ValueError("maps must share a partition")
    err = printed.values - requested.values
    return {
        "max_abs": float(np.abs(err).max()),
        "rms": float(np.sqrt((err**2).mean())),
        "printed_smoothness": printed.smoothness_violations(0.0),
        "requested_smoothness": requested.smoothness_violations(0.0),
    }
