"""Exposure-field grid partition.

The paper partitions the exposure field into rectangular grids
``R = |r_ij|_{MxN}`` whose width and height are at most a user parameter
``G`` (Section II-B).  One delta-dose variable lives on each grid per
layer; gates are mapped to the grid containing their placed location.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class GridPartition:
    """Uniform rectangular partition of a (width x height) field.

    Attributes
    ----------
    width, height:
        Field dimensions in um (the die, assuming one die per field as in
        the paper's exposition).
    g:
        Maximum grid edge length in um (the paper's ``G``).
    m, n:
        Number of grid rows / columns (derived).
    """

    width: float
    height: float
    g: float
    #: Explicit grid counts; when None they are derived from ``g`` so
    #: every grid edge is at most ``g`` (the paper's definition).  Tiling
    #: a map across a multi-die field sets these to preserve cell sizes.
    m_explicit: int = None
    n_explicit: int = None

    def __post_init__(self):
        if self.width <= 0 or self.height <= 0:
            raise ValueError("field dimensions must be positive")
        if self.g <= 0:
            raise ValueError("grid size G must be positive")
        for count in (self.m_explicit, self.n_explicit):
            if count is not None and count < 1:
                raise ValueError("explicit grid counts must be >= 1")

    @property
    def m(self) -> int:
        """Number of grid rows (y direction)."""
        if self.m_explicit is not None:
            return self.m_explicit
        return max(1, math.ceil(self.height / self.g))

    @property
    def n(self) -> int:
        """Number of grid columns (x direction)."""
        if self.n_explicit is not None:
            return self.n_explicit
        return max(1, math.ceil(self.width / self.g))

    @property
    def n_grids(self) -> int:
        return self.m * self.n

    @property
    def cell_width(self) -> float:
        return self.width / self.n

    @property
    def cell_height(self) -> float:
        return self.height / self.m

    def grid_of(self, x: float, y: float) -> tuple:
        """(i, j) grid indices containing point (x, y), clamped to field."""
        j = min(self.n - 1, max(0, int(x / self.cell_width)))
        i = min(self.m - 1, max(0, int(y / self.cell_height)))
        return i, j

    def index_of(self, i: int, j: int) -> int:
        """Flat index of grid (i, j), row-major."""
        if not (0 <= i < self.m and 0 <= j < self.n):
            raise IndexError(f"grid ({i}, {j}) outside {self.m}x{self.n}")
        return i * self.n + j

    def center_of(self, i: int, j: int) -> tuple:
        """Geometric center (x, y) of grid (i, j)."""
        return ((j + 0.5) * self.cell_width, (i + 0.5) * self.cell_height)

    def neighbor_pairs(self):
        """Adjacent grid pairs subject to the smoothness bound.

        Exactly the three families of the paper's constraint (4):
        diagonal (i,j)-(i+1,j+1), horizontal (i,j)-(i,j+1), and vertical
        (i,j)-(i+1,j).  Yields ((i1, j1), (i2, j2)) tuples.
        """
        for i in range(self.m - 1):
            for j in range(self.n - 1):
                yield (i, j), (i + 1, j + 1)
        for i in range(self.m):
            for j in range(self.n - 1):
                yield (i, j), (i, j + 1)
        for i in range(self.m - 1):
            for j in range(self.n):
                yield (i, j), (i + 1, j)

    def assign_gates(self, placement) -> dict:
        """Map every placed gate to its flat grid index."""
        return {
            name: self.index_of(*self.grid_of(x, y))
            for name, (x, y) in placement.items()
        }

    def __repr__(self):
        return (
            f"GridPartition({self.m}x{self.n} grids of "
            f"{self.cell_width:.1f}x{self.cell_height:.1f} um, G={self.g})"
        )
