"""Dose map substrate: grid partition, dose maps, actuator profiles."""

from repro.dosemap.aclv import (
    aclv_nm,
    optimize_cd_uniformity,
    systematic_cd_error_map,
)
from repro.dosemap.dosemap import LAYER_ACTIVE, LAYER_POLY, DoseMap
from repro.dosemap.exposure import (
    printing_error,
    quantize_scan,
    simulate_exposure,
    slit_convolve,
)
from repro.dosemap.grid import GridPartition
from repro.dosemap.profiles import (
    MAX_LEGENDRE_ORDER,
    MAX_SLIT_ORDER,
    fit_actuators,
    legendre_scan_profile,
    slit_profile,
)

__all__ = [
    "GridPartition",
    "DoseMap",
    "optimize_cd_uniformity",
    "systematic_cd_error_map",
    "aclv_nm",
    "simulate_exposure",
    "slit_convolve",
    "quantize_scan",
    "printing_error",
    "LAYER_POLY",
    "LAYER_ACTIVE",
    "legendre_scan_profile",
    "slit_profile",
    "fit_actuators",
    "MAX_LEGENDRE_ORDER",
    "MAX_SLIT_ORDER",
]
