"""CD-uniformity dose mapping: the original (design-blind) DoseMapper use.

Before this paper, DoseMapper was "used solely ... to reduce ACLV or AWLV
metrics" (Section I): given an in-line metrology map of printed CD errors
across the exposure field, choose a dose map that flattens CD -- with no
knowledge of which gates are timing-critical.  This module implements
that baseline:

    minimize   sum_ij ( cd_err_ij + Ds * d_ij )^2
    subject to |d_ij| <= range,  |d_ij - d_kl| <= delta (neighbors)

It serves two roles in the repository: (1) the comparison point showing
why *design-aware* dose mapping wins (a CD-flat chip is not a
timing/leakage-optimal chip), and (2) the "original dose map" input of the
paper's flow (Fig. 7 takes the ACLV/AWLV-derived map as its starting
point).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.constants import (
    DEFAULT_DOSE_RANGE,
    DEFAULT_DOSE_SENSITIVITY,
    DEFAULT_SMOOTHNESS,
)
from repro.dosemap.dosemap import DoseMap
from repro.dosemap.grid import GridPartition
from repro.solver import solve_qp_ipm


def systematic_cd_error_map(
    partition: GridPartition,
    radial_nm: float = 2.0,
    slit_nm: float = 1.5,
    seed: int = 0,
    noise_nm: float = 0.3,
) -> np.ndarray:
    """Synthesize a plausible within-field CD error map (nm).

    Combines the systematic signatures the paper's Section I lists:
    a bowl-shaped (radial) component such as spin-on resist thickness
    bias, a slit-direction quadratic (lens signature), and small random
    metrology noise.
    """
    m, n = partition.m, partition.n
    y = np.linspace(-1, 1, m)[:, None]
    x = np.linspace(-1, 1, n)[None, :]
    radial = radial_nm * (x**2 + y**2) / 2.0
    slit = slit_nm * (x**2 - 0.5)
    rng = np.random.default_rng(seed)
    noise = noise_nm * rng.standard_normal((m, n))
    return radial + slit + noise


def optimize_cd_uniformity(
    cd_error_nm: np.ndarray,
    partition: GridPartition,
    dose_sensitivity: float = DEFAULT_DOSE_SENSITIVITY,
    dose_range: float = DEFAULT_DOSE_RANGE,
    smoothness: float = DEFAULT_SMOOTHNESS,
) -> DoseMap:
    """Solve the ACLV-minimization QP (see module docstring).

    Parameters
    ----------
    cd_error_nm:
        (m, n) measured CD error per grid: printed minus target CD.
        Positive error (too-wide lines) calls for *more* dose.

    Returns
    -------
    DoseMap
        The correction map; residual CD error is
        ``cd_error_nm + Ds * map.values``.
    """
    cd = np.asarray(cd_error_nm, dtype=float)
    if cd.shape != (partition.m, partition.n):
        raise ValueError(
            f"CD map shape {cd.shape} does not match partition "
            f"({partition.m}, {partition.n})"
        )
    g = partition.n_grids
    ds = float(dose_sensitivity)

    # objective: sum (cd + Ds d)^2 = d' (Ds^2 I) d + 2 Ds cd' d + const
    P = 2.0 * ds * ds * sp.eye(g, format="csc")
    q = 2.0 * ds * cd.reshape(-1)

    rows, cols, vals, lo, hi = [], [], [], [], []
    r = 0
    for k in range(g):
        rows.append(r)
        cols.append(k)
        vals.append(1.0)
        lo.append(-dose_range)
        hi.append(dose_range)
        r += 1
    for (i1, j1), (i2, j2) in partition.neighbor_pairs():
        rows += [r, r]
        cols += [partition.index_of(i1, j1), partition.index_of(i2, j2)]
        vals += [1.0, -1.0]
        lo.append(-smoothness)
        hi.append(smoothness)
        r += 1
    A = sp.csc_matrix((vals, (rows, cols)), shape=(r, g))

    res = solve_qp_ipm(P, q, A, np.array(lo), np.array(hi))
    return DoseMap(partition, values=res.x.reshape(partition.m, partition.n))


def aclv_nm(cd_error_nm: np.ndarray, dose_map: DoseMap = None,
            dose_sensitivity: float = DEFAULT_DOSE_SENSITIVITY) -> float:
    """Across-chip linewidth variation metric: 3 sigma of residual CD (nm)."""
    residual = np.asarray(cd_error_nm, dtype=float)
    if dose_map is not None:
        residual = residual + dose_sensitivity * dose_map.values
    return float(3.0 * residual.std())
