"""Sparse assembly of the paper's DMopt mathematical programs.

Variable vector layout (n = number of gates, G = number of dose grids):

    x = [ d^P_0 .. d^P_{G-1} | (d^A_0 .. d^A_{G-1}) | a_1 .. a_n | T ]

with the active-layer block present only for both-layer optimization.

Constraint blocks (paper equation numbers in parentheses):

* dose correction range, poly (3) and active (8):        L <= d <= U
* smoothness over 8-neighbor pairs, poly (4), active (9): |d_i - d_j| <= delta
* arrival propagation (5)/(10):  a_r + wire(r,q) + t_q(d) <= a_q
  with  t_q(d) = t_q0 + A_q Ds d^P_{g(q)} + B_q Ds d^A_{g(q)}
* endpoints: a <= T for PO drivers, a + wire + setup <= T for FF D-pins
* clock bound (6)/(11), QP only:  T <= tau

Delta-leakage (2) appears as the QP objective or the QCP quadratic
constraint:

    sum_p  alpha_p Ds^2 (d^P)^2  +  beta_p Ds d^P  +  gamma_p Ds d^A
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.constants import (
    DEFAULT_DOSE_RANGE,
    DEFAULT_SMOOTHNESS,
)
from repro.dosemap import DoseMap, GridPartition, LAYER_ACTIVE, LAYER_POLY


@dataclass
class Formulation:
    """Assembled matrices + variable bookkeeping for one DMopt instance.

    ``P_leak``/``q_leak`` encode delta-leakage as (1/2) x'P x + q'x; the
    same pair serves as QP objective or QCP constraint.  ``A, l, u`` hold
    every linear constraint *except* the clock bound, whose row index is
    ``row_clock`` (so the driver can set tau or drop it).
    """

    partition: GridPartition
    both_layers: bool
    n_gates: int
    A: sp.csc_matrix
    l: np.ndarray
    u: np.ndarray
    P_leak: sp.csc_matrix
    q_leak: np.ndarray
    idx_T: int
    row_clock: int
    gate_grid: dict
    gate_order: list = field(repr=False, default_factory=list)

    @property
    def n_vars(self) -> int:
        return self.idx_T + 1

    @property
    def n_dose_vars(self) -> int:
        return self.partition.n_grids * (2 if self.both_layers else 1)

    def split(self, x: np.ndarray):
        """Split a solution vector into (poly map, active map, T)."""
        g = self.partition.n_grids
        poly = DoseMap(self.partition, LAYER_POLY).from_flat(x[:g])
        active = None
        if self.both_layers:
            active = DoseMap(self.partition, LAYER_ACTIVE).from_flat(x[g : 2 * g])
        return poly, active, float(x[self.idx_T])

    def predicted_delta_leakage(self, x: np.ndarray) -> float:
        """Model-predicted delta leakage (uW) at a solution point."""
        return float(0.5 * x @ (self.P_leak @ x) + self.q_leak @ x)


def build_formulation(
    ctx,
    grid_size: float,
    both_layers: bool = False,
    dose_range: float = DEFAULT_DOSE_RANGE,
    smoothness: float = DEFAULT_SMOOTHNESS,
    seam_smoothness: bool = False,
) -> Formulation:
    """Assemble the DMopt matrices for a design context.

    Parameters
    ----------
    ctx:
        A :class:`~repro.core.model.DesignContext`.
    grid_size:
        The paper's ``G`` in um (5, 10, 30, 50 in the experiments).
    both_layers:
        Include active-layer dose variables (gate width modulation).
        Requires ``ctx.fit_width`` so B_p/gamma_p are fitted.
    seam_smoothness:
        Also bound the dose step across die-copy seams (opposite field
        edges), so the per-die solution can be tiled over a multi-die
        exposure field without violating the scanner's smoothness limit
        (the paper's Section II-B multi-copy extension).
    """
    if both_layers and not ctx.fit_width:
        raise ValueError(
            "both-layer formulation needs a DesignContext with fit_width=True"
        )
    nl = ctx.netlist
    lib = ctx.library
    ds = lib.dose_sensitivity
    place = ctx.placement
    baseline = ctx.baseline

    partition = GridPartition(place.die.width, place.die.height, grid_size)
    g = partition.n_grids
    gate_grid = partition.assign_gates(place)

    gate_order = list(nl.gates)
    gate_idx = {name: i for i, name in enumerate(gate_order)}
    n = len(gate_order)
    off_active = g if both_layers else 0
    off_arr = g + off_active
    idx_T = off_arr + n
    n_vars = idx_T + 1

    rows, cols, vals = [], [], []
    lo, hi = [], []
    r = 0

    def add_row(entries, lb, ub):
        nonlocal r
        for c, v in entries:
            rows.append(r)
            cols.append(c)
            vals.append(v)
        lo.append(lb)
        hi.append(ub)
        r += 1

    # ---- (3)/(8) dose correction range
    n_layers = 2 if both_layers else 1
    for layer in range(n_layers):
        for k in range(g):
            add_row([(layer * g + k, 1.0)], -dose_range, dose_range)

    # ---- (4)/(9) smoothness
    for layer in range(n_layers):
        for (i1, j1), (i2, j2) in partition.neighbor_pairs():
            k1 = layer * g + partition.index_of(i1, j1)
            k2 = layer * g + partition.index_of(i2, j2)
            add_row([(k1, 1.0), (k2, -1.0)], -smoothness, smoothness)
        if seam_smoothness:
            # wrap-around pairs across die-copy seams, including the
            # diagonal family of (4): in the tiled field, grid (i, n-1)
            # of one copy neighbors (i, 0) and (i+1, 0) of the next
            m_, n_ = partition.m, partition.n
            seam_pairs = []
            for i in range(m_):
                seam_pairs.append(((i, n_ - 1), (i, 0)))
                if i + 1 < m_:
                    seam_pairs.append(((i, n_ - 1), (i + 1, 0)))
            for j in range(n_):
                seam_pairs.append(((m_ - 1, j), (0, j)))
                if j + 1 < n_:
                    seam_pairs.append(((m_ - 1, j), (0, j + 1)))
            seam_pairs.append(((m_ - 1, n_ - 1), (0, 0)))
            for (i1, j1), (i2, j2) in seam_pairs:
                k1 = layer * g + partition.index_of(i1, j1)
                k2 = layer * g + partition.index_of(i2, j2)
                add_row([(k1, 1.0), (k2, -1.0)], -smoothness, smoothness)

    # ---- (5)/(10) arrival propagation
    is_seq = {
        name: lib.cell(gate.master).is_sequential
        for name, gate in nl.gates.items()
    }
    seen_arcs = set()
    inf = np.inf
    for name in gate_order:
        gate = nl.gates[name]
        q_i = off_arr + gate_idx[name]
        fit = ctx.delay_fit_for(name)
        t0 = baseline.gate_delay[name]
        grid_k = gate_grid[name]
        # delay terms: t_q(d) - t_q0 = A*Ds*dP (+ B*Ds*dA)
        delay_terms = [(grid_k, fit.a * ds)]
        if both_layers:
            delay_terms.append((g + grid_k, fit.b * ds))

        if is_seq[name]:
            # launch: t_q(d) <= a_q   (a_source = 0)
            add_row(delay_terms + [(q_i, -1.0)], -inf, -t0)
            continue
        has_pi = any(nl.nets[net].driver is None for net in gate.inputs)
        if has_pi:
            add_row(delay_terms + [(q_i, -1.0)], -inf, -t0)
        for net_name in gate.inputs:
            drv = nl.nets[net_name].driver
            if drv is None:
                continue
            arc = (drv, name)
            if arc in seen_arcs:
                continue
            seen_arcs.add(arc)
            wire = baseline.wire_delay.get(arc, 0.0)
            r_i = off_arr + gate_idx[drv]
            # a_r - a_q + (t_q(d) - t_q0) <= -t_q0 - wire
            add_row(
                [(r_i, 1.0), (q_i, -1.0)] + delay_terms, -inf, -t0 - wire
            )

    # ---- endpoint constraints: a <= T (PO), a + wire + setup <= T (FF D)
    for name in gate_order:
        gate = nl.gates[name]
        r_i = off_arr + gate_idx[name]
        if nl.nets[gate.output].is_primary_output:
            add_row([(r_i, 1.0), (idx_T, -1.0)], -inf, 0.0)
        for succ in set(nl.fanout_gates(name)):
            if not is_seq[succ]:
                continue
            wire = baseline.wire_delay.get((name, succ), 0.0)
            setup = lib.cell(nl.gate(succ).master).setup_ns
            add_row([(r_i, 1.0), (idx_T, -1.0)], -inf, -wire - setup)

    # ---- clock bound row (caller sets tau via formulation.row_clock)
    row_clock = r
    add_row([(idx_T, 1.0)], -inf, inf)

    A = sp.csc_matrix(
        (vals, (rows, cols)), shape=(r, n_vars)
    )
    l = np.array(lo)
    u = np.array(hi)

    # ---- delta-leakage quadratic (2)
    p_diag = np.zeros(n_vars)
    q_lin = np.zeros(n_vars)
    for name in gate_order:
        lfit = ctx.leakage_fit_for(name)
        k = gate_grid[name]
        p_diag[k] += 2.0 * lfit.alpha * ds * ds  # (1/2) x'Px convention
        q_lin[k] += lfit.beta * ds
        if both_layers:
            q_lin[g + k] += lfit.gamma * ds
    P_leak = sp.diags(p_diag, format="csc")

    return Formulation(
        partition=partition,
        both_layers=both_layers,
        n_gates=n,
        A=A,
        l=l,
        u=u,
        P_leak=P_leak,
        q_leak=q_lin,
        idx_T=idx_T,
        row_clock=row_clock,
        gate_grid=gate_grid,
        gate_order=gate_order,
    )
