"""Sparse assembly of the paper's DMopt mathematical programs.

Variable vector layout (n = number of gates, G = number of dose grids):

    x = [ d^P_0 .. d^P_{G-1} | (d^A_0 .. d^A_{G-1}) | a_1 .. a_n | T ]

with the active-layer block present only for both-layer optimization.

Constraint blocks (paper equation numbers in parentheses):

* dose correction range, poly (3) and active (8):        L <= d <= U
* smoothness over 8-neighbor pairs, poly (4), active (9): |d_i - d_j| <= delta
* arrival propagation (5)/(10):  a_r + wire(r,q) + t_q(d) <= a_q
  with  t_q(d) = t_q0 + A_q Ds d^P_{g(q)} + B_q Ds d^A_{g(q)}
* endpoints: a <= T for PO drivers, a + wire + setup <= T for FF D-pins
* clock bound (6)/(11), QP only:  T <= tau

Delta-leakage (2) appears as the QP objective or the QCP quadratic
constraint:

    sum_p  alpha_p Ds^2 (d^P)^2  +  beta_p Ds d^P  +  gamma_p Ds d^A

Two interchangeable assembly backends produce identical matrices:

``vector`` (default)
    Block-wise COO construction: per-gate coefficient/arc/endpoint
    arrays are extracted once per design context (and cached on it),
    then every constraint family is emitted as one concatenated triplet
    batch and the leakage quadratic as ``np.bincount`` scatters.  The
    program size depends on the grid count, not the gate count, so
    assembly must not be the gate-bound step -- this backend keeps it
    array-bound.
``reference``
    The original per-gate ``add_row`` loop, kept as the readable golden
    model for differential testing (``tests/test_formulate_vectorized.py``).

Pick one with the ``backend`` argument of :func:`build_formulation` or
the ``REPRO_FORMULATE_BACKEND`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

import numpy as np
import scipy.sparse as sp

from repro.constants import (
    DEFAULT_DOSE_RANGE,
    DEFAULT_SMOOTHNESS,
)
from repro.dosemap import DoseMap, GridPartition, LAYER_ACTIVE, LAYER_POLY

BACKEND_VECTOR = "vector"
BACKEND_REFERENCE = "reference"

#: Assembly backend used when callers don't specify one.
DEFAULT_FORMULATE_BACKEND = os.environ.get(
    "REPRO_FORMULATE_BACKEND", BACKEND_VECTOR
)


def resolve_formulate_backend(backend: str = None) -> str:
    """Normalize a backend name (None -> session default)."""
    name = DEFAULT_FORMULATE_BACKEND if backend is None else backend
    if name not in (BACKEND_VECTOR, BACKEND_REFERENCE):
        raise ValueError(
            f"unknown formulation backend {name!r}; expected "
            f"'{BACKEND_VECTOR}' or '{BACKEND_REFERENCE}'"
        )
    return name


@dataclass
class Formulation:
    """Assembled matrices + variable bookkeeping for one DMopt instance.

    ``P_leak``/``q_leak`` encode delta-leakage as (1/2) x'P x + q'x; the
    same pair serves as QP objective or QCP constraint.  ``A, l, u`` hold
    every linear constraint *except* the clock bound, whose row index is
    ``row_clock`` (so the driver can set tau or drop it).

    The first ``n_range_rows`` rows are the dose-range family and the
    following ``n_smooth_rows`` rows the smoothness family; only their
    ``l``/``u`` values depend on ``dose_range``/``smoothness``, which is
    what makes cached formulations cheaply retargetable (see
    :meth:`retarget`).  ``shared`` is a mutable scratch dict carried
    across retargeted copies -- solvers stash reusable state there (e.g.
    the IPM's pattern workspace).
    """

    partition: GridPartition
    both_layers: bool
    n_gates: int
    A: sp.csc_matrix
    l: np.ndarray
    u: np.ndarray
    P_leak: sp.csc_matrix
    q_leak: np.ndarray
    idx_T: int
    row_clock: int
    gate_grid: dict
    gate_order: list = field(repr=False, default_factory=list)
    dose_range: float = DEFAULT_DOSE_RANGE
    smoothness: float = DEFAULT_SMOOTHNESS
    seam_smoothness: bool = False
    n_range_rows: int = 0
    n_smooth_rows: int = 0
    backend: str = BACKEND_VECTOR
    shared: dict = field(repr=False, default_factory=dict)

    @property
    def n_vars(self) -> int:
        return self.idx_T + 1

    @property
    def n_dose_vars(self) -> int:
        return self.partition.n_grids * (2 if self.both_layers else 1)

    def split(self, x: np.ndarray):
        """Split a solution vector into (poly map, active map, T)."""
        g = self.partition.n_grids
        poly = DoseMap(self.partition, LAYER_POLY).from_flat(x[:g])
        active = None
        if self.both_layers:
            active = DoseMap(self.partition, LAYER_ACTIVE).from_flat(x[g : 2 * g])
        return poly, active, float(x[self.idx_T])

    def predicted_delta_leakage(self, x: np.ndarray) -> float:
        """Model-predicted delta leakage (uW) at a solution point."""
        return float(0.5 * x @ (self.P_leak @ x) + self.q_leak @ x)

    def retarget(self, dose_range: float = None, smoothness: float = None):
        """A sibling formulation with new range/smoothness bounds.

        Dose-range and smoothness values only appear in the ``l``/``u``
        entries of their constraint families, so a sweep point can reuse
        the assembled ``A``/``P_leak`` and swap bounds in O(rows).  The
        returned formulation shares ``A``, ``P_leak`` and ``shared``
        (solver workspaces stay valid: the sparsity is untouched).
        """
        dr = self.dose_range if dose_range is None else float(dose_range)
        sm = self.smoothness if smoothness is None else float(smoothness)
        if dr == self.dose_range and sm == self.smoothness:
            return self
        l = self.l.copy()
        u = self.u.copy()
        nr, ns = self.n_range_rows, self.n_smooth_rows
        l[:nr] = -dr
        u[:nr] = dr
        l[nr : nr + ns] = -sm
        u[nr : nr + ns] = sm
        return replace(self, l=l, u=u, dose_range=dr, smoothness=sm)


def _seam_pairs(partition: GridPartition) -> list:
    """Wrap-around grid pairs across die-copy seams.

    In the tiled exposure field, grid (i, n-1) of one copy neighbors
    (i, 0) and (i+1, 0) of the next, including the diagonal family of
    the paper's constraint (4).
    """
    m_, n_ = partition.m, partition.n
    pairs = []
    for i in range(m_):
        pairs.append(((i, n_ - 1), (i, 0)))
        if i + 1 < m_:
            pairs.append(((i, n_ - 1), (i + 1, 0)))
    for j in range(n_):
        pairs.append(((m_ - 1, j), (0, j)))
        if j + 1 < n_:
            pairs.append(((m_ - 1, j), (0, j + 1)))
    pairs.append(((m_ - 1, n_ - 1), (0, 0)))
    return pairs


def build_formulation(
    ctx,
    grid_size: float,
    both_layers: bool = False,
    dose_range: float = DEFAULT_DOSE_RANGE,
    smoothness: float = DEFAULT_SMOOTHNESS,
    seam_smoothness: bool = False,
    backend: str = None,
) -> Formulation:
    """Assemble the DMopt matrices for a design context.

    Parameters
    ----------
    ctx:
        A :class:`~repro.core.model.DesignContext`.
    grid_size:
        The paper's ``G`` in um (5, 10, 30, 50 in the experiments).
    both_layers:
        Include active-layer dose variables (gate width modulation).
        Requires ``ctx.fit_width`` so B_p/gamma_p are fitted.
    seam_smoothness:
        Also bound the dose step across die-copy seams (opposite field
        edges), so the per-die solution can be tiled over a multi-die
        exposure field without violating the scanner's smoothness limit
        (the paper's Section II-B multi-copy extension).
    backend:
        ``"vector"`` (block-wise COO, default) or ``"reference"`` (the
        per-gate loop).  Both produce identical matrices.
    """
    if both_layers and not ctx.fit_width:
        raise ValueError(
            "both-layer formulation needs a DesignContext with fit_width=True"
        )
    backend = resolve_formulate_backend(backend)
    place = ctx.placement
    partition = GridPartition(place.die.width, place.die.height, grid_size)
    if backend == BACKEND_VECTOR:
        assemble = _assemble_vector
    else:
        assemble = _assemble_reference
    return assemble(
        ctx,
        partition,
        both_layers=both_layers,
        dose_range=dose_range,
        smoothness=smoothness,
        seam_smoothness=seam_smoothness,
    )


# ----------------------------------------------------------------------
# reference backend: per-gate add_row loops (golden model)
# ----------------------------------------------------------------------
def _assemble_reference(
    ctx,
    partition: GridPartition,
    both_layers: bool,
    dose_range: float,
    smoothness: float,
    seam_smoothness: bool,
) -> Formulation:
    nl = ctx.netlist
    lib = ctx.library
    ds = lib.dose_sensitivity
    place = ctx.placement
    baseline = ctx.baseline

    g = partition.n_grids
    gate_grid = partition.assign_gates(place)

    gate_order = list(nl.gates)
    gate_idx = {name: i for i, name in enumerate(gate_order)}
    n = len(gate_order)
    off_active = g if both_layers else 0
    off_arr = g + off_active
    idx_T = off_arr + n
    n_vars = idx_T + 1

    rows, cols, vals = [], [], []
    lo, hi = [], []
    r = 0

    def add_row(entries, lb, ub):
        nonlocal r
        for c, v in entries:
            rows.append(r)
            cols.append(c)
            vals.append(v)
        lo.append(lb)
        hi.append(ub)
        r += 1

    # ---- (3)/(8) dose correction range
    n_layers = 2 if both_layers else 1
    for layer in range(n_layers):
        for k in range(g):
            add_row([(layer * g + k, 1.0)], -dose_range, dose_range)
    n_range_rows = r

    # ---- (4)/(9) smoothness
    for layer in range(n_layers):
        for (i1, j1), (i2, j2) in partition.neighbor_pairs():
            k1 = layer * g + partition.index_of(i1, j1)
            k2 = layer * g + partition.index_of(i2, j2)
            add_row([(k1, 1.0), (k2, -1.0)], -smoothness, smoothness)
        if seam_smoothness:
            for (i1, j1), (i2, j2) in _seam_pairs(partition):
                k1 = layer * g + partition.index_of(i1, j1)
                k2 = layer * g + partition.index_of(i2, j2)
                add_row([(k1, 1.0), (k2, -1.0)], -smoothness, smoothness)
    n_smooth_rows = r - n_range_rows

    # ---- (5)/(10) arrival propagation
    is_seq = {
        name: lib.cell(gate.master).is_sequential
        for name, gate in nl.gates.items()
    }
    seen_arcs = set()
    inf = np.inf
    for name in gate_order:
        gate = nl.gates[name]
        q_i = off_arr + gate_idx[name]
        fit = ctx.delay_fit_for(name)
        t0 = baseline.gate_delay[name]
        grid_k = gate_grid[name]
        # delay terms: t_q(d) - t_q0 = A*Ds*dP (+ B*Ds*dA)
        delay_terms = [(grid_k, fit.a * ds)]
        if both_layers:
            delay_terms.append((g + grid_k, fit.b * ds))

        if is_seq[name]:
            # launch: t_q(d) <= a_q   (a_source = 0)
            add_row(delay_terms + [(q_i, -1.0)], -inf, -t0)
            continue
        has_pi = any(nl.nets[net].driver is None for net in gate.inputs)
        if has_pi:
            add_row(delay_terms + [(q_i, -1.0)], -inf, -t0)
        for net_name in gate.inputs:
            drv = nl.nets[net_name].driver
            if drv is None:
                continue
            arc = (drv, name)
            if arc in seen_arcs:
                continue
            seen_arcs.add(arc)
            wire = baseline.wire_delay.get(arc, 0.0)
            r_i = off_arr + gate_idx[drv]
            # a_r - a_q + (t_q(d) - t_q0) <= -t_q0 - wire
            add_row(
                [(r_i, 1.0), (q_i, -1.0)] + delay_terms, -inf, -t0 - wire
            )

    # ---- endpoint constraints: a <= T (PO), a + wire + setup <= T (FF D)
    for name in gate_order:
        gate = nl.gates[name]
        r_i = off_arr + gate_idx[name]
        if nl.nets[gate.output].is_primary_output:
            add_row([(r_i, 1.0), (idx_T, -1.0)], -inf, 0.0)
        for succ in set(nl.fanout_gates(name)):
            if not is_seq[succ]:
                continue
            wire = baseline.wire_delay.get((name, succ), 0.0)
            setup = lib.cell(nl.gate(succ).master).setup_ns
            add_row([(r_i, 1.0), (idx_T, -1.0)], -inf, -wire - setup)

    # ---- clock bound row (caller sets tau via formulation.row_clock)
    row_clock = r
    add_row([(idx_T, 1.0)], -inf, inf)

    A = sp.csc_matrix(
        (vals, (rows, cols)), shape=(r, n_vars)
    )
    l = np.array(lo)
    u = np.array(hi)

    # ---- delta-leakage quadratic (2)
    p_diag = np.zeros(n_vars)
    q_lin = np.zeros(n_vars)
    for name in gate_order:
        lfit = ctx.leakage_fit_for(name)
        k = gate_grid[name]
        p_diag[k] += 2.0 * lfit.alpha * ds * ds  # (1/2) x'Px convention
        q_lin[k] += lfit.beta * ds
        if both_layers:
            q_lin[g + k] += lfit.gamma * ds
    P_leak = sp.diags(p_diag, format="csc")

    return Formulation(
        partition=partition,
        both_layers=both_layers,
        n_gates=n,
        A=A,
        l=l,
        u=u,
        P_leak=P_leak,
        q_leak=q_lin,
        idx_T=idx_T,
        row_clock=row_clock,
        gate_grid=gate_grid,
        gate_order=gate_order,
        dose_range=dose_range,
        smoothness=smoothness,
        seam_smoothness=seam_smoothness,
        n_range_rows=n_range_rows,
        n_smooth_rows=n_smooth_rows,
        backend=BACKEND_REFERENCE,
    )


# ----------------------------------------------------------------------
# vector backend: cached per-design arrays + block-wise COO batches
# ----------------------------------------------------------------------
@dataclass
class _DesignArrays:
    """Grid-independent per-gate/arc/endpoint arrays for one context.

    Extracted once per :class:`DesignContext` and cached on it; every
    grid size / bound setting then assembles from these without touching
    the netlist or the fitters again.
    """

    names: list
    x: np.ndarray
    y: np.ndarray
    is_seq: np.ndarray
    has_pi: np.ndarray
    t0: np.ndarray
    fit_a: np.ndarray
    fit_b: np.ndarray
    alpha: np.ndarray
    beta: np.ndarray
    gamma: np.ndarray
    arc_src: np.ndarray
    arc_snk: np.ndarray
    arc_wire: np.ndarray
    ep_gid: np.ndarray
    ep_u: np.ndarray


def _design_arrays(ctx) -> _DesignArrays:
    cached = ctx.__dict__.get("_formulate_design_arrays")
    if cached is not None:
        return cached
    nl = ctx.netlist
    lib = ctx.library
    place = ctx.placement
    baseline = ctx.baseline

    names = list(nl.gates)
    index = {name: i for i, name in enumerate(names)}
    n = len(names)
    masters = [nl.gates[name].master for name in names]

    x = np.empty(n)
    y = np.empty(n)
    for i, name in enumerate(names):
        x[i], y[i] = place.location(name)
    is_seq = np.array(
        [lib.cell(m).is_sequential for m in masters], dtype=bool
    )
    t0 = np.array([baseline.gate_delay[name] for name in names])

    # delay fits: batch the nearest-table-entry lookup per master, then
    # memoize the (master, i, j) -> DelayFit resolution so each distinct
    # operating entry is fitted exactly once (same cache the reference
    # path populates via ctx.delay_fit_for)
    slews = np.array([baseline.input_slew[name] for name in names])
    loads = np.array([baseline.load[name] for name in names])
    fit_a = np.empty(n)
    fit_b = np.empty(n)
    by_master: dict = {}
    for i, m in enumerate(masters):
        by_master.setdefault(m, []).append(i)
    for m, gids in by_master.items():
        gids = np.asarray(gids)
        table = lib.nominal(m).delay
        si = np.argmin(
            np.abs(table.slew_axis[None, :] - slews[gids][:, None]), axis=1
        )
        lj = np.argmin(
            np.abs(table.load_axis[None, :] - loads[gids][:, None]), axis=1
        )
        memo: dict = {}
        for k, gid in enumerate(gids):
            key = (int(si[k]), int(lj[k]))
            fit = memo.get(key)
            if fit is None:
                fit = ctx.delay_fitter.fit_at_entry(m, key[0], key[1])
                memo[key] = fit
            fit_a[gid] = fit.a
            fit_b[gid] = fit.b

    # leakage fits: one per master
    alpha = np.empty(n)
    beta = np.empty(n)
    gamma = np.empty(n)
    lmemo: dict = {}
    for i, m in enumerate(masters):
        fit = lmemo.get(m)
        if fit is None:
            fit = ctx.leakage_fitter.fit(m)
            lmemo[m] = fit
        alpha[i] = fit.alpha
        beta[i] = fit.beta
        gamma[i] = fit.gamma

    # timing arcs (deduplicated per (driver, sink), in input-pin order)
    # and primary-input flags, mirroring the reference row enumeration
    wire_delay = baseline.wire_delay
    has_pi = np.zeros(n, dtype=bool)
    arc_src, arc_snk, arc_wire = [], [], []
    for gid, name in enumerate(names):
        if is_seq[gid]:
            continue
        gate = nl.gates[name]
        seen: set = set()
        pi = False
        for net_name in gate.inputs:
            drv = nl.nets[net_name].driver
            if drv is None:
                pi = True
                continue
            if drv in seen:
                continue
            seen.add(drv)
            arc_src.append(index[drv])
            arc_snk.append(gid)
            arc_wire.append(wire_delay.get((drv, name), 0.0))
        has_pi[gid] = pi

    # endpoint rows: PO drivers (rhs 0) and FF D-pin fanin (rhs
    # -wire - setup), in per-gate order
    ep_gid, ep_u = [], []
    for gid, name in enumerate(names):
        gate = nl.gates[name]
        if nl.nets[gate.output].is_primary_output:
            ep_gid.append(gid)
            ep_u.append(0.0)
        for succ in set(nl.fanout_gates(name)):
            if not is_seq[index[succ]]:
                continue
            wire = wire_delay.get((name, succ), 0.0)
            setup = lib.cell(nl.gate(succ).master).setup_ns
            ep_gid.append(gid)
            ep_u.append(-wire - setup)

    arrs = _DesignArrays(
        names=names,
        x=x,
        y=y,
        is_seq=is_seq,
        has_pi=has_pi,
        t0=t0,
        fit_a=fit_a,
        fit_b=fit_b,
        alpha=alpha,
        beta=beta,
        gamma=gamma,
        arc_src=np.asarray(arc_src, dtype=np.int64),
        arc_snk=np.asarray(arc_snk, dtype=np.int64),
        arc_wire=np.asarray(arc_wire, dtype=float),
        ep_gid=np.asarray(ep_gid, dtype=np.int64),
        ep_u=np.asarray(ep_u, dtype=float),
    )
    ctx.__dict__["_formulate_design_arrays"] = arrs
    return arrs


def _neighbor_indices(partition: GridPartition):
    """Flat (k1, k2) index arrays of ``partition.neighbor_pairs()``."""
    m, n = partition.m, partition.n
    idx = np.arange(m * n, dtype=np.int64).reshape(m, n)
    k1 = np.concatenate(
        [idx[:-1, :-1].ravel(), idx[:, :-1].ravel(), idx[:-1, :].ravel()]
    )
    k2 = np.concatenate(
        [idx[1:, 1:].ravel(), idx[:, 1:].ravel(), idx[1:, :].ravel()]
    )
    return k1, k2


def _assemble_vector(
    ctx,
    partition: GridPartition,
    both_layers: bool,
    dose_range: float,
    smoothness: float,
    seam_smoothness: bool,
) -> Formulation:
    arrs = _design_arrays(ctx)
    ds = ctx.library.dose_sensitivity
    g = partition.n_grids
    n = len(arrs.names)
    n_layers = 2 if both_layers else 1
    off_arr = n_layers * g
    idx_T = off_arr + n
    n_vars = idx_T + 1
    inf = np.inf

    # grid assignment, replicating GridPartition.grid_of element-wise
    gj = np.clip(
        (arrs.x / partition.cell_width).astype(np.int64), 0, partition.n - 1
    )
    gi = np.clip(
        (arrs.y / partition.cell_height).astype(np.int64), 0, partition.m - 1
    )
    grid_k = gi * partition.n + gj
    gate_grid = dict(zip(arrs.names, grid_k.tolist()))

    rows_p, cols_p, vals_p = [], [], []
    lo_p, hi_p = [], []
    r = 0

    # ---- (3)/(8) dose correction range
    n_range_rows = n_layers * g
    rows_p.append(np.arange(n_range_rows, dtype=np.int64))
    cols_p.append(np.arange(n_range_rows, dtype=np.int64))
    vals_p.append(np.ones(n_range_rows))
    lo_p.append(np.full(n_range_rows, -dose_range))
    hi_p.append(np.full(n_range_rows, dose_range))
    r += n_range_rows

    # ---- (4)/(9) smoothness
    k1, k2 = _neighbor_indices(partition)
    if seam_smoothness:
        pairs = _seam_pairs(partition)
        s1 = np.array(
            [partition.index_of(i, j) for (i, j), _ in pairs], dtype=np.int64
        )
        s2 = np.array(
            [partition.index_of(i, j) for _, (i, j) in pairs], dtype=np.int64
        )
        k1 = np.concatenate([k1, s1])
        k2 = np.concatenate([k2, s2])
    n_pairs = k1.size
    for layer in range(n_layers):
        row_ids = r + np.arange(n_pairs, dtype=np.int64)
        rows_p.append(np.concatenate([row_ids, row_ids]))
        cols_p.append(np.concatenate([layer * g + k1, layer * g + k2]))
        vals_p.append(
            np.concatenate([np.ones(n_pairs), -np.ones(n_pairs)])
        )
        lo_p.append(np.full(n_pairs, -smoothness))
        hi_p.append(np.full(n_pairs, smoothness))
        r += n_pairs
    n_smooth_rows = r - n_range_rows

    # ---- (5)/(10) arrival propagation: each gate owns one optional
    # launch/PI row followed by its fanin-arc rows, in gate order
    own = arrs.is_seq | arrs.has_pi
    arc_src, arc_snk = arrs.arc_src, arrs.arc_snk
    n_arcs = (
        np.bincount(arc_snk, minlength=n).astype(np.int64)
        if arc_snk.size
        else np.zeros(n, dtype=np.int64)
    )
    per_gate = own.astype(np.int64) + n_arcs
    gstart = r + np.cumsum(per_gate) - per_gate
    n_arr_rows = int(per_gate.sum())
    a_ds = arrs.fit_a * ds

    og = np.nonzero(own)[0]
    own_rows = gstart[og]
    rows_p += [own_rows, own_rows]
    cols_p += [grid_k[og], off_arr + og]
    vals_p += [a_ds[og], np.full(og.size, -1.0)]
    if both_layers:
        b_ds = arrs.fit_b * ds
        rows_p.append(own_rows)
        cols_p.append(g + grid_k[og])
        vals_p.append(b_ds[og])

    if arc_snk.size:
        starts = np.cumsum(n_arcs) - n_arcs
        pos_in_gate = np.arange(arc_snk.size, dtype=np.int64) - starts[arc_snk]
        arc_rows = gstart[arc_snk] + own[arc_snk].astype(np.int64) + pos_in_gate
        rows_p += [arc_rows, arc_rows, arc_rows]
        cols_p += [off_arr + arc_src, off_arr + arc_snk, grid_k[arc_snk]]
        vals_p += [
            np.ones(arc_snk.size),
            -np.ones(arc_snk.size),
            a_ds[arc_snk],
        ]
        if both_layers:
            rows_p.append(arc_rows)
            cols_p.append(g + grid_k[arc_snk])
            vals_p.append(b_ds[arc_snk])
    else:
        arc_rows = np.empty(0, dtype=np.int64)

    u_arr = np.empty(n_arr_rows)
    u_arr[own_rows - r] = -arrs.t0[og]
    if arc_snk.size:
        u_arr[arc_rows - r] = -arrs.t0[arc_snk] - arrs.arc_wire
    lo_p.append(np.full(n_arr_rows, -inf))
    hi_p.append(u_arr)
    r += n_arr_rows

    # ---- endpoint constraints: a <= T (PO), a + wire + setup <= T (FF D)
    n_ep = arrs.ep_gid.size
    if n_ep:
        ep_rows = r + np.arange(n_ep, dtype=np.int64)
        rows_p += [ep_rows, ep_rows]
        cols_p += [off_arr + arrs.ep_gid, np.full(n_ep, idx_T, dtype=np.int64)]
        vals_p += [np.ones(n_ep), -np.ones(n_ep)]
        lo_p.append(np.full(n_ep, -inf))
        hi_p.append(arrs.ep_u.copy())
        r += n_ep

    # ---- clock bound row (caller sets tau via formulation.row_clock)
    row_clock = r
    rows_p.append(np.array([row_clock], dtype=np.int64))
    cols_p.append(np.array([idx_T], dtype=np.int64))
    vals_p.append(np.array([1.0]))
    lo_p.append(np.array([-inf]))
    hi_p.append(np.array([inf]))
    r += 1

    A = sp.csc_matrix(
        (
            np.concatenate(vals_p),
            (np.concatenate(rows_p), np.concatenate(cols_p)),
        ),
        shape=(r, n_vars),
    )
    l = np.concatenate(lo_p)
    u = np.concatenate(hi_p)

    # ---- delta-leakage quadratic (2) via bincount scatters (the
    # per-bin accumulation order matches the reference's gate order)
    p_diag = np.zeros(n_vars)
    p_diag[:g] = np.bincount(
        grid_k, weights=2.0 * arrs.alpha * ds * ds, minlength=g
    )[:g]
    q_lin = np.zeros(n_vars)
    q_lin[:g] = np.bincount(grid_k, weights=arrs.beta * ds, minlength=g)[:g]
    if both_layers:
        q_lin[g : 2 * g] = np.bincount(
            grid_k, weights=arrs.gamma * ds, minlength=g
        )[:g]
    P_leak = sp.diags(p_diag, format="csc")

    return Formulation(
        partition=partition,
        both_layers=both_layers,
        n_gates=n,
        A=A,
        l=l,
        u=u,
        P_leak=P_leak,
        q_leak=q_lin,
        idx_T=idx_T,
        row_clock=row_clock,
        gate_grid=gate_grid,
        gate_order=list(arrs.names),
        dose_range=dose_range,
        smoothness=smoothness,
        seam_smoothness=seam_smoothness,
        n_range_rows=n_range_rows,
        n_smooth_rows=n_smooth_rows,
        backend=BACKEND_VECTOR,
    )
