"""Per-cell gate-length biasing baseline (Gupta et al., TCAD 2006).

The paper positions DMopt against gate-length biasing: "Optimization of
gate CDs according to setup or hold timing (non-)criticality has been
used by [4].  What we propose below uses a coarser knob (i.e., the dose
map) ... but has the advantage of not requiring any change to the mask or
OPC flows" (Section I, footnote 2).

This module implements that finer-grained baseline: every *cell instance*
independently receives a gate-length bias from the discrete characterized
variant set (no dose-map grid, no smoothness constraint -- it is a mask
change, not an exposure recipe).  The classic sensitivity-driven greedy of
[4]: repeatedly bias up (lengthen) the instance with the best
leakage-savings-per-timing-cost ratio among those whose slack can absorb
the cost, with golden re-analysis checkpoints.

Comparing its results with DMopt quantifies what the dose map's
equipment constraints cost -- and what skipping a mask respin buys.

The golden re-analysis checkpoints hit ``ctx.analyzer.analyze`` with a
slightly different dose dict each iteration; under the default vector
STA backend those calls re-time incrementally (only the biased cells'
fanout cones are re-propagated), which is what makes the per-cell greedy
affordable at design scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.power import total_leakage


@dataclass
class GLBiasResult:
    """Outcome of per-cell gate-length biasing.

    ``doses`` maps every gate to its (poly-equivalent dose %, 0.0); the
    dose encoding keeps the result directly comparable with dose maps
    (dose -x%  <=>  +2x nm of gate length at Ds = -2 nm/%).
    """

    doses: dict
    mct: float
    leakage: float
    baseline_mct: float
    baseline_leakage: float
    n_biased: int
    passes: int
    runtime: float

    @property
    def mct_improvement_pct(self) -> float:
        return (self.baseline_mct - self.mct) / self.baseline_mct * 100.0

    @property
    def leakage_improvement_pct(self) -> float:
        return (
            (self.baseline_leakage - self.leakage)
            / self.baseline_leakage
            * 100.0
        )


def bias_gate_lengths(
    ctx,
    timing_bound: float = None,
    bias_step: float = -0.5,
    max_bias: float = -5.0,
    max_passes: int = 12,
    slack_guard: float = 0.002,
) -> GLBiasResult:
    """Greedy leakage-driven per-cell gate-length biasing.

    Parameters
    ----------
    ctx:
        A :class:`~repro.core.model.DesignContext`.
    timing_bound:
        Clock bound to preserve (default: baseline MCT).
    bias_step:
        Dose-equivalent bias per move (%, negative = longer gate); the
        default -0.5 % equals +1 nm at Ds = -2.
    max_bias:
        Largest cumulative dose-equivalent bias per cell.
    max_passes:
        Golden re-analysis rounds; each pass biases every cell whose
        slack can absorb the estimated delay cost.
    slack_guard:
        Fraction of the clock bound kept as slack margin so estimation
        error cannot create violations.
    """
    if bias_step >= 0 or max_bias >= 0:
        raise ValueError("biasing lengthens gates: steps must be negative")
    t_start = time.perf_counter()
    nl = ctx.netlist
    lib = ctx.library
    tau = ctx.baseline.mct if timing_bound is None else float(timing_bound)
    guard = slack_guard * tau

    doses = {g: (0.0, 0.0) for g in nl.gates}
    result = ctx.analyzer.analyze(doses=doses, clock_period=tau)
    ds = lib.dose_sensitivity
    passes = 0

    # longest-path gate count through each gate: a move's slack budget is
    # shared by every gate on its worst path, so a pass may only consume
    # slack[g] / depth_through[g] per gate -- conservative, but golden
    # re-analysis between passes restores the unconsumed slack
    order = nl.topological_order(lib)
    is_seq = {g: lib.cell(nl.gates[g].master).is_sequential for g in order}
    lvl_up = {}
    for g in order:
        fanins = [] if is_seq[g] else nl.fanin_gates(g)
        lvl_up[g] = 1 + max((lvl_up[d] for d in fanins), default=0)
    lvl_down = {g: 1 for g in order}
    for g in reversed(order):
        for succ in nl.fanout_gates(g):
            if not is_seq[succ]:
                lvl_down[g] = max(lvl_down[g], 1 + lvl_down[succ])
    depth_through = {g: lvl_up[g] + lvl_down[g] - 1 for g in order}

    for _pass in range(max_passes):
        passes += 1
        moved = 0
        for g in nl.gates:
            cur = doses[g][0]
            if cur <= max_bias:
                continue
            fit = ctx.delay_fit_for(g)
            delay_cost = fit.a * ds * bias_step  # > 0: slower
            if result.slack[g] - guard <= delay_cost * depth_through[g]:
                continue
            doses[g] = (cur + bias_step, 0.0)
            moved += 1
        if moved == 0:
            break
        snapped = {
            g: (lib.snap_dose(dp), 0.0) for g, (dp, _da) in doses.items()
        }
        result = ctx.analyzer.analyze(doses=snapped, clock_period=tau)

    # safety trim: while the bound is violated, un-bias cells that sit on
    # violating paths (negative slack), one step per round
    for _trim in range(20):
        if result.worst_slack >= 0:
            break
        for g in nl.gates:
            if result.slack[g] < 0 and doses[g][0] < 0:
                doses[g] = (min(doses[g][0] - bias_step, 0.0), 0.0)
        snapped = {
            g: (lib.snap_dose(dp), 0.0) for g, (dp, _da) in doses.items()
        }
        result = ctx.analyzer.analyze(doses=snapped, clock_period=tau)

    final_doses = {
        g: (lib.snap_dose(dp), 0.0) for g, (dp, _da) in doses.items()
    }
    final = ctx.analyzer.analyze(doses=final_doses)
    leak = total_leakage(nl, lib, final_doses)
    return GLBiasResult(
        doses=final_doses,
        mct=final.mct,
        leakage=leak,
        baseline_mct=ctx.baseline.mct,
        baseline_leakage=ctx.baseline_leakage,
        n_biased=sum(1 for dp, _da in final_doses.values() if dp < 0),
        passes=passes,
        runtime=time.perf_counter() - t_start,
    )
