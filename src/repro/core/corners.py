"""Corner-aware dose map optimization.

The paper characterizes and optimizes at a single PVT point (TT, nominal
VDD, 25 C).  Production signoff is multi-corner: timing is binding at the
slow corner (SS, low V, hot) while leakage is binding at the fast corner
(FF, high V, hot).  Because the dose map is *one* physical artifact
applied at exposure time, it must satisfy both corners simultaneously.

This module composes the existing machinery: it derives per-corner design
contexts (same netlist + placement, corner-characterized libraries) and
solves the QCP with timing rows built from the slow-corner analysis and
the delta-leakage quadratic fitted at the leakage corner.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

import numpy as np

from repro.core.dmopt import DMoptResult
from repro.core.formulate import build_formulation
from repro.core.model import DesignContext
from repro.core.snap import SNAP_NEAREST, snap_dose_map
from repro.library import CellLibrary
from repro.solver import solve_qcp
from repro.tech import corner_node


def corner_context(ctx: DesignContext, node) -> DesignContext:
    """A sibling context at a PVT corner: same netlist and placement,
    library re-characterized on the corner node."""
    corner_lib = CellLibrary(
        node,
        dose_sensitivity=ctx.library.dose_sensitivity,
        dose_range=ctx.library.dose_range,
    )
    bundle = dataclasses.replace(ctx.bundle, library=corner_lib)
    return DesignContext(
        bundle, placement=ctx.placement, fit_width=ctx.fit_width
    )


@dataclass
class CornerAwareResult:
    """Outcome of the two-corner QCP.

    Timing numbers are at the slow corner; leakage numbers at the
    leakage corner; the dose map is the single shared artifact.
    """

    dose_map_poly: object
    slow_mct: float
    slow_mct_baseline: float
    leak_corner_leakage: float
    leak_corner_baseline: float
    solve: object
    runtime: float

    @property
    def mct_improvement_pct(self) -> float:
        return (
            (self.slow_mct_baseline - self.slow_mct)
            / self.slow_mct_baseline
            * 100.0
        )

    @property
    def leakage_improvement_pct(self) -> float:
        return (
            (self.leak_corner_baseline - self.leak_corner_leakage)
            / self.leak_corner_baseline
            * 100.0
        )


def optimize_dose_map_corners(
    ctx: DesignContext,
    grid_size: float,
    slow=None,
    leaky=None,
    leakage_budget: float = 0.0,
    leakage_guard: float = 0.01,
    **qcp_kwargs,
) -> CornerAwareResult:
    """Minimize slow-corner MCT s.t. a leak-corner leakage budget.

    Parameters
    ----------
    ctx:
        The nominal design context (supplies netlist + placement).
    slow, leaky:
        Corner :class:`~repro.tech.node.TechNode` objects; default to
        SS/0.9 V/125 C and FF/1.1 V/125 C derived from the design's node.
    leakage_budget:
        Allowed leak-corner leakage increase (uW).
    """
    t_start = time.perf_counter()
    node = ctx.library.node
    if slow is None:
        slow = corner_node(node, "SS", vdd_scale=0.9, temperature_c=125.0)
    if leaky is None:
        leaky = corner_node(node, "FF", vdd_scale=1.1, temperature_c=125.0)

    ctx_slow = corner_context(ctx, slow)
    ctx_leak = corner_context(ctx, leaky)

    # timing rows from the slow corner; leakage quadratic from the
    # leakage corner (same grid assignment: shared placement)
    form = build_formulation(ctx_slow, grid_size)
    form_leak = build_formulation(ctx_leak, grid_size)
    assert form.gate_order == form_leak.gate_order

    c = np.zeros(form.n_vars)
    c[form.idx_T] = 1.0
    budget = leakage_budget - leakage_guard * ctx_leak.baseline_leakage
    solve = solve_qcp(
        c,
        form.A,
        form.l,
        form.u,
        form_leak.P_leak,
        form_leak.q_leak,
        s=budget,
        method="ipm",
        **qcp_kwargs,
    )
    poly, _active, _t = form.split(solve.x)
    poly = snap_dose_map(poly, ctx.library, mode=SNAP_NEAREST)

    golden_slow, _ = ctx_slow.golden_eval(poly)
    _res, leak = ctx_leak.golden_eval(poly)
    return CornerAwareResult(
        dose_map_poly=poly,
        slow_mct=golden_slow.mct,
        slow_mct_baseline=ctx_slow.baseline.mct,
        leak_corner_leakage=leak,
        leak_corner_baseline=ctx_leak.baseline_leakage,
        solve=solve,
        runtime=time.perf_counter() - t_start,
    )
