"""Independent certification of DMopt results.

The optimizer's own convergence report is not evidence: it certifies a
*model* (linear delay fits, quadratic leakage) at a *continuous* iterate,
while the deliverable is a snapped dose map whose merit figures come from
golden signoff.  :func:`certify_result` re-verifies a claimed
:class:`~repro.core.dmopt.DMoptResult` against the paper's original
constraint semantics using nothing from the solver:

* **dose_range** -- every snapped grid dose within the correction range
  (paper eq. (3)/(8)), to snap tolerance;
* **smoothness** -- every 8-neighbor (and, when enabled, seam) dose step
  within the smoothness limit (eq. (4)/(9)), to snap tolerance;
* **timing** (QP mode) -- setup timing re-checked by a full STA
  re-analysis at the snapped per-gate doses against the clock bound
  (eq. (6));
* **leakage** (QCP mode) -- exact exponential-model leakage re-checked
  against the budget (eq. (7)), or against the result's *declared*
  leakage when that is higher: the quadratic model's error can exceed
  the compensating ``leakage_guard`` on real designs, and the flow
  reports that overshoot honestly, so only a *silent* overshoot is a
  violation;
* **signoff** -- the recomputed golden MCT/leakage must reproduce the
  numbers the result claims (guards against stale or corrupted results,
  e.g. a checkpoint record from a drifted design).

Tolerances
----------
Snapping moves each grid dose to the characterized 0.5 %-variant grid, so
a snapped map may exceed the *continuous* range/smoothness bounds by up
to one :data:`~repro.library.library.DOSE_STEP`; that slack is the
spec'd behaviour, not a violation.  The timing tolerance equals the
default ``timing_guard`` (0.5 % relative) that DMopt budgets for linear
fit error -- strict against the clock bound, because ceil snapping and
the guard retry keep golden MCT under it by construction.  The leakage
tolerance equals the default ``leakage_guard`` (1 % of baseline)
budgeted for the quadratic model's underestimation of the exponential
(paper footnote 4), measured beyond ``max(budget, declared leakage)``
since the guard compensates for the model error without bounding it.
Signoff consistency is a pure recomputation and gets only
numerical-noise slack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.core.dmopt import MODE_QP
from repro.library.library import DOSE_STEP
from repro.solver.diagnose import (
    FAMILY_DOSE_RANGE,
    FAMILY_SMOOTHNESS,
    FAMILY_TIMING,
)

FAMILY_LEAKAGE = "leakage"
FAMILY_SIGNOFF = "signoff"

#: Absolute slack (dose %) for range/smoothness: one snap step.
TOL_SNAP = DOSE_STEP
#: Relative slack on the QP clock bound (matches default timing_guard).
TOL_TIMING_REL = 0.005
#: Leakage-budget slack as a fraction of baseline leakage (matches
#: default leakage_guard).
TOL_LEAKAGE_REL = 0.01
#: Relative slack for reproducing the claimed golden numbers.
TOL_SIGNOFF_REL = 1e-9


@dataclass
class FamilyCheck:
    """One constraint family's re-verification outcome."""

    family: str
    worst: float  #: worst violation beyond tolerance-free bound (>=0)
    tol: float
    ok: bool
    detail: str = ""

    def __repr__(self):
        mark = "ok" if self.ok else "VIOLATED"
        return (
            f"FamilyCheck({self.family}: {mark}, worst {self.worst:.4g} "
            f"vs tol {self.tol:.4g})"
        )


@dataclass
class CertificateReport:
    """Outcome of independently re-verifying one DMoptResult."""

    ok: bool
    mode: str
    checks: list = field(default_factory=list)
    #: Golden numbers recomputed during certification (full STA + exact
    #: leakage at the snapped doses).
    recomputed_mct: float = float("nan")
    recomputed_leakage: float = float("nan")

    def violations(self) -> list:
        return [c for c in self.checks if not c.ok]

    @property
    def violated_families(self) -> list:
        return [c.family for c in self.violations()]

    def summary(self) -> str:
        if self.ok:
            return (
                f"certified ({self.mode}): all families within tolerance "
                f"(mct {self.recomputed_mct:.4f}, "
                f"leakage {self.recomputed_leakage:.2f})"
            )
        parts = [
            f"{c.family} (worst {c.worst:.4g} > tol {c.tol:.4g}"
            + (f"; {c.detail}" if c.detail else "")
            + ")"
            for c in self.violations()
        ]
        return f"certification FAILED ({self.mode}): " + "; ".join(parts)

    def __repr__(self):
        return f"CertificateReport({self.summary()})"


class CertificationError(AssertionError):
    """A result claimed optimal failed independent re-verification.

    Derives from ``AssertionError``: a failed certificate means an
    internal contract was broken, not that user input was bad.
    """

    def __init__(self, report: CertificateReport, label: str = None):
        self.report = report
        prefix = f"{label}: " if label else ""
        super().__init__(prefix + report.summary())


def _check_dose_range(maps, dose_range: float) -> FamilyCheck:
    worst = 0.0
    where = ""
    for layer_name, dm in maps:
        v = np.asarray(dm.values, dtype=float)
        excess = float(np.max(np.abs(v))) - dose_range
        if excess > worst:
            worst = excess
            i, j = np.unravel_index(int(np.argmax(np.abs(v))), v.shape)
            where = f"{layer_name} grid ({i},{j}) dose {v[i, j]:+.2f}%"
    return FamilyCheck(
        family=FAMILY_DOSE_RANGE,
        worst=max(worst, 0.0),
        tol=TOL_SNAP,
        ok=worst <= TOL_SNAP,
        detail=where,
    )


def _check_smoothness(maps, smoothness: float, seam_pairs) -> FamilyCheck:
    worst = 0.0
    where = ""
    for layer_name, dm in maps:
        part = dm.partition
        v = np.asarray(dm.values, dtype=float)
        pairs = list(part.neighbor_pairs()) + list(seam_pairs)
        for (i1, j1), (i2, j2) in pairs:
            step = abs(v[i1, j1] - v[i2, j2])
            excess = step - smoothness
            if excess > worst:
                worst = excess
                where = (
                    f"{layer_name} ({i1},{j1})-({i2},{j2}) "
                    f"step {step:.2f}%"
                )
    return FamilyCheck(
        family=FAMILY_SMOOTHNESS,
        worst=max(worst, 0.0),
        tol=TOL_SNAP,
        ok=worst <= TOL_SNAP,
        detail=where,
    )


def certify_result(
    ctx,
    res,
    dose_range: float = None,
    smoothness: float = None,
    timing_bound: float = None,
    leakage_budget: float = 0.0,
    seam_smoothness: bool = None,
    attach: bool = True,
) -> CertificateReport:
    """Re-verify a DMoptResult against the original constraint semantics.

    Parameters
    ----------
    ctx:
        The :class:`~repro.core.model.DesignContext` the result came
        from (supplies the golden STA and exact leakage model).
    res:
        The :class:`~repro.core.dmopt.DMoptResult` to certify.
    dose_range, smoothness, seam_smoothness:
        Constraint parameters; default to the result's formulation
        (required explicitly for formulation-free results, e.g. rebuilt
        from a checkpoint).
    timing_bound:
        QP clock bound tau; defaults to the design's baseline MCT -- the
        driver default ("improve leakage without degrading timing").
    leakage_budget:
        QCP allowed leakage *increase* (uW) over baseline; default 0.
    attach:
        Store the report on ``res.certificate``.

    Returns
    -------
    CertificateReport
        ``report.ok`` is the verdict; violations name their constraint
        family.  The caller decides whether to raise (see
        :func:`enforce_certificate`).
    """
    form = res.formulation
    if dose_range is None:
        dose_range = form.dose_range if form is not None else None
    if smoothness is None:
        smoothness = form.smoothness if form is not None else None
    if seam_smoothness is None:
        seam_smoothness = form.seam_smoothness if form is not None else False
    if dose_range is None or smoothness is None:
        raise ValueError(
            "certify_result needs dose_range and smoothness: the result "
            "carries no formulation (resumed from checkpoint?), so pass "
            "them explicitly"
        )

    maps = [("poly", res.dose_map_poly)]
    if res.dose_map_active is not None:
        maps.append(("active", res.dose_map_active))
    seam_pairs = []
    if seam_smoothness:
        from repro.core.formulate import _seam_pairs

        seam_pairs = _seam_pairs(res.dose_map_poly.partition)

    checks = [
        _check_dose_range(maps, float(dose_range)),
        _check_smoothness(maps, float(smoothness), seam_pairs),
    ]

    # independent golden re-analysis: full STA + exact leakage at the
    # snapped doses (snapping is idempotent on an already-snapped map)
    golden, leak = ctx.golden_eval(res.dose_map_poly, res.dose_map_active)
    mct = float(golden.mct)
    leak = float(leak)

    scale_t = max(abs(res.mct), 1e-12)
    scale_l = max(abs(res.leakage), 1e-12)
    signoff_err = max(
        abs(mct - res.mct) / scale_t, abs(leak - res.leakage) / scale_l
    )
    checks.append(
        FamilyCheck(
            family=FAMILY_SIGNOFF,
            worst=signoff_err,
            tol=TOL_SIGNOFF_REL,
            ok=signoff_err <= TOL_SIGNOFF_REL,
            detail=(
                f"claimed mct {res.mct:.6f}/leak {res.leakage:.4f}, "
                f"recomputed {mct:.6f}/{leak:.4f}"
            ),
        )
    )

    if res.mode == MODE_QP:
        tau = (
            float(timing_bound)
            if timing_bound is not None
            else float(res.baseline_mct)
        )
        excess = (mct - tau) / max(tau, 1e-12)
        checks.append(
            FamilyCheck(
                family=FAMILY_TIMING,
                worst=max(excess, 0.0),
                tol=TOL_TIMING_REL,
                ok=excess <= TOL_TIMING_REL,
                detail=f"golden mct {mct:.4f} vs bound {tau:.4f}",
            )
        )
    else:
        budget_abs = float(res.baseline_leakage) + float(leakage_budget)
        # The guard subtracted from the QCP's internal budget is
        # calibrated compensation for the quadratic model's
        # underestimation, not a bound on it: on designs where the model
        # error exceeds the guard, golden leakage legitimately lands
        # over the budget and the result *declares* that in
        # ``res.leakage`` (and the table's leakage columns).  The
        # leakage family therefore catches only *silent* overshoots --
        # recomputed leakage beyond both the budget and the claim; the
        # claim's own integrity is the signoff family's job.
        bound = max(budget_abs, float(res.leakage))
        excess = (leak - bound) / max(abs(res.baseline_leakage), 1e-12)
        detail = f"golden leakage {leak:.2f} vs budget {budget_abs:.2f}"
        if float(res.leakage) > budget_abs:
            detail += f" (declared overshoot {res.leakage:.2f})"
        checks.append(
            FamilyCheck(
                family=FAMILY_LEAKAGE,
                worst=max(excess, 0.0),
                tol=TOL_LEAKAGE_REL,
                ok=excess <= TOL_LEAKAGE_REL,
                detail=detail,
            )
        )

    report = CertificateReport(
        ok=all(c.ok for c in checks),
        mode=res.mode,
        checks=checks,
        recomputed_mct=mct,
        recomputed_leakage=leak,
    )
    telemetry.emit(
        "certify",
        ok=report.ok,
        mode=res.mode,
        families=report.violated_families,
    )
    if attach:
        res.certificate = report
    return report


def enforce_certificate(report: CertificateReport, label: str = None):
    """Raise :class:`CertificationError` when a certificate failed."""
    if not report.ok:
        raise CertificationError(report, label=label)
