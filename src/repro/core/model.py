"""Design context: everything DMopt needs about one placed design.

Bundles the netlist, library, placement, golden STA baseline, leakage
baseline, and the delay/leakage coefficient fitters -- i.e. the "input"
box of the paper's Fig. 8: original dose maps, characterized libraries,
and the input slews / output capacitances of all cells.
"""

from __future__ import annotations

from repro.fitting import DelayFitter, LeakageFitter
from repro.netlist.designs import DesignBundle, make_design
from repro.placement import place_design
from repro.power import total_leakage
from repro.sta import make_analyzer


class DesignContext:
    """An analyzed, placed design ready for dose-map optimization.

    Parameters
    ----------
    bundle:
        A :class:`~repro.netlist.designs.DesignBundle` (or a design name,
        which is generated on the fly).
    placement:
        Optional pre-made placement; by default the design is placed with
        the standard placer.
    fit_width:
        When True, delay/leakage coefficients are fitted over the 2-D
        (dL, dW) variant space (needed for both-layer optimization).
    sta_backend:
        STA engine name ("vector" | "reference"); defaults to the
        session-wide :data:`repro.sta.DEFAULT_STA_BACKEND`.
    """

    def __init__(self, bundle, placement=None, fit_width: bool = False,
                 seed: int = 7, sta_backend: str = None):
        if isinstance(bundle, str):
            bundle = make_design(bundle)
        if not isinstance(bundle, DesignBundle):
            raise TypeError("bundle must be a DesignBundle or design name")
        self.bundle = bundle
        self.netlist = bundle.netlist
        self.library = bundle.library
        if not self.netlist.gates:
            # fail here with a clear message instead of deep inside the
            # STA engine's array assembly
            raise ValueError(
                f"netlist {self.netlist.name!r} has no gates: nothing to "
                "analyze or optimize"
            )
        self.placement = placement if placement is not None else place_design(
            bundle, seed=seed
        )
        self.sta_backend = sta_backend
        self.analyzer = make_analyzer(
            self.netlist, self.library, self.placement, backend=sta_backend
        )
        #: Golden STA at nominal dose.
        self.baseline = self.analyzer.analyze()
        #: Golden total leakage (uW) at nominal dose.
        self.baseline_leakage = total_leakage(self.netlist, self.library)
        self.delay_fitter = DelayFitter(self.library, fit_width=fit_width)
        self.leakage_fitter = LeakageFitter(self.library, fit_width=fit_width)
        self.fit_width = fit_width
        #: Assembled-formulation cache keyed by
        #: (grid_size, both_layers, seam_smoothness); see formulation_for.
        self._formulation_cache: dict = {}

    # ------------------------------------------------------------------
    def formulation_for(self, grid_size: float, both_layers: bool = False,
                        dose_range: float = None, smoothness: float = None,
                        seam_smoothness: bool = False, backend: str = None):
        """A DMopt formulation for this design, cached per structure.

        The constraint matrix ``A`` and leakage quadratic depend only on
        ``(grid_size, both_layers, seam_smoothness)`` -- dose-range and
        smoothness limits live purely in the ``l``/``u`` bound vectors.
        The first call per structure key assembles (see
        :func:`repro.core.formulate.build_formulation`); later calls --
        e.g. the points of a dose-range sweep -- reuse the cached
        matrices and only retarget bounds, so a sweep point costs O(rows)
        instead of a full reassembly.  Retargeted siblings share their
        ``shared`` scratch dict, which lets solvers reuse
        pattern-dependent workspaces across the sweep.
        """
        from repro.constants import DEFAULT_DOSE_RANGE, DEFAULT_SMOOTHNESS
        from repro.core.formulate import build_formulation
        from repro.obs import metrics

        if dose_range is None:
            dose_range = DEFAULT_DOSE_RANGE
        if smoothness is None:
            smoothness = DEFAULT_SMOOTHNESS
        key = (float(grid_size), bool(both_layers), bool(seam_smoothness))
        form = self._formulation_cache.get(key)
        if form is not None and self._formulation_stale(form, grid_size,
                                                        both_layers):
            form = None
        if form is None or (backend is not None and form.backend != backend):
            metrics.inc("formulation.cache_miss")
            form = build_formulation(
                self,
                grid_size,
                both_layers=both_layers,
                dose_range=dose_range,
                smoothness=smoothness,
                seam_smoothness=seam_smoothness,
                backend=backend,
            )
            self._formulation_cache[key] = form
        else:
            metrics.inc("formulation.cache_hit")
        return form.retarget(dose_range=dose_range, smoothness=smoothness)

    def _formulation_stale(self, form, grid_size: float,
                           both_layers: bool) -> bool:
        """Whether a cached formulation no longer matches this design.

        The cache key carries ``grid_size``, but the grid's M x N counts
        derive from the *die* dimensions too: if the placement (and with
        it the die outline) was swapped or resized after the formulation
        was assembled, the cached ``A`` indexes a grid that no longer
        exists.  Same for the layer set (``both_layers`` doubles the
        dose variables).
        """
        from repro.dosemap.grid import GridPartition

        if bool(form.both_layers) != bool(both_layers):
            return True
        die = self.placement.die
        fresh = GridPartition(die.width, die.height, grid_size)
        part = form.partition
        return (part.m, part.n) != (fresh.m, fresh.n) or (
            part.width,
            part.height,
        ) != (fresh.width, fresh.height)

    # ------------------------------------------------------------------
    def delay_fit_for(self, gate_name: str):
        """A_p/B_p fit at the gate's analyzed (slew, load) operating point."""
        master = self.netlist.gate(gate_name).master
        return self.delay_fitter.fit_for(
            master,
            self.baseline.input_slew[gate_name],
            self.baseline.load[gate_name],
        )

    def leakage_fit_for(self, gate_name: str):
        """alpha/beta/gamma fit for the gate's master."""
        return self.leakage_fitter.fit(self.netlist.gate(gate_name).master)

    # ------------------------------------------------------------------
    def gate_doses(self, dose_map_poly, dose_map_active=None, placement=None,
                   snap: bool = True) -> dict:
        """Per-gate (poly %, active %) dose dict from dose maps.

        Doses are snapped to the characterized variant grid by default --
        the paper's rounding step before golden signoff.
        """
        place = placement if placement is not None else self.placement
        doses = {}
        for name in self.netlist.gates:
            dp = dose_map_poly.dose_of_gate(place, name) if dose_map_poly else 0.0
            da = (
                dose_map_active.dose_of_gate(place, name)
                if dose_map_active is not None
                else 0.0
            )
            if snap:
                dp = self.library.snap_dose(dp)
                da = self.library.snap_dose(da)
            doses[name] = (dp, da)
        return doses

    def golden_eval(self, dose_map_poly, dose_map_active=None, placement=None,
                    snap: bool = True):
        """Golden (MCT, total leakage) under dose maps, after snapping.

        Mirrors the paper's signoff: timing from the full STA with
        dose-variant characterized cells, leakage from the exact
        (exponential) device model -- *not* from the optimizer's local
        linear/quadratic approximations.
        """
        doses = self.gate_doses(dose_map_poly, dose_map_active, placement, snap)
        analyzer = self.analyzer_for(placement)
        result = analyzer.analyze(doses=doses)
        leak = total_leakage(self.netlist, self.library, doses)
        return result, leak

    def analyzer_for(self, placement=None):
        """An STA engine bound to ``placement`` (the context's by default).

        With the vector backend the compiled timing graph is shared, so
        binding a trial placement costs only a geometry rebuild.
        """
        if placement is None or placement is self.placement:
            return self.analyzer
        if hasattr(self.analyzer, "rebind"):
            return self.analyzer.rebind(placement)
        return make_analyzer(
            self.netlist, self.library, placement, backend=self.sta_backend
        )

    def trial_timer(self, placement):
        """Incremental trial timer for a mutable candidate placement.

        Returns an analyzer bound to ``placement`` whose cached state
        supports ``update_placement`` + ``trial_mct`` (vector backend),
        or ``None`` when the active backend cannot re-time
        incrementally -- callers then skip per-swap trial filtering.
        """
        eng = self.analyzer_for(placement)
        return eng if hasattr(eng, "trial_mct") else None

    def __repr__(self):
        return (
            f"DesignContext({self.bundle.name!r}, "
            f"MCT={self.baseline.mct:.3f} ns, "
            f"leakage={self.baseline_leakage:.1f} uW)"
        )
