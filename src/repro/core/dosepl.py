"""dosePl: dose-map-aware placement optimization (paper Appendix).

Cell-swapping heuristic (Algorithm 1): swap timing-critical cells into
high-dose regions (where printed gates are shorter and faster) and
non-critical cells into low-dose regions, subject to:

* mutual bounding-box containment (Fig. 9) -- each cell must lie inside
  the other's fanin/fanout bounding box,
* a distance threshold proportional to the gate pitch,
* an HPWL-increase threshold on all incident nets (gamma_3, default 20 %),
* a combined leakage-increase threshold (gamma_4, default 10 %),
* at most gamma_1 swaps per critical path and gamma_5 swaps per round.

After each round the placement is legalized, "ECO routed" (wire parasitics
recomputed from the new geometry) and golden STA decides accept/rollback;
rolled-back cells are marked fixed.  Default 10 rounds, as in the paper.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro import telemetry
from repro.placement import incident_hpwl, legalize
from repro.sta import top_k_paths


@dataclass
class DoseplConfig:
    """Tunables of Algorithm 1 (names follow the paper's gammas)."""

    top_k: int = 1000
    rounds: int = 10
    swaps_per_path: int = 1  # gamma_1
    distance_factor: float = 10.0  # gamma_2 in units of gate pitch
    hpwl_increase_limit: float = 0.20  # gamma_3
    leakage_increase_limit: float = 0.10  # gamma_4
    swaps_per_round: int = 1  # gamma_5
    #: Gate each candidate swap on an incremental trial-STA pass (the
    #: dirty fanout cone only) and keep it only if the trial MCT strictly
    #: improves.  Needs a backend with ``trial_mct`` (the default vector
    #: engine); silently skipped otherwise.
    trial_sta: bool = True
    #: Max trial-STA evaluations per round.  Once spent, remaining
    #: candidates fall back to the static (HPWL/leakage) filters only,
    #: bounding the extra work the filter may do in a round.
    trial_budget: int = 32

    @classmethod
    def aggressive(cls) -> "DoseplConfig":
        """The TCAD version's "improved cell swapping strategy": more
        swaps per round and per path, more rounds.  The golden
        accept/rollback discipline makes extra aggression safe (a bad
        round is discarded wholesale); it simply explores more moves.
        """
        return cls(
            top_k=1500,
            rounds=14,
            swaps_per_path=2,
            swaps_per_round=4,
        )


@dataclass
class DoseplResult:
    """Outcome of the dosePl pass."""

    placement: object
    mct: float
    leakage: float
    baseline_mct: float
    swaps_accepted: int
    swaps_attempted: int
    rounds_run: int
    runtime: float
    history: list = field(default_factory=list)
    #: Candidate swaps discarded by the incremental trial-STA filter.
    swaps_trial_rejected: int = 0

    @property
    def mct_improvement_pct(self) -> float:
        return (self.baseline_mct - self.mct) / self.baseline_mct * 100.0


def _path_weights(paths, period: float) -> dict:
    """W(cell) = sum over critical paths through it of exp(-slack), eq. (13)."""
    weights: dict = {}
    for p in paths:
        w = math.exp(-(period - p.delay))
        for gate in p.gates:
            weights[gate] = weights.get(gate, 0.0) + w
    return weights


def _cell_leakage(ctx, gate_name: str, dose: float) -> float:
    master = ctx.netlist.gate(gate_name).master
    return ctx.library.characterized(
        master, ctx.library.snap_dose(dose), 0.0
    ).leakage_uw


def _try_round(
    ctx, dose_map, trial, result, cfg, fixed, stats,
    timer=None, doses=None, trial_best=None,
):
    """One round of cell swapping, applied to ``trial`` in place.

    ``timer``/``doses``/``trial_best`` are the persistent incremental
    trial-STA state owned by :func:`run_dosepl` (hoisted out of the
    round so the engine's compiled geometry survives across rounds):
    after each candidate swap only the dirty fanout cone is re-timed,
    and the move is kept only if the trial MCT strictly improves --
    O(cone) per candidate instead of a full golden pass per round spent
    on a doomed swap.

    Returns ``(swaps_done, trial_best)``; rejected candidates are undone
    in place, so ``trial`` holds exactly the accepted swaps.
    """
    nl = ctx.netlist
    partition = dose_map.partition
    paths = top_k_paths(nl, ctx.library, result, cfg.top_k)
    if not paths:
        return 0, trial_best
    weights = _path_weights(paths, result.mct)
    critical_cells = set(weights)
    pitch = trial.gate_pitch()
    max_dist = cfg.distance_factor * pitch

    swaps_done = 0
    n_swapped_on_path: dict = {}
    trials_left = cfg.trial_budget

    # paths arrive most-critical first from top_k_paths
    for p_idx, path in enumerate(paths):
        if swaps_done >= cfg.swaps_per_round:
            break
        if n_swapped_on_path.get(p_idx, 0) >= cfg.swaps_per_path:
            continue
        cells = sorted(path.gates, key=lambda g: -weights.get(g, 0.0))
        for cell in cells:
            if cell in fixed or swaps_done >= cfg.swaps_per_round:
                continue
            dose_cell = dose_map.dose_of_gate(trial, cell)
            box = trial.neighborhood_bbox(cell, nl)
            # grids intersecting the bbox, sorted by dose descending
            i0, j0 = partition.grid_of(box[0], box[1])
            i1, j1 = partition.grid_of(box[2], box[3])
            grids = [
                (float(dose_map.values[i, j]), i, j)
                for i in range(i0, i1 + 1)
                for j in range(j0, j1 + 1)
            ]
            grids.sort(reverse=True)
            swapped = False
            for g_dose, gi, gj in grids:
                if g_dose <= dose_cell:
                    break  # no higher-dose grid available in the bbox
                x0 = gj * partition.cell_width
                y0 = gi * partition.cell_height
                candidates = [
                    c
                    for c in trial.cells_in_region(
                        x0, y0, x0 + partition.cell_width,
                        y0 + partition.cell_height,
                    )
                    if c not in critical_cells and c not in fixed and c != cell
                ]
                candidates.sort(key=lambda c: trial.distance(cell, c))
                for cand in candidates:
                    stats["attempted"] += 1
                    if trial.distance(cell, cand) > max_dist:
                        break  # sorted by distance: the rest are farther
                    box_cand = trial.neighborhood_bbox(cand, nl)
                    if not (
                        trial.in_box(cand, box) and trial.in_box(cell, box_cand)
                    ):
                        continue
                    # HPWL filter on both cells' incident nets
                    h_cell = incident_hpwl(nl, trial, cell)
                    h_cand = incident_hpwl(nl, trial, cand)
                    trial.swap(cell, cand)
                    h_cell_new = incident_hpwl(nl, trial, cell)
                    h_cand_new = incident_hpwl(nl, trial, cand)
                    limit = 1.0 + cfg.hpwl_increase_limit
                    if (
                        h_cell_new > limit * max(h_cell, 1e-9)
                        or h_cand_new > limit * max(h_cand, 1e-9)
                    ):
                        trial.swap(cell, cand)  # undo
                        continue
                    # leakage filter: combined leakage at the new doses
                    d_cell_new = dose_map.dose_of_gate(trial, cell)
                    d_cand_new = dose_map.dose_of_gate(trial, cand)
                    leak_before = _cell_leakage(ctx, cell, dose_cell)
                    leak_before += _cell_leakage(
                        ctx, cand, d_cell_new  # cand previously sat there
                    )
                    leak_after = _cell_leakage(ctx, cell, d_cell_new)
                    leak_after += _cell_leakage(ctx, cand, d_cand_new)
                    if (
                        leak_after - leak_before
                        > cfg.leakage_increase_limit * leak_before
                    ):
                        trial.swap(cell, cand)  # undo
                        continue
                    # incremental trial-STA filter
                    if timer is not None and trials_left > 0:
                        trials_left -= 1
                        upd = {
                            cell: (ctx.library.snap_dose(d_cell_new), 0.0),
                            cand: (ctx.library.snap_dose(d_cand_new), 0.0),
                        }
                        timer.update_placement((cell, cand))
                        m = timer.trial_mct(upd)
                        if m >= trial_best - 1e-12:
                            trial.swap(cell, cand)  # undo
                            timer.update_placement((cell, cand))
                            timer.trial_mct(
                                {cell: doses[cell], cand: doses[cand]}
                            )
                            stats["trial_rejected"] += 1
                            # The closest statically-feasible partner in
                            # this grid doesn't improve MCT; move on to
                            # the next grid rather than burning trials
                            # on farther siblings.
                            break
                        trial_best = m
                        doses[cell], doses[cand] = upd[cell], upd[cand]
                    swaps_done += 1
                    n_swapped_on_path[p_idx] = n_swapped_on_path.get(p_idx, 0) + 1
                    stats["swapped_cells"].update((cell, cand))
                    swapped = True
                    break
                if swapped:
                    break
            if swapped:
                break

    return swaps_done, trial_best


def _resync_trial_state(ctx, dose_map, work, target, timer, doses):
    """Make ``work`` (and the hoisted trial timer) match ``target``.

    Used after every round: on accept, ``target`` is the legalized
    placement (cells shifted by legalization); on rollback it is the
    previous accepted placement (the round's swaps must be undone).
    Only cells whose position differs are moved and re-timed, so the
    incremental engine state stays warm across rounds.

    Returns the trial MCT at the resynced state (None without a timer).
    """
    moved = [
        name
        for name, loc in target.items()
        if work.location(name) != loc
    ]
    for name in moved:
        x, y = target.location(name)
        work.place(name, x, y)
    if timer is None:
        return None
    if not moved:
        return timer.trial_mct({})
    timer.update_placement(moved)
    upd = {}
    for name in moved:
        dp = ctx.library.snap_dose(dose_map.dose_of_gate(work, name))
        upd[name] = (dp, 0.0)
        doses[name] = upd[name]
    return timer.trial_mct(upd)


def run_dosepl(ctx, dose_map, placement=None, config: DoseplConfig = None):
    """Run the dosePl pass on top of an optimized dose map.

    Parameters
    ----------
    ctx:
        The design context (provides netlist, library, golden analysis).
    dose_map:
        The poly-layer :class:`~repro.dosemap.DoseMap` from DMopt.
    placement:
        Starting placement; defaults to the context's placement.
    config:
        :class:`DoseplConfig` overrides.

    Returns
    -------
    DoseplResult
    """
    cfg = config or DoseplConfig()
    t_start = time.perf_counter()
    place = (placement or ctx.placement).copy()

    golden, leak = ctx.golden_eval(dose_map, placement=place)
    best_mct, best_leak = golden.mct, leak
    baseline_mct = best_mct
    fixed: set = set()
    stats = {"attempted": 0, "trial_rejected": 0, "swapped_cells": set()}
    accepted = 0
    history = [(0, best_mct, best_leak)]

    # Persistent work placement + incremental trial timer, hoisted out
    # of the per-round loop: the engine's compiled geometry and timing
    # state survive across rounds and are resynced by position diff on
    # accept/rollback instead of being rebuilt from scratch.
    work = place.copy()
    timer = ctx.trial_timer(work) if cfg.trial_sta else None
    doses = None
    work_mct = None
    if timer is not None:
        doses = ctx.gate_doses(dose_map, placement=work)
        work_mct = timer.mct(doses)

    for rnd in range(1, cfg.rounds + 1):
        swaps_done, work_mct = _try_round(
            ctx, dose_map, work, golden, cfg, fixed, stats,
            timer=timer, doses=doses, trial_best=work_mct,
        )
        if swaps_done == 0:
            history.append((rnd, best_mct, best_leak))
            telemetry.emit("dosepl_round", round=rnd, swaps=0,
                           accepted=False, mct=best_mct)
            continue
        # legalize + "ECO route": parasitics recomputed from new geometry
        trial = legalize(work, ctx.netlist, ctx.library)
        trial_res, trial_leak = ctx.golden_eval(
            dose_map, placement=trial
        )
        round_accepted = trial_res.mct < best_mct - 1e-12
        if round_accepted:
            place, golden = trial, trial_res
            best_mct, best_leak = trial_res.mct, trial_leak
            accepted += 1
        else:
            # rollback: mark the cells involved as fixed
            fixed.update(stats["swapped_cells"])
        stats["swapped_cells"] = set()
        work_mct = _resync_trial_state(
            ctx, dose_map, work, place, timer, doses
        )
        history.append((rnd, best_mct, best_leak))
        telemetry.emit("dosepl_round", round=rnd, swaps=swaps_done,
                       accepted=round_accepted, mct=best_mct)

    telemetry.emit(
        "dosepl",
        rounds_run=cfg.rounds,
        swaps_accepted=accepted,
        swaps_attempted=stats["attempted"],
        trial_rejected=stats["trial_rejected"],
        mct=best_mct,
        baseline_mct=baseline_mct,
        seconds=time.perf_counter() - t_start,
    )
    return DoseplResult(
        placement=place,
        mct=best_mct,
        leakage=best_leak,
        baseline_mct=baseline_mct,
        swaps_accepted=accepted,
        swaps_attempted=stats["attempted"],
        rounds_run=cfg.rounds,
        runtime=time.perf_counter() - t_start,
        history=history,
        swaps_trial_rejected=stats["trial_rejected"],
    )
