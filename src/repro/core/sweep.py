"""Uniform dose sweeps and the biased-critical-paths experiment.

* :func:`uniform_dose_sweep` reproduces Tables II/III: apply the same
  poly-layer delta dose to every cell and record golden MCT and leakage.
  It demonstrates the paper's motivating observation: "Uniform dose change
  in all the cell instances cannot obtain timing yield improvement without
  leakage power increase."

* :func:`bias_critical_paths` reproduces the "Bias" series of Fig. 10:
  force the maximum dose (+5 %) on every gate of the top-K critical paths
  to expose the optimization headroom (at an untenable leakage cost).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.power import total_leakage
from repro.sta import top_k_paths


@dataclass(frozen=True)
class SweepPoint:
    """One row of a Table II/III-style sweep."""

    dose: float
    mct: float
    mct_improvement_pct: float
    leakage: float
    leakage_improvement_pct: float


def uniform_dose_sweep(ctx, doses=None) -> list:
    """Sweep a uniform poly-layer dose over the whole chip.

    Parameters
    ----------
    ctx:
        A :class:`~repro.core.model.DesignContext`.
    doses:
        Dose values (%) to evaluate; defaults to the paper's grid
        -5 .. +5 in 0.5 steps (21 points).

    Returns
    -------
    list of :class:`SweepPoint`, in the order given.
    """
    if doses is None:
        doses = ctx.library.variant_doses()
    base_mct = ctx.baseline.mct
    base_leak = ctx.baseline_leakage
    points = []
    for d in doses:
        d = float(d)
        gate_doses = {g: (d, 0.0) for g in ctx.netlist.gates}
        res = ctx.analyzer.analyze(doses=gate_doses)
        leak = total_leakage(ctx.netlist, ctx.library, gate_doses)
        points.append(
            SweepPoint(
                dose=d,
                mct=res.mct,
                mct_improvement_pct=(base_mct - res.mct) / base_mct * 100.0,
                leakage=leak,
                leakage_improvement_pct=(base_leak - leak) / base_leak * 100.0,
            )
        )
    return points


def bias_critical_paths(ctx, k: int = 1000, dose: float = None):
    """Force max dose on all gates of the top-K critical paths (Fig. 10 "Bias").

    Returns
    -------
    (timing result, total leakage, gate dose dict)
    """
    if dose is None:
        dose = ctx.library.dose_range
    paths = top_k_paths(ctx.netlist, ctx.library, ctx.baseline, k)
    boosted = set()
    for p in paths:
        boosted.update(p.gates)
    gate_doses = {
        g: (float(dose), 0.0) if g in boosted else (0.0, 0.0)
        for g in ctx.netlist.gates
    }
    res = ctx.analyzer.analyze(doses=gate_doses)
    leak = total_leakage(ctx.netlist, ctx.library, gate_doses)
    return res, leak, gate_doses


def slack_profile(result, n_bins: int = 40, lo: float = None, hi: float = None):
    """Histogram of endpoint slacks (Fig. 10's x-axis is slack).

    Returns (bin_edges, counts) over endpoint slack = MCT_ref - arrival.
    The caller supplies a common reference period via ``result`` slacks.
    """
    slacks = np.array(sorted(result.slack.values()))
    if lo is None:
        lo = float(slacks.min())
    if hi is None:
        hi = float(slacks.max())
    counts, edges = np.histogram(slacks, bins=n_bins, range=(lo, hi))
    return edges, counts


def dmopt_dose_range_sweep(
    ctx,
    grid_size: float,
    dose_ranges,
    mode: str = "qcp",
    warm_start: bool = True,
    checkpoint=None,
    resume: bool = True,
    **dmopt_kwargs,
) -> list:
    """Run DMopt at each dose-range limit, warm-starting along the sweep.

    All points share one cached formulation (``ctx.formulation_for``
    only retargets the range/smoothness bounds between points) and, with
    ``warm_start=True`` (default), each solve is seeded from the
    previous point's solution and multiplier -- typically a large cut in
    solver iterations (see ``BENCH_dmopt.json``) with golden signoff
    numbers unchanged, since warm starting only changes the inner
    solver's starting iterate, not the optimum.

    Parameters
    ----------
    checkpoint:
        Optional path to a JSONL checkpoint file; each converged point
        is appended (fsync'd) under a content hash of (design
        fingerprint, grid, mode, dose range, kwargs).  With ``resume``
        (default) already-present points are rebuilt from the file (a
        ``checkpoint_hit`` telemetry event each) instead of re-solved.
        A resumed point carries no solver iterate, so the next solve
        cold-starts -- the poisonous-seed rule -- which is safe because
        golden numbers are warm/cold invariant.
    resume:
        When False an existing checkpoint file is truncated first.

    Returns the list of :class:`~repro.core.dmopt.DMoptResult` in
    ``dose_ranges`` order.
    """
    from repro import obs, telemetry
    from repro.core.dmopt import optimize_dose_map
    from repro.obs import metrics
    from repro.resilience.checkpoint import (
        CheckpointStore,
        dmopt_result_from_payload,
        dmopt_result_payload,
        sweep_point_key,
    )

    store = (
        CheckpointStore(checkpoint, resume=resume)
        if checkpoint is not None
        else None
    )
    results = []
    prev = None
    with obs.span("sweep.dose_range", mode=mode, grid=float(grid_size),
                  n_points=len(list(dose_ranges))):
        for dose_range in dose_ranges:
            key = None
            if store is not None:
                key = sweep_point_key(
                    ctx, grid_size, mode, float(dose_range), warm_start,
                    dmopt_kwargs,
                )
                payload = store.get(key)
                if payload is not None:
                    res = dmopt_result_from_payload(payload)
                    metrics.inc("checkpoint.hits")
                    telemetry.emit("checkpoint_hit", key=key)
                    results.append(res)
                    # no iterate to seed from: the next point starts cold
                    prev = None
                    continue
            # a failed neighbor is a poisonous seed: fall back to cold
            seed = (
                prev.solve
                if (warm_start and prev is not None and prev.ok)
                else None
            )
            with obs.span("sweep.point", dose_range=float(dose_range)):
                res = optimize_dose_map(
                    ctx,
                    grid_size,
                    mode=mode,
                    dose_range=float(dose_range),
                    warm_start=seed,
                    **dmopt_kwargs,
                )
            telemetry.emit(
                "sweep_point",
                dose_range=float(dose_range),
                status=res.status,
                mct=res.mct,
                leakage=res.leakage,
                warm=seed is not None,
            )
            if store is not None and res.ok:
                # failed points are not recorded: a failure may be
                # environmental (chaos, time budget) and must re-run
                store.put(key, dmopt_result_payload(res), kind="sweep_point")
            results.append(res)
            prev = res
    if store is not None:
        store.close()
    return results
