"""Timing-leakage trade-off (Pareto) exploration.

The paper's two formulations are dual views of one trade-off: QP walks it
from the leakage side (fix timing, minimize leakage) and QCP from the
timing side (fix leakage, minimize clock period).  This module sweeps the
budgets to trace the achievable (MCT, leakage) frontier of a design under
the equipment constraints -- the curve a designer would use to pick an
operating point (e.g. "how much cycle time can 5 % more leakage buy?").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dmopt import optimize_dose_map


@dataclass(frozen=True)
class ParetoPoint:
    """One frontier point (golden-signoff values)."""

    budget_pct: float
    mct: float
    leakage: float
    mct_improvement_pct: float
    leakage_improvement_pct: float


def tradeoff_curve(
    ctx,
    grid_size: float,
    budgets_pct=(-10.0, -5.0, 0.0, 5.0, 10.0, 20.0),
    **dmopt_kwargs,
) -> list:
    """Trace the MCT-vs-leakage frontier by sweeping the QCP budget.

    Parameters
    ----------
    budgets_pct:
        Allowed leakage change as a percentage of baseline leakage;
        negative values demand leakage *reduction* while still minimizing
        the clock period.

    Returns
    -------
    list of :class:`ParetoPoint`, in budget order.
    """
    points = []
    for budget in budgets_pct:
        res = optimize_dose_map(
            ctx,
            grid_size,
            mode="qcp",
            leakage_budget=budget / 100.0 * ctx.baseline_leakage,
            **dmopt_kwargs,
        )
        points.append(
            ParetoPoint(
                budget_pct=float(budget),
                mct=res.mct,
                leakage=res.leakage,
                mct_improvement_pct=res.mct_improvement_pct,
                leakage_improvement_pct=res.leakage_improvement_pct,
            )
        )
    return points


def is_frontier_monotone(points, tol: float = 1e-3) -> bool:
    """Whether looser leakage budgets never yield worse MCT (within tol).

    A sanity property of a correct trade-off sweep: the feasible sets are
    nested, so the optimal MCT is non-increasing in the budget.
    """
    mcts = [p.mct for p in points]
    return all(b <= a + tol for a, b in zip(mcts, mcts[1:]))


def knee_point(points) -> ParetoPoint:
    """The frontier knee: maximum distance from the chord between the
    endpoints (a standard operating-point heuristic)."""
    if len(points) < 3:
        raise ValueError("need at least three points to find a knee")
    x = np.array([p.leakage for p in points])
    y = np.array([p.mct for p in points])
    x0, y0, x1, y1 = x[0], y[0], x[-1], y[-1]
    span = np.hypot(x1 - x0, y1 - y0)
    if span == 0:
        return points[0]
    dist = np.abs((x1 - x0) * (y0 - y) - (x0 - x) * (y1 - y0)) / span
    return points[int(np.argmax(dist))]
