"""Core: the paper's dose map + placement co-optimization."""

from repro.core.certify import (
    CertificateReport,
    CertificationError,
    certify_result,
    enforce_certificate,
)
from repro.core.dmopt import DMoptResult, MODE_QCP, MODE_QP, optimize_dose_map
from repro.core.dosepl import DoseplConfig, DoseplResult, run_dosepl
from repro.core.flow import FlowResult, run_flow
from repro.core.formulate import (
    DEFAULT_FORMULATE_BACKEND,
    Formulation,
    build_formulation,
    resolve_formulate_backend,
)
from repro.core.corners import (
    CornerAwareResult,
    corner_context,
    optimize_dose_map_corners,
)
from repro.core.glbias import GLBiasResult, bias_gate_lengths
from repro.core.model import DesignContext
from repro.core.pareto import (
    ParetoPoint,
    is_frontier_monotone,
    knee_point,
    tradeoff_curve,
)
from repro.core.snap import snap_dose_map
from repro.core.sweep import (
    SweepPoint,
    bias_critical_paths,
    dmopt_dose_range_sweep,
    slack_profile,
    uniform_dose_sweep,
)

__all__ = [
    "DesignContext",
    "CertificateReport",
    "CertificationError",
    "certify_result",
    "enforce_certificate",
    "Formulation",
    "build_formulation",
    "resolve_formulate_backend",
    "DEFAULT_FORMULATE_BACKEND",
    "optimize_dose_map",
    "DMoptResult",
    "MODE_QP",
    "MODE_QCP",
    "snap_dose_map",
    "run_dosepl",
    "DoseplConfig",
    "DoseplResult",
    "run_flow",
    "FlowResult",
    "uniform_dose_sweep",
    "dmopt_dose_range_sweep",
    "SweepPoint",
    "bias_critical_paths",
    "slack_profile",
    "tradeoff_curve",
    "ParetoPoint",
    "is_frontier_monotone",
    "knee_point",
    "bias_gate_lengths",
    "GLBiasResult",
    "corner_context",
    "optimize_dose_map_corners",
    "CornerAwareResult",
]
