"""Dose snapping: continuous optimizer output -> manufacturable variants.

The paper: "it is possible that the computed values do not exactly match
the available drive strengths of the cell masters in the characterized
cell libraries.  Thus, a rounding step is needed to snap the computed gate
lengths and widths to the cell masters with nearest drive strengths"
(Section IV-A footnote).  Our characterized variant grid has 0.5 % dose
steps; snapping happens per dose grid.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dosemap import DoseMap
from repro.library.library import DOSE_STEP

SNAP_NEAREST = "nearest"
SNAP_CEIL = "ceil"
SNAP_FLOOR = "floor"


def snap_dose_map(dose_map: DoseMap, library, mode: str = SNAP_NEAREST) -> DoseMap:
    """Snap every grid's dose to the library's characterized variant grid.

    Modes:

    * ``nearest`` -- round to the closest variant (minimum CD error).
    * ``ceil`` -- round *up* (more dose -> shorter gate -> never slower
      than the continuous solution; used after timing-constrained
      optimization so snapping cannot break the clock bound, at a small
      leakage cost).
    * ``floor`` -- round *down* (never leakier than the continuous
      solution).
    """
    if mode == SNAP_NEAREST:
        snapped = np.vectorize(library.snap_dose)(dose_map.values)
    elif mode in (SNAP_CEIL, SNAP_FLOOR):
        rounder = math.ceil if mode == SNAP_CEIL else math.floor

        def snap_one(d):
            d = min(max(float(d), -library.dose_range), library.dose_range)
            # deadband: do not let directional rounding amplify solver
            # noise (|d| ~ 1e-9) into a whole dose step
            steps = d / DOSE_STEP
            if abs(steps - round(steps)) < 1e-6:
                steps = round(steps)
            else:
                steps = rounder(steps)
            return min(
                max(steps * DOSE_STEP, -library.dose_range),
                library.dose_range,
            )

        snapped = np.vectorize(snap_one)(dose_map.values)
    else:
        raise ValueError(f"unknown snap mode {mode!r}")
    return DoseMap(dose_map.partition, dose_map.layer, snapped)
