"""DMopt: design-aware dose map optimization (the paper's core method).

Two driver modes, matching Section III:

* ``mode="qp"`` -- *minimize delta-leakage subject to a clock bound*
  (Section III-A-1 / III-B-1): quadratic objective, all-linear
  constraints, solved by :func:`repro.solver.qp.solve_qp`.
* ``mode="qcp"`` -- *minimize clock period subject to a leakage budget*
  (Section III-A-2 / III-B-2): linear objective plus the quadratic
  delta-leakage constraint, solved by :func:`repro.solver.qcp.solve_qcp`.

Both return golden-signoff numbers: the continuous dose solution is
snapped to the characterized 0.5 %-step variant grid and re-evaluated
with the full STA and the exact leakage model.  Signoff goes through
``ctx.golden_eval``, i.e. the context's configured STA backend -- the
compiled vector engine by default (see :mod:`repro.sta.compiled`).
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass

import numpy as np

from repro import obs, telemetry
from repro.constants import DEFAULT_DOSE_RANGE, DEFAULT_SMOOTHNESS
from repro.core.formulate import Formulation, build_formulation
from repro.core.snap import SNAP_CEIL, SNAP_NEAREST, snap_dose_map
from repro.solver import (
    METHOD_IPM,
    InfeasibilityReport,
    SolveResult,
    diagnose_infeasibility,
    solve_qcp,
    solve_qp_robust,
)

MODE_QP = "qp"
MODE_QCP = "qcp"


def _warm_state(solve: SolveResult) -> dict:
    """Solver warm-start dict from a previous result (None passthrough)."""
    if solve is None:
        return None
    state = {"x": solve.x}
    for key in ("z", "y"):
        val = solve.info.get(key)
        if val is not None:
            state[key] = val
    return state


@dataclass
class DMoptResult:
    """Outcome of one dose-map optimization.

    Golden numbers (``mct``, ``leakage``) come from signoff re-analysis
    with snapped doses; ``predicted_*`` are the optimizer's own model
    values at the continuous solution (useful to study approximation
    error, e.g. the paper's Table V JPEG-65 anomaly).
    """

    mode: str
    dose_map_poly: object
    dose_map_active: object
    mct: float
    leakage: float
    baseline_mct: float
    baseline_leakage: float
    predicted_T: float
    predicted_delta_leakage: float
    solve: SolveResult
    formulation: Formulation
    runtime: float
    infeasibility: InfeasibilityReport = None
    #: Filled by :func:`repro.core.certify.certify_result` when the
    #: result has been independently re-verified.
    certificate: object = None

    @property
    def ok(self) -> bool:
        """Whether the solve converged and the dose maps are usable."""
        return self.solve.ok

    @property
    def status(self) -> str:
        return self.solve.status

    @property
    def mct_improvement_pct(self) -> float:
        return (self.baseline_mct - self.mct) / self.baseline_mct * 100.0

    @property
    def leakage_improvement_pct(self) -> float:
        return (
            (self.baseline_leakage - self.leakage) / self.baseline_leakage * 100.0
        )

    def __repr__(self):
        if not self.ok:
            detail = (
                self.infeasibility.summary()
                if self.infeasibility is not None
                else self.solve.info.get("note", "")
            )
            return f"DMoptResult({self.mode}, {self.status}: {detail})"
        return (
            f"DMoptResult({self.mode}, MCT {self.baseline_mct:.3f}->"
            f"{self.mct:.3f} ns ({self.mct_improvement_pct:+.2f}%), leakage "
            f"{self.baseline_leakage:.1f}->{self.leakage:.1f} uW "
            f"({self.leakage_improvement_pct:+.2f}%))"
        )


def _spanned(fn):
    """Run a DMopt call under a ``dmopt`` tracing span (no-op when off).

    The span carries the design / grid / mode attributes and, on the
    way out, the solve status -- so a run manifest shows one ``dmopt``
    node per optimization with ``dmopt.solve`` / ``dmopt.signoff`` /
    ``dmopt.diagnose`` children.
    """

    @functools.wraps(fn)
    def wrapper(ctx, grid_size, *args, **kwargs):
        if not telemetry.enabled():
            return fn(ctx, grid_size, *args, **kwargs)
        mode = kwargs.get("mode", args[0] if args else MODE_QCP)
        with obs.span(
            "dmopt",
            design=getattr(getattr(ctx, "bundle", None), "name", None),
            grid=float(grid_size),
            mode=mode,
        ) as sp:
            res = fn(ctx, grid_size, *args, **kwargs)
            if sp is not None:
                sp["status"] = res.status
            return res

    return wrapper


@_spanned
def optimize_dose_map(
    ctx,
    grid_size: float,
    mode: str = MODE_QCP,
    both_layers: bool = False,
    dose_range: float = DEFAULT_DOSE_RANGE,
    smoothness: float = DEFAULT_SMOOTHNESS,
    seam_smoothness: bool = False,
    timing_bound: float = None,
    timing_guard: float = 0.005,
    leakage_budget: float = 0.0,
    leakage_guard: float = 0.01,
    method: str = METHOD_IPM,
    snap_mode: str = None,
    qp_kwargs: dict = None,
    warm_start: SolveResult = None,
    time_limit: float = None,
) -> DMoptResult:
    """Run DMopt on a design context.

    Parameters
    ----------
    ctx:
        A :class:`~repro.core.model.DesignContext`.
    grid_size:
        Grid edge ``G`` in um.
    mode:
        ``"qp"`` (min leakage s.t. timing) or ``"qcp"`` (min T s.t.
        leakage).
    both_layers:
        Optimize poly and active doses simultaneously (gate length and
        width modulation).
    timing_bound:
        tau for QP mode; defaults to the design's baseline MCT tightened
        by ``timing_guard`` ("improve leakage without degrading timing",
        the Table IV/VI setting).
    timing_guard:
        Relative guard band subtracted from the default tau so that the
        linear delay-fit error and dose snapping cannot push golden MCT
        past the baseline.  Ignored when ``timing_bound`` is given.  On
        coarse grids a forced speed-up can cost more leakage than the
        dose map recovers; when golden signoff detects that, the QP is
        re-solved once without the guard (signoff-driven iteration, in
        the spirit of the paper's Fig. 7 loop).
    leakage_budget:
        xi for QCP mode: allowed *increase* in total leakage (uW);
        defaults to 0 ("improve timing without leakage increase", the
        Table IV/V setting).
    leakage_guard:
        Fraction of baseline leakage subtracted from the internal QCP
        budget to absorb the quadratic leakage model's underestimation
        of the true exponential (paper footnote 4) plus snap error, so
        golden leakage lands at or under the requested budget.
    method:
        Inner solver backend: ``"ipm"`` (default; fast interior point)
        or ``"admm"`` (the OSQP-style first-order method).
    snap_mode:
        How continuous doses are rounded to characterized variants.
        Defaults per mode: ``"ceil"`` for QP (snapping can only speed
        gates up, so the clock bound survives signoff) and ``"nearest"``
        for QCP (minimum leakage-model error around the budget).
    warm_start:
        Optional :class:`~repro.solver.SolveResult` of a structurally
        identical solve (an adjacent sweep point): its primal/dual state
        seeds the inner solver and, for QCP, its multiplier seeds the
        bisection bracket.
    time_limit:
        Optional wall-clock budget in seconds for *all* solver work in
        this call (fallback chain, QCP root search, guard retry).  On
        expiry the best iterate so far is signed off (or the failure
        path taken); the call never spins indefinitely.
    """
    if mode not in (MODE_QP, MODE_QCP):
        raise ValueError(f"mode must be 'qp' or 'qcp', got {mode!r}")
    if snap_mode is None:
        snap_mode = SNAP_CEIL if mode == MODE_QP else SNAP_NEAREST
    t_start = time.perf_counter()
    if hasattr(ctx, "formulation_for"):
        form = ctx.formulation_for(
            grid_size,
            both_layers=both_layers,
            dose_range=dose_range,
            smoothness=smoothness,
            seam_smoothness=seam_smoothness,
        )
    else:
        form = build_formulation(
            ctx,
            grid_size,
            both_layers=both_layers,
            dose_range=dose_range,
            smoothness=smoothness,
            seam_smoothness=seam_smoothness,
        )
    qp_kwargs = dict(qp_kwargs or {})
    # pattern workspaces survive in the formulation's shared dict, so
    # retargeted sweep siblings keep reusing them; QP and QCP rows have
    # different finiteness masks, hence separate slots
    solver_ws = form.shared.setdefault(("ipm_ws", mode), {})
    solve_deadline = (
        t_start + float(time_limit) if time_limit is not None else None
    )

    def _budget_left():
        """Remaining solver budget in seconds (None = unlimited)."""
        if solve_deadline is None:
            return None
        return max(solve_deadline - time.perf_counter(), 1e-3)

    def _solve_and_sign_off(tau, warm):
        with obs.span("dmopt.solve", mode=mode):
            if mode == MODE_QP:
                u = form.u.copy()
                u[form.row_clock] = tau
                solve = solve_qp_robust(
                    form.P_leak,
                    form.q_leak,
                    form.A,
                    form.l,
                    u,
                    method=method,
                    qp_kwargs=qp_kwargs,
                    warm=_warm_state(warm),
                    workspace=solver_ws,
                    time_limit=_budget_left(),
                )
            else:
                c = np.zeros(form.n_vars)
                c[form.idx_T] = 1.0
                budget = (
                    float(leakage_budget) - leakage_guard * ctx.baseline_leakage
                )
                solve = solve_qcp(
                    c,
                    form.A,
                    form.l,
                    form.u,
                    form.P_leak,
                    form.q_leak,
                    s=budget,
                    method=method,
                    qp_kwargs=qp_kwargs,
                    warm=_warm_state(warm),
                    lam_hint=warm.info.get("lam") if warm is not None else None,
                    workspace=solver_ws,
                    time_limit=_budget_left(),
                )
        if solve.failed:
            # never sign off on a failed iterate: no snap, no golden eval
            return solve, None, None, float("nan"), None, float("nan")
        with obs.span("dmopt.signoff"):
            poly, active, t_pred = form.split(solve.x)
            poly = snap_dose_map(poly, ctx.library, mode=snap_mode)
            if active is not None:
                active = snap_dose_map(active, ctx.library, mode=snap_mode)
            golden, leak = ctx.golden_eval(poly, active)
        return solve, poly, active, t_pred, golden, leak

    if mode == MODE_QP and timing_bound is None:
        tau = ctx.baseline.mct * (1.0 - timing_guard)
    elif mode == MODE_QP:
        tau = float(timing_bound)
    else:
        tau = None
    solve, poly, active, t_pred, golden, leak = _solve_and_sign_off(
        tau, warm_start
    )

    if (
        solve.ok
        and mode == MODE_QP
        and timing_bound is None
        and timing_guard > 0
        and leak > ctx.baseline_leakage
    ):
        # golden signoff found the guard-forced speed-up costs more
        # leakage than this grid granularity recovers: re-solve without
        # the guard (tau = baseline MCT), warm-started from the guarded
        # solution (only the clock bound moved)
        retry = _solve_and_sign_off(ctx.baseline.mct, solve)
        if retry[0].ok and retry[5] < leak:
            solve, poly, active, t_pred, golden, leak = retry

    if solve.failed:
        # degrade gracefully: attribute the failure to a constraint
        # family, hand back the untouched baseline (zero delta doses)
        with obs.span("dmopt.diagnose"):
            report = diagnose_infeasibility(
                form, tau=tau, qp_kwargs=qp_kwargs
            )
        poly, active, _ = form.split(np.zeros(form.n_vars))
        telemetry.emit(
            "dmopt",
            mode=mode,
            status=solve.status,
            grid_size=float(grid_size),
            blocking=report.blocking,
            seconds=time.perf_counter() - t_start,
        )
        return DMoptResult(
            mode=mode,
            dose_map_poly=poly,
            dose_map_active=active,
            mct=ctx.baseline.mct,
            leakage=ctx.baseline_leakage,
            baseline_mct=ctx.baseline.mct,
            baseline_leakage=ctx.baseline_leakage,
            predicted_T=float("nan"),
            predicted_delta_leakage=float("nan"),
            solve=solve,
            formulation=form,
            runtime=time.perf_counter() - t_start,
            infeasibility=report,
        )

    telemetry.emit(
        "dmopt",
        mode=mode,
        status=solve.status,
        grid_size=float(grid_size),
        mct=golden.mct,
        leakage=leak,
        seconds=time.perf_counter() - t_start,
    )
    return DMoptResult(
        mode=mode,
        dose_map_poly=poly,
        dose_map_active=active,
        mct=golden.mct,
        leakage=leak,
        baseline_mct=ctx.baseline.mct,
        baseline_leakage=ctx.baseline_leakage,
        predicted_T=t_pred,
        predicted_delta_leakage=form.predicted_delta_leakage(solve.x),
        solve=solve,
        formulation=form,
        runtime=time.perf_counter() - t_start,
    )
