"""End-to-end optimization flow (paper Fig. 7 / Fig. 8).

``run_flow`` chains the full pipeline on one design:

1. generate/accept the placed design, run golden STA and leakage analysis,
2. fit delay/leakage coefficients from the characterized libraries,
3. run DMopt (QP or QCP, poly or both layers) on the chosen grid,
4. snap doses to characterized variants, golden re-analysis,
5. optionally run dosePl cell swapping with legalization and golden
   accept/rollback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.dmopt import DMoptResult, optimize_dose_map
from repro.core.dosepl import DoseplConfig, DoseplResult, run_dosepl
from repro.core.model import DesignContext


@dataclass
class FlowResult:
    """Everything produced by one end-to-end run."""

    ctx: DesignContext
    dmopt: DMoptResult
    dosepl: DoseplResult
    runtime: float

    @property
    def final_mct(self) -> float:
        return self.dosepl.mct if self.dosepl is not None else self.dmopt.mct

    @property
    def final_leakage(self) -> float:
        return (
            self.dosepl.leakage if self.dosepl is not None else self.dmopt.leakage
        )

    def summary(self) -> str:
        base_mct = self.ctx.baseline.mct
        base_leak = self.ctx.baseline_leakage
        lines = [
            f"design          : {self.ctx.bundle.name}",
            f"baseline        : MCT {base_mct:.3f} ns, leakage {base_leak:.1f} uW",
            f"after DMopt     : MCT {self.dmopt.mct:.3f} ns "
            f"({self.dmopt.mct_improvement_pct:+.2f}%), leakage "
            f"{self.dmopt.leakage:.1f} uW "
            f"({self.dmopt.leakage_improvement_pct:+.2f}%)",
        ]
        if self.dosepl is not None:
            imp = (base_mct - self.dosepl.mct) / base_mct * 100.0
            lines.append(
                f"after dosePl    : MCT {self.dosepl.mct:.3f} ns ({imp:+.2f}%), "
                f"{self.dosepl.swaps_accepted} swap round(s) accepted"
            )
        lines.append(f"total runtime   : {self.runtime:.1f} s")
        return "\n".join(lines)


def run_flow(
    design,
    grid_size: float = 5.0,
    mode: str = "qcp",
    both_layers: bool = False,
    with_dosepl: bool = False,
    dosepl_config: DoseplConfig = None,
    **dmopt_kwargs,
) -> FlowResult:
    """Run the full timing/leakage optimization flow on a design.

    Parameters
    ----------
    design:
        Design name (``"AES-65"``...), :class:`DesignBundle`, or an
        existing :class:`DesignContext`.
    grid_size, mode, both_layers, **dmopt_kwargs:
        Forwarded to :func:`~repro.core.dmopt.optimize_dose_map`.
    with_dosepl:
        Run the cell-swapping placement pass after DMopt (the paper runs
        it after the QCP timing optimization, Table VIII).
    """
    t_start = time.perf_counter()
    if isinstance(design, DesignContext):
        ctx = design
    else:
        ctx = DesignContext(design, fit_width=both_layers)
    dmopt = optimize_dose_map(
        ctx, grid_size, mode=mode, both_layers=both_layers, **dmopt_kwargs
    )
    dosepl = None
    if with_dosepl:
        dosepl = run_dosepl(
            ctx, dmopt.dose_map_poly, config=dosepl_config
        )
    return FlowResult(
        ctx=ctx,
        dmopt=dmopt,
        dosepl=dosepl,
        runtime=time.perf_counter() - t_start,
    )
