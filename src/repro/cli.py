"""Command-line interface.

Subcommands (also reachable as ``python -m repro``):

* ``generate`` -- emit a benchmark design as Verilog + DEF files,
* ``analyze``  -- golden STA + leakage reports for a design (built-in
  name, or an imported Verilog/DEF pair),
* ``optimize`` -- run the dose map (and optionally dosePl) flow and
  report golden before/after numbers, with an ASCII dose-map heat map.

Examples::

    python -m repro generate AES-65 --verilog aes.v --def aes.def
    python -m repro analyze AES-65
    python -m repro analyze --verilog aes.v --def aes.def --node 65nm
    python -m repro optimize AES-65 --grid 5 --mode qcp --dosepl
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.core import (
    DesignContext,
    DoseplConfig,
    FlowResult,
    optimize_dose_map,
    run_dosepl,
    run_flow,
)
from repro.io import parse_def, parse_verilog, write_def, write_verilog
from repro.library import CellLibrary
from repro.netlist import design_names, make_design
from repro.netlist.designs import DesignBundle
from repro.placement import place_design
from repro.sta import report_dose_map, report_power, report_timing


def _load_context(args) -> DesignContext:
    """Build a DesignContext from a built-in name or Verilog/DEF files."""
    if args.design:
        bundle = make_design(args.design, scale=getattr(args, "scale", 1.0))
        return DesignContext(
            bundle, fit_width=getattr(args, "both_layers", False)
        )
    if not (args.verilog and args.def_file):
        raise SystemExit(
            "either a built-in design name or --verilog plus --def is required"
        )
    library = CellLibrary(args.node)
    netlist = parse_verilog(
        pathlib.Path(args.verilog).read_text(), library
    )
    placement = parse_def(pathlib.Path(args.def_file).read_text(), netlist)
    die = placement.die
    bundle = DesignBundle(
        name=netlist.name,
        netlist=netlist,
        library=library,
        die_width=die.width,
        die_height=die.height,
    )
    return DesignContext(
        bundle, placement=placement,
        fit_width=getattr(args, "both_layers", False),
    )


def _cmd_generate(args) -> int:
    bundle = make_design(args.design, scale=args.scale)
    placement = place_design(bundle)
    v_path = pathlib.Path(args.verilog or f"{args.design}.v")
    d_path = pathlib.Path(args.def_file or f"{args.design}.def")
    v_path.write_text(write_verilog(bundle.netlist, bundle.library))
    d_path.write_text(write_def(bundle.netlist, placement))
    print(f"wrote {v_path} ({bundle.netlist.n_gates} gates) and {d_path}")
    return 0


def _cmd_analyze(args) -> int:
    ctx = _load_context(args)
    print(f"design {ctx.bundle.name}: {ctx.netlist.n_gates} gates, "
          f"die {ctx.placement.die.width:.0f}x"
          f"{ctx.placement.die.height:.0f} um\n")
    print(report_timing(ctx.netlist, ctx.library, ctx.baseline,
                        n_paths=args.paths))
    print(report_power(ctx.netlist, ctx.library))
    return 0


def _checkpointed_flow(ctx, args) -> FlowResult:
    """The ``optimize`` flow with the DMopt stage checkpointed.

    The dose-map solve -- the expensive stage -- is stored in (and with
    ``--resume`` served from) an append-only JSONL checkpoint under a
    content hash of the design fingerprint and the optimize settings,
    so a re-run after an interruption skips straight to reporting (and
    dosePl, which golden-verifies its own swaps and stays live).
    """
    from repro import telemetry
    from repro.obs import metrics
    from repro.resilience.checkpoint import (
        CheckpointStore,
        dmopt_result_from_payload,
        dmopt_result_payload,
        sweep_point_key,
    )

    t0 = time.perf_counter()
    store = CheckpointStore(args.checkpoint, resume=args.resume)
    key = sweep_point_key(
        ctx, args.grid, args.mode, args.dose_range, False,
        {"smoothness": args.smoothness, "both_layers": args.both_layers},
    )
    payload = store.get(key)
    if payload is not None:
        dmopt = dmopt_result_from_payload(payload)
        metrics.inc("checkpoint.hits")
        telemetry.emit("checkpoint_hit", key=key)
        print(f"dose-map solve resumed from {args.checkpoint}")
    else:
        dmopt = optimize_dose_map(
            ctx,
            args.grid,
            mode=args.mode,
            both_layers=args.both_layers,
            smoothness=args.smoothness,
            dose_range=args.dose_range,
        )
        if dmopt.ok:
            # failures are not recorded: they may be environmental
            # (budget, chaos) and must re-run on resume
            store.put(key, dmopt_result_payload(dmopt), kind="cli_optimize")
    store.close()
    dosepl = None
    if args.dosepl:
        dosepl = run_dosepl(
            ctx, dmopt.dose_map_poly,
            config=DoseplConfig(top_k=args.top_k),
        )
    return FlowResult(
        ctx=ctx, dmopt=dmopt, dosepl=dosepl,
        runtime=time.perf_counter() - t0,
    )


def _cmd_optimize(args) -> int:
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint")
    ctx = _load_context(args)
    checkpoint = getattr(args, "checkpoint", None)
    if checkpoint is None:
        flow = run_flow(
            ctx,
            grid_size=args.grid,
            mode=args.mode,
            both_layers=args.both_layers,
            with_dosepl=args.dosepl,
            dosepl_config=(
                DoseplConfig(top_k=args.top_k) if args.dosepl else None
            ),
            smoothness=args.smoothness,
            dose_range=args.dose_range,
        )
    else:
        flow = _checkpointed_flow(ctx, args)
    if args.certify:
        from repro.core import certify_result, enforce_certificate

        report = certify_result(
            ctx, flow.dmopt, dose_range=args.dose_range,
            smoothness=args.smoothness,
        )
        print(report.summary())
        enforce_certificate(report, label=ctx.bundle.name)
    if not flow.dmopt.ok:
        print(f"dose-map solve failed ({flow.dmopt.status}); "
              "baseline numbers reported")
        if flow.dmopt.infeasibility is not None:
            print(flow.dmopt.infeasibility.summary())
    print(flow.summary())
    print()
    print(report_dose_map(flow.dmopt.dose_map_poly,
                          dose_range=args.dose_range))
    if flow.dmopt.dose_map_active is not None:
        print(report_dose_map(flow.dmopt.dose_map_active,
                              dose_range=args.dose_range))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dose map and placement co-optimization "
        "(DAC'08/TCAD'10 reproduction)",
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="write a JSONL run manifest (solver traces, stage timings); "
        "optional PATH overrides the default "
        "(REPRO_TELEMETRY_PATH or repro_telemetry.jsonl)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_design_source(p, positional_required=False):
        p.add_argument(
            "design",
            nargs=None if positional_required else "?",
            choices=None if not positional_required else design_names(),
            help=f"built-in design name ({', '.join(design_names())})",
        )
        p.add_argument("--verilog", help="structural Verilog netlist to load")
        p.add_argument("--def", dest="def_file", help="DEF placement to load")
        p.add_argument("--node", default="65nm", choices=["65nm", "90nm"],
                       help="technology node for imported netlists")
        p.add_argument("--scale", type=float, default=1.0,
                       help="structural scale factor for built-in designs")

    p_gen = sub.add_parser("generate", help="emit a benchmark design")
    add_design_source(p_gen, positional_required=True)
    p_gen.set_defaults(func=_cmd_generate)

    p_ana = sub.add_parser("analyze", help="golden STA + leakage reports")
    add_design_source(p_ana)
    p_ana.add_argument("--paths", type=int, default=3,
                       help="number of critical paths to report")
    p_ana.set_defaults(func=_cmd_analyze)

    p_opt = sub.add_parser("optimize", help="run the DMopt (+dosePl) flow")
    add_design_source(p_opt)
    p_opt.add_argument("--grid", type=float, default=5.0,
                       help="dose grid size G in um")
    p_opt.add_argument("--mode", choices=["qp", "qcp"], default="qcp")
    p_opt.add_argument("--both-layers", action="store_true",
                       help="modulate gate width (active layer) too")
    p_opt.add_argument("--dosepl", action="store_true",
                       help="run the cell-swapping placement pass")
    p_opt.add_argument("--top-k", type=int, default=1000,
                       help="critical paths considered by dosePl")
    p_opt.add_argument("--smoothness", type=float, default=2.0,
                       help="dose smoothness bound delta (%%)")
    p_opt.add_argument("--dose-range", type=float, default=5.0,
                       help="dose correction range (+/- %%)")
    p_opt.add_argument("--checkpoint", metavar="PATH", default=None,
                       help="JSONL checkpoint file: the dose-map solve is "
                       "stored under a content hash of the design and "
                       "settings, for restart with --resume")
    p_opt.add_argument("--resume", action="store_true",
                       help="serve the dose-map solve from --checkpoint "
                       "when present instead of truncating the file")
    p_opt.add_argument("--certify", action="store_true",
                       help="independently re-verify the result (dose "
                       "range, smoothness, timing, leakage, signoff) and "
                       "fail on violation")
    p_opt.set_defaults(func=_cmd_optimize)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.trace is not None:
        from repro import telemetry

        telemetry.configure(
            enabled=True,
            path=None if args.trace is True else args.trace,
        )
    from repro import obs

    with obs.span(f"cli.{args.command}",
                  design=getattr(args, "design", None)):
        return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
