"""Liberty-like library interchange.

Exports characterized cells in a Liberty-flavored text format (the
``.lib`` structure signoff tools consume) and parses it back.  This is
how the paper's flow would hand dose-variant libraries to PrimeTime /
SOC Encounter: one library file per (poly dose, active dose) variant --
"21 different characterized libraries ... corresponding to the 21
different dose values" (Section V).

Only the constructs our timer uses are emitted: per-cell leakage power,
pin capacitance, setup time, and the NLDM ``cell_delay`` /
``output_slew`` tables with their index vectors.
"""

from __future__ import annotations

import re

import numpy as np

from repro.library.characterize import CharacterizedCell
from repro.library.nldm import NLDMTable


class LibertyError(ValueError):
    """Malformed Liberty-like input."""


def _fmt_vector(values) -> str:
    return ", ".join(f"{v:.6g}" for v in values)


def _format_table(name: str, table: NLDMTable, indent: str) -> list:
    lines = [f"{indent}{name} (delay_template) {{"]
    lines.append(f'{indent}  index_1 ("{_fmt_vector(table.slew_axis)}");')
    lines.append(f'{indent}  index_2 ("{_fmt_vector(table.load_axis)}");')
    rows = ", \\\n".join(
        f'{indent}    "{_fmt_vector(row)}"' for row in table.values
    )
    lines.append(f"{indent}  values ( \\\n{rows} );")
    lines.append(f"{indent}}}")
    return lines


def write_liberty(
    library,
    dose_poly: float = 0.0,
    dose_active: float = 0.0,
    masters=None,
) -> str:
    """Render one dose-variant library in Liberty-like text."""
    tag = f"dp{dose_poly:+.1f}_da{dose_active:+.1f}".replace("+", "p").replace(
        "-", "m"
    ).replace(".", "_")
    names = list(masters) if masters is not None else sorted(library.masters)
    lines = [f"library (repro_{library.node.name}_{tag}) {{"]
    lines.append('  time_unit : "1ns";')
    lines.append('  capacitive_load_unit (1, "ff");')
    lines.append('  leakage_power_unit : "1uW";')
    lines.append(f"  /* dose variant: poly {dose_poly:+.2f}%, "
                 f"active {dose_active:+.2f}% */")
    for name in names:
        cc = library.characterized(name, dose_poly, dose_active)
        master = cc.master
        lines.append(f"  cell ({name}) {{")
        lines.append(f"    cell_leakage_power : {cc.leakage_uw:.6g};")
        lines.append(f"    area : {master.width_sites};")
        if master.is_sequential:
            lines.append(f"    /* sequential, setup {cc.setup_ns:.4f} ns */")
            lines.append(f"    setup_time : {cc.setup_ns:.6g};")
        for pin_idx in range(master.n_inputs):
            lines.append(f"    pin (IN{pin_idx}) {{")
            lines.append("      direction : input;")
            lines.append(f"      capacitance : {cc.input_cap_ff:.6g};")
            lines.append("    }")
        lines.append("    pin (OUT) {")
        lines.append("      direction : output;")
        lines.append("      timing () {")
        lines.extend(_format_table("cell_delay", cc.delay, "        "))
        lines.extend(_format_table("output_slew", cc.out_slew, "        "))
        lines.append("      }")
        lines.append("    }")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


_CELL_RE = re.compile(r"cell\s*\(\s*(\w+)\s*\)\s*\{")
_ATTR_RE = re.compile(r"(\w+)\s*:\s*([-\d.eE+]+)\s*;")
_TABLE_RE = re.compile(
    r"(cell_delay|output_slew)\s*\(\s*\w+\s*\)\s*\{(.*?)\n\s*\}",
    re.S,
)
_INDEX_RE = re.compile(r'index_(\d)\s*\(\s*"([^"]*)"\s*\)\s*;')
_VALUES_RE = re.compile(r"values\s*\((.*?)\)\s*;", re.S)


def _parse_vector(text: str) -> np.ndarray:
    return np.array([float(v) for v in text.replace("\\", " ").split(",")])


def parse_liberty(text: str) -> dict:
    """Parse a Liberty-like library back into plain data.

    Returns
    -------
    dict
        Mapping cell name -> dict with ``leakage_uw``, ``input_cap_ff``,
        ``setup_ns`` (0.0 when absent), ``delay`` and ``out_slew``
        :class:`NLDMTable` objects.
    """
    cells: dict = {}
    spans = [(m.group(1), m.start()) for m in _CELL_RE.finditer(text)]
    if not spans:
        raise LibertyError("no cell groups found")
    spans.append(("__end__", len(text)))
    for (name, start), (_next, end) in zip(spans, spans[1:]):
        chunk = text[start:end]
        attrs = dict(_ATTR_RE.findall(chunk))
        tables = {}
        for kind, body in _TABLE_RE.findall(chunk):
            idx = dict(_INDEX_RE.findall(body))
            vm = _VALUES_RE.search(body)
            if "1" not in idx or "2" not in idx or vm is None:
                raise LibertyError(f"cell {name}: malformed {kind} table")
            slew = _parse_vector(idx["1"])
            load = _parse_vector(idx["2"])
            flat = _parse_vector(
                vm.group(1).replace('"', "").replace("\n", " ")
            )
            tables[kind] = NLDMTable(
                slew, load, flat.reshape(slew.size, load.size)
            )
        if "cell_delay" not in tables or "output_slew" not in tables:
            raise LibertyError(f"cell {name}: missing timing tables")
        cells[name] = {
            "leakage_uw": float(attrs.get("cell_leakage_power", 0.0)),
            "input_cap_ff": float(attrs.get("capacitance", 0.0)),
            "setup_ns": float(attrs.get("setup_time", 0.0)),
            "delay": tables["cell_delay"],
            "out_slew": tables["output_slew"],
        }
    return cells


def roundtrip_close(cc: CharacterizedCell, parsed: dict, tol: float = 1e-5) -> bool:
    """Whether a parsed cell matches a characterized cell numerically."""
    return (
        abs(parsed["leakage_uw"] - cc.leakage_uw) <= tol * max(cc.leakage_uw, 1)
        and abs(parsed["input_cap_ff"] - cc.input_cap_ff) <= tol
        and np.allclose(parsed["delay"].values, cc.delay.values, rtol=tol)
        and np.allclose(parsed["out_slew"].values, cc.out_slew.values, rtol=tol)
    )
