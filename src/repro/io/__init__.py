"""Interchange formats: structural Verilog, DEF-like placement,
Liberty-like libraries."""

from repro.io.defio import DefError, parse_def, write_def
from repro.io.liberty import (
    LibertyError,
    parse_liberty,
    roundtrip_close,
    write_liberty,
)
from repro.io.spef import SpefError, parse_spef, write_spef
from repro.io.verilog import (
    VerilogError,
    parse_verilog,
    roundtrip_equal,
    write_verilog,
)

__all__ = [
    "write_verilog",
    "parse_verilog",
    "roundtrip_equal",
    "VerilogError",
    "write_def",
    "parse_def",
    "DefError",
    "write_liberty",
    "parse_liberty",
    "roundtrip_close",
    "LibertyError",
    "write_spef",
    "parse_spef",
    "SpefError",
]
