"""DEF-like placement interchange.

A minimal dialect of the LEF/DEF COMPONENTS section, enough to exchange
placements with other tools and to checkpoint dosePl results:

    DESIGN AES-65 ;
    DIEAREA ( 0 0 ) ( 101000 99000 ) ;
    ROWHEIGHT 1800 ;
    SITEWIDTH 200 ;
    COMPONENTS 2688 ;
      - u1 NAND2X1 + PLACED ( 4600 0 ) ;
      ...
    END COMPONENTS

Coordinates are in DEF database units (nm, i.e. um x 1000).
"""

from __future__ import annotations

import re

from repro.placement.placement import Die, Placement

_DBU = 1000.0  # database units per um


class DefError(ValueError):
    """Malformed DEF-like input."""


def write_def(netlist, placement: Placement, design_name: str = None) -> str:
    """Render a placement in the DEF-like dialect (returns the text)."""
    die = placement.die
    name = design_name or netlist.name
    lines = [f"DESIGN {name} ;"]
    lines.append(
        f"DIEAREA ( 0 0 ) ( {int(die.width * _DBU)} {int(die.height * _DBU)} ) ;"
    )
    lines.append(f"ROWHEIGHT {int(die.row_height * _DBU)} ;")
    lines.append(f"SITEWIDTH {int(die.site_width * _DBU)} ;")
    placed = [g for g in netlist.gates if placement.is_placed(g)]
    lines.append(f"COMPONENTS {len(placed)} ;")
    for gate_name in placed:
        x, y = placement.location(gate_name)
        master = netlist.gate(gate_name).master
        lines.append(
            f"  - {gate_name} {master} + PLACED "
            f"( {int(round(x * _DBU))} {int(round(y * _DBU))} ) ;"
        )
    lines.append("END COMPONENTS")
    return "\n".join(lines) + "\n"


_HEAD_RE = {
    "design": re.compile(r"DESIGN\s+(\S+)\s*;"),
    "diearea": re.compile(
        r"DIEAREA\s*\(\s*0\s+0\s*\)\s*\(\s*(\d+)\s+(\d+)\s*\)\s*;"
    ),
    "rowheight": re.compile(r"ROWHEIGHT\s+(\d+)\s*;"),
    "sitewidth": re.compile(r"SITEWIDTH\s+(\d+)\s*;"),
}
_COMP_RE = re.compile(
    r"-\s+(\S+)\s+(\S+)\s+\+\s+PLACED\s*\(\s*(-?\d+)\s+(-?\d+)\s*\)\s*;"
)


def parse_def(text: str, netlist=None) -> Placement:
    """Parse the DEF-like dialect back into a :class:`Placement`.

    When ``netlist`` is given, component names and masters are checked
    against it.
    """
    matches = {}
    for key, rx in _HEAD_RE.items():
        m = rx.search(text)
        if not m:
            raise DefError(f"missing {key.upper()} statement")
        matches[key] = m
    die = Die(
        width=float(matches["diearea"].group(1)) / _DBU,
        height=float(matches["diearea"].group(2)) / _DBU,
        row_height=float(matches["rowheight"].group(1)) / _DBU,
        site_width=float(matches["sitewidth"].group(1)) / _DBU,
    )
    placement = Placement(die)
    for name, master, x, y in _COMP_RE.findall(text):
        if netlist is not None:
            gate = netlist.gates.get(name)
            if gate is None:
                raise DefError(f"component {name!r} not in netlist")
            if gate.master != master:
                raise DefError(
                    f"component {name!r}: DEF master {master} != "
                    f"netlist master {gate.master}"
                )
        placement.place(name, float(x) / _DBU, float(y) / _DBU)
    if len(placement) == 0:
        raise DefError("no placed components found")
    return placement
