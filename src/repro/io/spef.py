"""SPEF-like parasitics interchange.

The paper's flow consumes "extracted wiring parasitics" alongside the
netlist (Section IV-A).  This module writes the design's wire parasitics
-- per-net total capacitance and per-arc Elmore-style delays, as our
timer models them -- in a SPEF-flavored text format, and parses it back.
Useful for handing our extraction to another tool or for checkpointing
post-route parasitics.

Format (simplified SPEF):

    *SPEF "repro simple"
    *DESIGN AES-65
    *C_UNIT 1 FF
    *T_UNIT 1 NS
    *D_NET n42 0.8125
    *ARC u7 u13 0.00031
    *END n42
"""

from __future__ import annotations

import re

from repro.sta.wire import arc_wire_delay, net_wire_cap


class SpefError(ValueError):
    """Malformed SPEF-like input."""


def write_spef(netlist, placement, node, net_lengths: dict = None) -> str:
    """Extract and render parasitics for every net."""
    lines = [
        '*SPEF "repro simple"',
        f"*DESIGN {netlist.name}",
        "*C_UNIT 1 FF",
        "*T_UNIT 1 NS",
    ]
    for net_name, net in netlist.nets.items():
        length = net_lengths.get(net_name) if net_lengths else None
        cap = net_wire_cap(netlist, placement, net_name, node, length_um=length)
        lines.append(f"*D_NET {net_name} {cap:.6g}")
        if net.driver is not None:
            for sink, _pin in net.sinks:
                # sink pin cap excluded here: SPEF carries wire RC only
                delay = arc_wire_delay(
                    netlist, placement, net.driver, sink, 0.0, node
                )
                lines.append(f"*ARC {net.driver} {sink} {delay:.6g}")
        lines.append(f"*END {net_name}")
    return "\n".join(lines) + "\n"


_DNET_RE = re.compile(r"\*D_NET\s+(\S+)\s+([-\d.eE+]+)")
_ARC_RE = re.compile(r"\*ARC\s+(\S+)\s+(\S+)\s+([-\d.eE+]+)")


def parse_spef(text: str) -> dict:
    """Parse the SPEF-like dialect.

    Returns
    -------
    dict
        ``{"design": str, "net_caps": {net: fF},
        "arc_delays": {(driver, sink): ns}}``.
    """
    m = re.search(r"\*DESIGN\s+(\S+)", text)
    if not m:
        raise SpefError("missing *DESIGN header")
    net_caps = {}
    for net, cap in _DNET_RE.findall(text):
        net_caps[net] = float(cap)
    if not net_caps:
        raise SpefError("no *D_NET records found")
    arc_delays = {}
    for drv, snk, d in _ARC_RE.findall(text):
        arc_delays[(drv, snk)] = float(d)
    return {
        "design": m.group(1),
        "net_caps": net_caps,
        "arc_delays": arc_delays,
    }
