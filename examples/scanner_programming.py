#!/usr/bin/env python3
"""Scenario: from optimized dose map to scanner actuator settings.

The DoseMapper hardware does not take an arbitrary per-grid map: it
composes a slit-direction profile (Unicom-XL, polynomial filter) with a
scan-direction profile (Dosicom, Legendre pulse-energy modulation --
paper equation (1)).  This example optimizes a dose map for AES-65,
verifies equipment feasibility (range/smoothness), projects the map onto
the separable actuator basis, reports the realization error, and tiles
the per-die map across a multi-die exposure field.

Run:  python examples/scanner_programming.py
"""

import numpy as np

from repro.core import DesignContext, optimize_dose_map
from repro.dosemap import fit_actuators, legendre_scan_profile, slit_profile

ctx = DesignContext("AES-65")
result = optimize_dose_map(ctx, grid_size=10.0, mode="qcp")
dm = result.dose_map_poly
print(f"optimized poly dose map: {dm.partition.m}x{dm.partition.n} grids")
print(f"  range [{dm.values.min():+.2f}, {dm.values.max():+.2f}] %, "
      f"feasible(+/-5%, delta=2): {dm.is_feasible()}")

# project onto the scanner's separable actuator basis
slit, scan, realized, rms = fit_actuators(
    dm.values, slit_order=2, scan_order=8
)
print("\nactuator projection (slit quadratic + 8 Legendre scan terms):")
print(f"  slit coefficients  : {np.round(slit, 4)}")
print(f"  scan coefficients  : {np.round(scan, 4)}")
print(f"  RMS realization err: {rms:.3f} % dose")

# evaluate the programmed profiles like the tool would
y = np.linspace(-1, 1, 5)
print(f"  Dosicom D_set(y)   : {np.round(legendre_scan_profile(scan, y), 3)}")
x = np.linspace(-1, 1, 5)
print(f"  Unicom slit(x)     : {np.round(slit_profile(slit, x), 3)}")

# golden signoff with the *realized* (separable) map instead of the ideal
from repro.dosemap import DoseMap

realized_map = DoseMap(dm.partition, dm.layer, realized)
res_ideal, leak_ideal = ctx.golden_eval(dm)
res_real, leak_real = ctx.golden_eval(realized_map)
print("\ngolden signoff:")
print(f"  ideal grid map   : MCT {res_ideal.mct:.3f} ns, "
      f"leakage {leak_ideal:.1f} uW")
print(f"  actuator-realized: MCT {res_real.mct:.3f} ns, "
      f"leakage {leak_real:.1f} uW")
print(f"  baseline         : MCT {ctx.baseline.mct:.3f} ns, "
      f"leakage {ctx.baseline_leakage:.1f} uW")

# multi-die exposure field: tile 2x3 copies (paper Sec. II-B: "multiple
# copies of the dose map solution are tiled horizontally and vertically").
# A per-die map can violate the smoothness limit at copy seams; re-solve
# with seam constraints so the tiled field is feasible end to end.
field = dm.tiled(2, 3)
seam = field.smoothness_violations(2.0)
print(f"\n2x3-die field from the per-die map: worst seam violation "
      f"{seam:.2f} %")
if seam > 0:
    result_seam = optimize_dose_map(ctx, grid_size=10.0, mode="qcp",
                                    seam_smoothness=True)
    field2 = result_seam.dose_map_poly.tiled(2, 3)
    res_seam, _ = ctx.golden_eval(result_seam.dose_map_poly)
    print(f"re-optimized with seam constraints: worst seam violation "
          f"{field2.smoothness_violations(2.0):.2f} %, MCT "
          f"{res_seam.mct:.3f} ns (vs {res_ideal.mct:.3f} without seams)")
