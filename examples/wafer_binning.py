#!/usr/bin/env python3
"""Scenario: across-wafer delay-variation minimization (future work of
the paper, Section VI).

A wafer's track/etcher signature prints center dies with near-nominal
gates but edge dies several nm wide (slow).  This example builds a wafer
map for the AES-65 product, shows the resulting MCT spread and timing
yield across dies, then applies the per-field dose offset (the Dosicom
"dose offset per field" actuator) to equalize die timing -- and finally
uses a positive dose target to push the whole wafer into a faster bin,
quantifying the leakage bill.

Run:  python examples/wafer_binning.py
"""

from repro.core import DesignContext
from repro.wafer import Wafer, equalize_wafer_timing

ctx = DesignContext("AES-65")
wafer = Wafer(radius_mm=140.0, die_w_mm=20.0, die_h_mm=20.0,
              radial_cd_bias_nm=4.0)
print(f"wafer: {wafer.n_dies} dies, edge CD bias "
      f"+{wafer.radial_cd_bias_nm:.0f} nm (slow edge dies)\n")

# --- delay-variation minimization (target: nominal printing) -----------
res = equalize_wafer_timing(ctx, wafer, target_dose=0.0)
target = ctx.baseline.mct * 1.01  # sell bin: within 1 % of nominal MCT
print("equalize to nominal dose (delay-variation minimization):")
print(f"  MCT spread : {res.spread_before * 1e3:6.1f} ps -> "
      f"{res.spread_after * 1e3:6.1f} ps")
print(f"  MCT sigma  : {res.sigma_before * 1e3:6.1f} ps -> "
      f"{res.sigma_after * 1e3:6.1f} ps")
print(f"  timing yield @ {target:.3f} ns: "
      f"{res.timing_yield(target, after=False) * 100:5.1f}% -> "
      f"{res.timing_yield(target) * 100:5.1f}%")
print(f"  wafer leakage: {res.leakage_before / 1e3:.1f} mW -> "
      f"{res.leakage_after / 1e3:.1f} mW")

# --- speed binning: drive every die 2 % above nominal dose -------------
res2 = equalize_wafer_timing(ctx, wafer, target_dose=2.0)
print("\nbin the wafer faster (target dose +2 %):")
print(f"  worst-die MCT: {res.mct_after.max():.3f} ns -> "
      f"{res2.mct_after.max():.3f} ns")
print(f"  wafer leakage: {res.leakage_after / 1e3:.1f} mW -> "
      f"{res2.leakage_after / 1e3:.1f} mW "
      f"({(res2.leakage_after / res.leakage_after - 1) * 100:+.0f}%)")
print("\nper-field dose offsets are a free knob for timing yield; "
      "speed binning costs leakage, exactly as on-die (Tables II/III).")
