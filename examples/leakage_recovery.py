#!/usr/bin/env python3
"""Scenario: post-layout leakage recovery on a power-constrained design.

A mobile-SoC-style flow: the JPEG-65 design meets timing but busts its
leakage budget.  Instead of re-synthesizing with longer channel devices
(a mask respin), we compute a manufacturing-time dose map (the paper's QP
formulation) that lengthens non-critical gates via reduced exposure dose
-- recovering leakage power with zero mask or netlist change -- and
compare against the naive alternative of a uniform dose decrease, which
would wreck timing (paper Tables II/III).

Run:  python examples/leakage_recovery.py
"""

from repro.core import DesignContext, optimize_dose_map, uniform_dose_sweep

ctx = DesignContext("JPEG-65")
print(f"design: {ctx.bundle.name}, {ctx.netlist.n_gates} gates")
print(f"baseline: MCT {ctx.baseline.mct:.3f} ns, "
      f"leakage {ctx.baseline_leakage:.1f} uW\n")

# --- naive knob: a chip-wide uniform dose decrease ---------------------
print("uniform dose decrease (the naive knob):")
for point in uniform_dose_sweep(ctx, doses=[-1.0, -2.0, -3.0]):
    print(f"  dose {point.dose:+.0f}%: leakage "
          f"{point.leakage_improvement_pct:+5.1f}%  BUT MCT "
          f"{point.mct_improvement_pct:+5.1f}%  <- timing violated")

# --- design-aware dose map (the paper's QP) ----------------------------
print("\ndesign-aware dose map (QP: min leakage s.t. timing):")
for grid in (30.0, 10.0, 5.0):
    res = optimize_dose_map(ctx, grid_size=grid, mode="qp")
    print(f"  {grid:4.0f} um grids: leakage "
          f"{res.leakage_improvement_pct:+5.1f}%  at MCT "
          f"{res.mct_improvement_pct:+5.2f}%  "
          f"({res.formulation.partition.n_grids} dose variables, "
          f"{res.runtime:.1f} s)")

print("\nfiner dose grids recover more leakage -- with timing intact.")
