#!/usr/bin/env python3
"""Quickstart: dose-map optimization of a placed design in ~20 lines.

Generates the AES-65 testcase, analyzes it, runs the paper's QCP dose-map
optimization ("minimize clock period subject to no leakage increase") on
a 5x5 um exposure grid, and reports golden signoff numbers before/after.

Run:  python examples/quickstart.py
"""

from repro.core import DesignContext, optimize_dose_map

# 1. build a placed, analyzed design (netlist + placement + STA baseline)
ctx = DesignContext("AES-65")
print(f"design   : {ctx.bundle.name} ({ctx.netlist.n_gates} gates)")
print(f"baseline : MCT {ctx.baseline.mct:.3f} ns, "
      f"leakage {ctx.baseline_leakage:.1f} uW")

# 2. optimize the poly-layer dose map: minimize the clock period subject
#    to dose range +/-5 %, smoothness delta = 2, and *no leakage increase*
result = optimize_dose_map(ctx, grid_size=5.0, mode="qcp")

# 3. golden signoff numbers (doses snapped to manufacturable 0.5 % steps)
print(f"optimized: MCT {result.mct:.3f} ns "
      f"({result.mct_improvement_pct:+.2f}%), "
      f"leakage {result.leakage:.1f} uW "
      f"({result.leakage_improvement_pct:+.2f}%)")
print(f"solver   : {result.solve.status} in {result.runtime:.1f} s "
      f"({result.solve.info.get('inner_solves', 1)} QP solves)")

# 4. the dose map itself is a grid of delta-dose percentages
dm = result.dose_map_poly
print(f"dose map : {dm.partition.m}x{dm.partition.n} grids, "
      f"range [{dm.values.min():+.1f}, {dm.values.max():+.1f}] %, "
      f"equipment-feasible: {dm.is_feasible()}")
