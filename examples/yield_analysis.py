#!/usr/bin/env python3
"""Scenario: parametric timing-yield signoff of a dose-map decision.

The paper's title promises *timing yield enhancement*; this example
quantifies it explicitly.  Under a within-die CD variation model (random
per-gate + spatially correlated components), it compares the yield curve
P(MCT <= T) of the baseline AES-65 against the QCP-optimized dose map,
using both the vectorized Monte Carlo engine and the analytic SSTA
(canonical first-order) engine -- and reports the sell-bin uplift at the
nominal clock target.

Run:  python examples/yield_analysis.py
"""

import numpy as np

from repro.core import DesignContext, optimize_dose_map
from repro.variation import (
    SSTA,
    TimingMonteCarlo,
    VariationModel,
    ssta_timing_yield,
    timing_yield,
)

ctx = DesignContext("AES-65")
result = optimize_dose_map(ctx, grid_size=5.0, mode="qcp")
print(f"design {ctx.bundle.name}: baseline MCT {ctx.baseline.mct:.3f} ns, "
      f"QCP MCT {result.mct:.3f} ns ({result.mct_improvement_pct:+.1f}%)\n")

model = VariationModel(sigma_random_nm=1.0, sigma_systematic_nm=1.0,
                       correlation_grid_um=20.0, seed=17)
mc = TimingMonteCarlo(ctx)
dl = mc.sample_dl(model, 2000)
mct_base = mc.mct_samples(dl)
mct_opt = mc.mct_samples(dl, dose_map=result.dose_map_poly)

# yield curves over candidate clock periods
periods = np.linspace(mct_opt.min(), mct_base.max(), 9)
print(f"{'T (ns)':>8}  {'yield base':>10}  {'yield DMopt':>11}")
for t in periods:
    print(f"{t:8.3f}  {timing_yield(mct_base, t):10.3f}  "
          f"{timing_yield(mct_opt, t):11.3f}")

target = ctx.baseline.mct
print(f"\nat the nominal target T = {target:.3f} ns:")
print(f"  Monte Carlo ({len(dl)} chips): "
      f"{timing_yield(mct_base, target) * 100:5.1f}% -> "
      f"{timing_yield(mct_opt, target) * 100:5.1f}%")

# analytic cross-check (Clark-max canonical SSTA)
ssta = SSTA(ctx, model)
base_rv = ssta.analyze()
opt_rv = ssta.analyze(dose_map=result.dose_map_poly)
print(f"  SSTA (analytic)        : "
      f"{ssta_timing_yield(base_rv, target) * 100:5.1f}% -> "
      f"{ssta_timing_yield(opt_rv, target) * 100:5.1f}%")
print(f"  SSTA MCT distribution  : baseline N({base_rv.mean:.3f}, "
      f"{base_rv.sigma:.3f}), optimized N({opt_rv.mean:.3f}, "
      f"{opt_rv.sigma:.3f}) ns")
