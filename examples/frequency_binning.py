#!/usr/bin/env python3
"""Scenario: pushing a design into a faster frequency bin.

A speed-binned part (think: a desktop CPU SKU) sells for more in the
faster bin.  This example runs the paper's full co-optimization -- QCP
dose-map optimization (minimize clock period, no leakage increase)
followed by the dosePl cell-swapping placement pass -- on AES-90, and
shows how much cycle-time headroom manufacturing-time dose control buys,
what the theoretical headroom is (the Fig. 10 "Bias" bound), and what
that bound would cost in leakage.

Run:  python examples/frequency_binning.py
"""

from repro.core import (
    DesignContext,
    DoseplConfig,
    bias_critical_paths,
    optimize_dose_map,
    run_dosepl,
)

ctx = DesignContext("AES-90")
base_mct = ctx.baseline.mct
base_leak = ctx.baseline_leakage
print(f"design: {ctx.bundle.name}, {ctx.netlist.n_gates} gates")
print(f"shipping bin today : {1e3 / base_mct:7.1f} MHz "
      f"(MCT {base_mct:.3f} ns, leakage {base_leak:.1f} uW)\n")

# stage 1: design-aware dose map (QCP)
qcp = optimize_dose_map(ctx, grid_size=5.0, mode="qcp")
print(f"after DMopt (QCP)  : {1e3 / qcp.mct:7.1f} MHz "
      f"(MCT {qcp.mct:.3f} ns, {qcp.mct_improvement_pct:+.2f}%, "
      f"leakage {qcp.leakage:.1f} uW)")

# stage 2: dose-map-aware placement (cell swapping, Appendix Algorithm 1)
dosepl = run_dosepl(
    ctx, qcp.dose_map_poly, config=DoseplConfig(top_k=500, rounds=10)
)
total_imp = (base_mct - dosepl.mct) / base_mct * 100.0
print(f"after dosePl       : {1e3 / dosepl.mct:7.1f} MHz "
      f"(MCT {dosepl.mct:.3f} ns, {total_imp:+.2f}% vs baseline, "
      f"{dosepl.swaps_accepted} swap rounds accepted)")

# bound: max dose on every top-K critical-path gate (not manufacturable
# as a smooth map, and the leakage bill is ruinous -- paper Fig. 10)
bias_res, bias_leak, _ = bias_critical_paths(ctx, k=500)
print(f"\ntheoretical bound  : {1e3 / bias_res.mct:7.1f} MHz "
      f"(MCT {bias_res.mct:.3f} ns) -- but leakage {bias_leak:.1f} uW "
      f"({(bias_leak - base_leak) / base_leak * 100:+.0f}%)")
print("the co-optimization captures most of the headroom at ~zero "
      "leakage cost.")
