"""Baseline benchmark: design-blind CD-uniformity dose mapping (ACLV).

The pre-paper use of DoseMapper ("used solely ... to reduce ACLV or AWLV
metrics", Section I).  Checks that (a) the uniformity QP flattens a
systematic CD-error map, and (b) a *design-aware* QCP map beats the
CD-flat map on timing -- the motivating comparison of the paper.
"""

import numpy as np

from repro.core import optimize_dose_map
from repro.dosemap import (
    DoseMap,
    GridPartition,
    aclv_nm,
    optimize_cd_uniformity,
    systematic_cd_error_map,
)
from repro.experiments import get_context
from repro.experiments.harness import TableResult


def _run():
    ctx = get_context("AES-65")
    part = GridPartition(
        ctx.placement.die.width, ctx.placement.die.height, 5.0
    )
    cd = systematic_cd_error_map(part, radial_nm=3.0, slit_nm=2.0)
    flat = optimize_cd_uniformity(cd, part)
    res_flat, leak_flat = ctx.golden_eval(DoseMap(part, values=flat.values))
    design = optimize_dose_map(ctx, 5.0, mode="qcp")

    rows = [
        ["no correction", aclv_nm(cd), ctx.baseline.mct,
         ctx.baseline_leakage],
        ["ACLV-optimal (design-blind)", aclv_nm(cd, flat), res_flat.mct,
         leak_flat],
        ["design-aware QCP", float("nan"), design.mct, design.leakage],
    ]
    return TableResult(
        exp_id="Baseline (Sec. I)",
        title="CD-uniformity dose mapping vs design-aware dose mapping "
        "(AES-65, 5 um grids)",
        headers=["dose map", "residual ACLV nm", "MCT ns", "leakage uW"],
        rows=rows,
        notes=["a CD-flat chip is not a timing-optimal chip: the "
               "design-aware map trades CD uniformity for yield"],
    )


def _check(table):
    aclv = table.column("residual ACLV nm")
    assert aclv[1] < 0.5 * aclv[0], "uniformity QP must flatten CD"
    mcts = table.column("MCT ns")
    assert mcts[2] < mcts[1], "design-aware map must beat CD-flat on MCT"
    assert mcts[2] < mcts[0]
    leaks = table.column("leakage uW")
    assert leaks[2] < 1.05 * leaks[0]


def test_aclv_baseline(benchmark, save_result):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result(table, "baseline_aclv")
    _check(table)
