"""Ablation: dose-map smoothness bound delta (Section V discussion).

The paper: "tighter smoothness bounds (i.e., delta < 2) will result in
smaller timing improvement by enforcing smaller available dose changes
within each rectangular grid".
"""

from repro.core import optimize_dose_map
from repro.experiments import get_context
from repro.experiments.harness import TableResult

DELTAS = (0.25, 0.5, 1.0, 2.0, 4.0)


def _run():
    ctx = get_context("AES-65")
    rows = []
    for delta in DELTAS:
        res = optimize_dose_map(ctx, 10.0, mode="qcp", smoothness=delta)
        rows.append([delta, res.mct, res.mct_improvement_pct,
                     res.leakage, res.dose_map_poly.values.max()])
    return TableResult(
        exp_id="Ablation",
        title="QCP MCT improvement vs smoothness bound delta (AES-65, 10um)",
        headers=["delta %", "MCT ns", "MCT imp %", "leakage uW", "max dose %"],
        rows=rows,
    )


def _check(table):
    imps = table.column("MCT imp %")
    # non-decreasing improvement as delta relaxes (tolerance: snap noise)
    assert imps[0] <= imps[-1] + 0.3
    assert imps[0] <= imps[2] + 0.3
    max_doses = table.column("max dose %")
    assert max_doses[0] <= max_doses[-1] + 1e-9


def test_ablation_smoothness(benchmark, save_result):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result(table, "ablation_smoothness")
    _check(table)
