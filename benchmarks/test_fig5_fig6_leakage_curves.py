"""Fig. 5 / Fig. 6: inverter leakage vs gate length (exponential) and
width (linear)."""

import numpy as np

from repro.experiments import fig5_leakage_vs_length, fig6_leakage_vs_width


def test_fig5_leakage_vs_length(benchmark, save_result):
    table = benchmark.pedantic(fig5_leakage_vs_length, rounds=1, iterations=1)
    save_result(table, "fig5_leakage_vs_length")
    lengths = np.array(table.column("L nm"))
    leak = np.array(table.column("leakage uW"))
    assert np.all(np.diff(leak) < 0), "longer gates must leak less"
    # exponential: the ratio over the +/-10 nm window is large
    assert leak[0] / leak[-1] > 3.0
    # and convex (the paper approximates it as quadratic)
    assert np.polyfit(lengths, leak, 2)[0] > 0


def test_fig6_leakage_vs_width(benchmark, save_result):
    table = benchmark.pedantic(fig6_leakage_vs_width, rounds=1, iterations=1)
    save_result(table, "fig6_leakage_vs_width")
    dws = np.array(table.column("dW nm"))
    leak = np.array(table.column("leakage uW"))
    coeffs = np.polyfit(dws, leak, 1)
    resid = leak - np.polyval(coeffs, dws)
    assert coeffs[0] > 0, "wider devices must leak more"
    assert np.max(np.abs(resid)) < 1e-9 * max(leak), "exactly linear in dW"
