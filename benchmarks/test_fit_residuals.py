"""Section V fit-quality experiment: poly-only vs both-layer residuals.

The paper reports max sum-of-squared-residuals 0.0005 for the 21
poly-only characterized libraries vs 0.0101 for the 441 both-layer ones,
and attributes the Table V JPEG-65 anomaly to this fitting error.  We
reproduce the *ordering* (both-layer fits are markedly worse).
"""

import pytest

from repro.fitting import DelayFitter, LeakageFitter
from repro.library import CellLibrary


@pytest.fixture(scope="module")
def lib():
    return CellLibrary("65nm")


def _fit_all(lib, fit_width):
    fitter = DelayFitter(lib, fit_width=fit_width)
    for master in lib.combinational_names:
        table = lib.nominal(master).delay
        for i in range(0, len(table.slew_axis), 2):
            for j in range(0, len(table.load_axis), 2):
                fitter.fit_at_entry(master, i, j)
    return fitter.max_ssr()


def test_fit_residuals(benchmark, save_result):
    lib = CellLibrary("65nm")
    ssr_poly = _fit_all(lib, fit_width=False)
    ssr_both = benchmark.pedantic(
        lambda: _fit_all(lib, fit_width=True), rounds=1, iterations=1
    )
    from repro.experiments.harness import TableResult

    table = TableResult(
        exp_id="Sec. V (text)",
        title="Max SSR of delay curve fits, 65 nm library",
        headers=["fit", "max SSR"],
        rows=[["poly-only (21 libs)", ssr_poly],
              ["both layers (441 libs)", ssr_both]],
        notes=["paper: 0.0005 vs 0.0101 -- both-layer fitting is much "
               "worse, explaining the Table V JPEG-65 anomaly"],
    )
    save_result(table, "fit_residuals")
    assert ssr_both > 2.0 * ssr_poly, (
        "both-layer fits must be markedly worse than poly-only fits"
    )


def test_leakage_fit_residuals(benchmark, lib):
    def run():
        poly = LeakageFitter(lib, fit_width=False)
        both = LeakageFitter(lib, fit_width=True)
        for master in lib.combinational_names[:12]:
            poly.fit(master)
            both.fit(master)
        return poly.max_ssr(), both.max_ssr()

    ssr_poly, ssr_both = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ssr_both >= ssr_poly * 0.99
