"""Table II: uniform poly-layer dose sweep on AES-65.

Reproduction targets (paper Table II):
* more dose -> monotonically better MCT, monotonically worse leakage,
* at +5 %: MCT improves ~10-13 %, leakage *increases* ~1.5-2.6x,
* at -5 %: leakage improves ~30-40 %, MCT degrades ~9-12 %,
* leakage cost grows super-linearly with dose (the "straightforward way
  ... cannot obtain delay improvement without incurring leakage
  increase" claim).
"""

from repro.experiments import paper_data, table2


def _check(table):
    doses = [float(d) for d in table.column("dose %")]
    by_dose = dict(
        zip(doses, zip(table.column("MCT imp %"), table.column("leak imp %")))
    )

    # monotone trends across the full sweep
    mcts = table.column("MCT ns")
    leaks = table.column("leakage uW")
    assert all(b < a for a, b in zip(mcts, mcts[1:]))
    assert all(b > a for a, b in zip(leaks, leaks[1:]))

    # end-point magnitudes vs paper (generous bands: synthetic testcase)
    mct_p5, leak_p5 = by_dose[5.0]
    mct_m5, leak_m5 = by_dose[-5.0]
    paper_p5 = paper_data.TABLE2_AES65[5.0]
    paper_m5 = paper_data.TABLE2_AES65[-5.0]
    assert 0.6 * paper_p5[0] <= mct_p5 <= 1.5 * paper_p5[0]
    assert leak_p5 <= 0.5 * paper_p5[1]  # large leakage *increase*
    assert 0.6 * paper_m5[1] <= leak_m5 <= 1.5 * paper_m5[1]
    assert mct_m5 < -5.0  # substantial MCT degradation

    # super-linear leakage cost: +5 % costs far more than 5x the +1 % cost
    _, leak_p1 = by_dose[1.0]
    assert leak_p5 < 5 * leak_p1 < 0

    # no uniform dose improves both metrics
    for d, (mi, li) in by_dose.items():
        if d != 0.0:
            assert not (mi > 0.1 and li > 0.1), f"free lunch at dose {d}"


def test_table2(benchmark, save_result):
    table = benchmark.pedantic(table2, rounds=1, iterations=1)
    save_result(table, "table2_dose_sweep_aes65")
    _check(table)
