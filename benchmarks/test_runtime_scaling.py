"""Runtime scaling study (the paper's Table IV reports solver runtimes).

Measures DMopt QP runtime as the dose grid refines on one design:
the variable count grows with grid count while the timing constraints
stay fixed, so runtime should grow modestly -- the practical property
that makes fine grids (and their better results) affordable.
"""

from repro.core import optimize_dose_map
from repro.experiments import get_context
from repro.experiments.harness import TableResult

GRIDS = (30.0, 15.0, 10.0, 7.5, 5.0)


def _run():
    ctx = get_context("AES-65")
    rows = []
    for g in GRIDS:
        res = optimize_dose_map(ctx, g, mode="qp")
        form = res.formulation
        rows.append(
            [
                f"{g:g}",
                form.partition.n_grids,
                form.n_vars,
                form.A.shape[0],
                res.solve.iterations,
                res.runtime,
                res.leakage_improvement_pct,
            ]
        )
    return TableResult(
        exp_id="Scaling",
        title="DMopt QP runtime vs grid refinement (AES-65)",
        headers=["G um", "grids", "vars", "constraints", "iters",
                 "runtime s", "leak imp %"],
        rows=rows,
    )


def _check(table):
    grids = table.column("grids")
    runtimes = table.column("runtime s")
    imps = table.column("leak imp %")
    # refinement helps quality (paper's granularity claim)
    assert imps[-1] > imps[0]
    # and stays affordable: even a 30x grid-count growth costs well
    # under 100x runtime (interior-point iteration counts are flat)
    assert grids[-1] > 10 * grids[0]
    assert runtimes[-1] < 100 * max(runtimes[0], 0.05)
    iters = table.column("iters")
    assert max(iters) < 80, "IPM iteration counts must stay flat"


def test_runtime_scaling(benchmark, save_result):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result(table, "runtime_scaling")
    _check(table)
