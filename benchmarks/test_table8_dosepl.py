"""Table VIII: QCP dose-map optimization followed by dosePl cell swapping.

Reproduction targets: dosePl adds incremental MCT improvement on top of
the QCP result (paper: AES-65 1.607 -> 1.601 ns, JPEG-65 2.081 -> 1.847
ns), never degrades it (accept/rollback), and leakage stays essentially
unchanged.
"""

from repro.experiments import table8


def _check(table):
    for row in table.rows:
        design, qcp_mct, dp_mct = row[0], row[2], row[4]
        assert dp_mct <= qcp_mct + 1e-9, f"{design}: dosePl degraded MCT"
        assert row[5] > 0.0, f"{design}: no end-to-end MCT gain"
        qcp_leak, dp_leak = row[6], row[7]
        assert dp_leak <= qcp_leak * 1.02, f"{design}: dosePl leaked"


def test_table8(benchmark, save_result):
    table = benchmark.pedantic(table8, rounds=1, iterations=1)
    save_result(table, "table8_dosepl")
    _check(table)
