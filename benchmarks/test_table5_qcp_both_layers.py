"""Table V: QCP timing optimization with simultaneous gate length and
width modulation (poly + active layers), 65 nm designs.

Reproduction targets: both-layer results are close to poly-only (the
active-layer knob is weak: |dW| <= 10 nm vs >= 200 nm widths); any gain
is slight, and small regressions can occur from the extra fitted
parameters (the paper's JPEG-65 anomaly).
"""

from repro.experiments import table5


def _check(table):
    for row in table.rows:
        poly_imp, both_imp = row[3], row[5]
        assert abs(both_imp - poly_imp) < 3.0, (
            f"{row[0]} {row[1]}: width modulation changed MCT improvement "
            f"by more than the paper's 'slight' margin"
        )
        assert both_imp > -0.5, f"{row[0]} {row[1]}: both-layer QCP regressed"
    # average |both - poly| gain is small vs the poly-only gain itself
    deltas = [abs(row[5] - row[3]) for row in table.rows]
    gains = [abs(row[3]) for row in table.rows]
    assert sum(deltas) / len(deltas) < max(sum(gains) / len(gains), 1.0)


def test_table5(benchmark, save_result):
    table = benchmark.pedantic(table5, rounds=1, iterations=1)
    save_result(table, "table5_qcp_both_layers")
    _check(table)
