#!/usr/bin/env python
"""DMopt formulation/solver benchmark: assembly, warm starts, sweeps.

Times three workloads and writes ``BENCH_dmopt.json`` at the repo root
so the perf trajectory is tracked across PRs (companion to
``BENCH_sta.json``):

``assembly``
    ``build_formulation`` wall clock, reference loop builder vs the
    vectorized block-COO builder.  ``vector_cold`` includes the one-time
    per-design array extraction; ``vector_warm`` is the steady-state
    rebuild cost (what sweeps and retries actually pay).
``solve_warm``
    One DMopt solve cold vs re-solved warm-started from the cold
    solution (same formulation cache + IPM workspace), per mode.
``sweep``
    A dose-range sweep: independent cold solves vs the warm-chained
    serial sweep vs the multi-process harness (``run_dmopt_cells`` with
    all cores).  ``cpu_count`` is recorded because process-level
    speedup is hardware-gated.

Usage::

    PYTHONPATH=src python benchmarks/bench_dmopt.py [--smoke] [--out PATH]

``--smoke`` shrinks designs and repetition counts so the whole run fits
in CI; the JSON then carries ``"smoke": true`` and is not meant for
cross-PR comparison.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time
from pathlib import Path

from repro.core import DesignContext, dmopt_dose_range_sweep, optimize_dose_map
from repro.core.formulate import (
    BACKEND_REFERENCE,
    BACKEND_VECTOR,
    build_formulation,
)
from repro.experiments.harness import DMoptCell, run_dmopt_cells
from repro.netlist.designs import make_design

REPO_ROOT = Path(__file__).resolve().parent.parent


def _time(fn, repeats: int) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def bench_assembly(design: str, scale: float, grid: float,
                   repeats: int) -> dict:
    ctx = DesignContext(make_design(design, scale=scale))
    out = {
        "design": design,
        "n_gates": ctx.netlist.n_gates,
        "grid_size": grid,
    }
    # cold: the very first vectorized build pays the per-design array
    # extraction (cached on the context afterwards)
    t0 = time.perf_counter()
    build_formulation(ctx, grid, backend=BACKEND_VECTOR)
    out["vector_cold"] = time.perf_counter() - t0
    out["vector_warm"] = _time(
        lambda: build_formulation(ctx, grid, backend=BACKEND_VECTOR), repeats
    )
    out["reference"] = _time(
        lambda: build_formulation(ctx, grid, backend=BACKEND_REFERENCE),
        max(2, repeats // 2),
    )
    out["speedup_warm"] = out["reference"] / out["vector_warm"]
    out["speedup_cold"] = out["reference"] / out["vector_cold"]
    return out


def bench_solve_warm(design: str, scale: float, grid: float) -> dict:
    out = {"design": design, "grid_size": grid, "modes": {}}
    ctx = DesignContext(make_design(design, scale=scale))
    for mode in ("qp", "qcp"):
        t0 = time.perf_counter()
        cold = optimize_dose_map(ctx, grid, mode=mode)
        t_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = optimize_dose_map(ctx, grid, mode=mode, warm_start=cold.solve)
        t_warm = time.perf_counter() - t0
        out["modes"][mode] = {
            "cold_iterations": cold.solve.iterations,
            "warm_iterations": warm.solve.iterations,
            "cold_time": t_cold,
            "warm_time": t_warm,
            "mct": cold.mct,
            "mct_drift": abs(warm.mct - cold.mct),
            "speedup": t_cold / t_warm if t_warm > 0 else float("inf"),
        }
    return out


def bench_sweep(design: str, scale: float, grid: float, ranges: list,
                mode: str) -> dict:
    ctx = DesignContext(make_design(design, scale=scale))
    out = {
        "design": design,
        "grid_size": grid,
        "mode": mode,
        "dose_ranges": list(ranges),
        "cpu_count": os.cpu_count(),
    }

    t0 = time.perf_counter()
    cold = [
        optimize_dose_map(ctx, grid, mode=mode, dose_range=r) for r in ranges
    ]
    out["serial_cold"] = time.perf_counter() - t0
    out["serial_cold_iterations"] = sum(r.solve.iterations for r in cold)

    t0 = time.perf_counter()
    chained = dmopt_dose_range_sweep(ctx, grid, ranges, mode=mode)
    out["serial_warm"] = time.perf_counter() - t0
    out["serial_warm_iterations"] = sum(r.solve.iterations for r in chained)
    out["warm_speedup"] = out["serial_cold"] / out["serial_warm"]

    cells = [
        DMoptCell(design, grid, mode=mode, dose_range=r, scale=scale)
        for r in ranges
    ]
    t0 = time.perf_counter()
    run_dmopt_cells(cells, jobs=0)  # all cores
    out["parallel_all_cores"] = time.perf_counter() - t0
    out["parallel_speedup"] = out["serial_cold"] / out["parallel_all_cores"]
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny designs / few repeats (CI health check)")
    ap.add_argument("--out", default=None,
                    help="output path (default: BENCH_dmopt.json at the repo "
                         "root, or BENCH_dmopt_smoke.json under --smoke so a "
                         "smoke run never clobbers the tracked numbers)")
    args = ap.parse_args(argv)
    if args.out is None:
        name = "BENCH_dmopt_smoke.json" if args.smoke else "BENCH_dmopt.json"
        args.out = str(REPO_ROOT / name)
    out_path = Path(args.out)
    if not out_path.parent.is_dir():
        ap.error(f"output directory does not exist: {out_path.parent}")

    if args.smoke:
        designs = [("AES-65", 0.3)]
        grid, repeats = 30.0, 3
        sweep_ranges = [4.0, 5.0]
    else:
        designs = [("AES-65", 1.0), ("JPEG-65", 1.0)]
        grid, repeats = 10.0, 5
        sweep_ranges = [3.0, 4.0, 5.0]

    report = {
        "smoke": args.smoke,
        "units": "seconds (median wall clock)",
        "assembly": [],
        "solve_warm": [],
        "sweep": [],
    }
    for design, scale in designs:
        r = bench_assembly(design, scale, grid, repeats)
        print(f"assembly    {design:8s} ({r['n_gates']} gates): "
              f"ref {r['reference'] * 1e3:.1f}ms  "
              f"vec {r['vector_warm'] * 1e3:.1f}ms warm "
              f"({r['vector_cold'] * 1e3:.1f}ms cold)  "
              f"{r['speedup_warm']:.1f}x")
        report["assembly"].append(r)
    for design, scale in designs:
        r = bench_solve_warm(design, scale, grid)
        for mode, m in r["modes"].items():
            print(f"solve_warm  {design:8s} {mode}: "
                  f"cold {m['cold_iterations']} iters/{m['cold_time']:.2f}s  "
                  f"warm {m['warm_iterations']} iters/{m['warm_time']:.2f}s  "
                  f"{m['speedup']:.1f}x")
        report["solve_warm"].append(r)
    for design, scale in designs[:1]:
        r = bench_sweep(design, scale, grid, sweep_ranges, mode="qcp")
        print(f"sweep       {design:8s} qcp x{len(sweep_ranges)}: "
              f"cold {r['serial_cold']:.2f}s  warm {r['serial_warm']:.2f}s  "
              f"parallel {r['parallel_all_cores']:.2f}s "
              f"({r['cpu_count']} cores)")
        report["sweep"].append(r)

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
