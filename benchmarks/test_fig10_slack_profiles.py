"""Fig. 10: slack profiles of AES-65 through the optimization stages.

Reproduction targets: worst slack improves Orig -> DMopt -> dosePl; the
Bias design (max dose on all top-K critical path gates) shows further
headroom but at a dramatic leakage cost.
"""

import re

from repro.experiments import fig10_slack_profiles


def _worst_slacks(table):
    note = next(n for n in table.notes if n.startswith("worst slack"))
    vals = re.findall(r"([+-]\d+\.\d+)", note)
    return tuple(float(v) for v in vals)  # orig, dmopt, dosepl, bias


def _check(table):
    orig, dmopt, dosepl, bias = _worst_slacks(table)
    assert dmopt >= orig + 1e-6, "DMopt must improve the worst slack"
    assert dosepl >= dmopt - 1e-9, "dosePl must not lose DMopt's gain"
    assert bias >= dmopt - 1e-9, "max-dose bias bounds the achievable slack"

    note = next(n for n in table.notes if "Bias leakage" in n)
    bias_leak, base_leak = (
        float(v) for v in re.findall(r"(\d+\.\d+) uW", note)
    )
    assert bias_leak > 1.05 * base_leak, "headroom must cost leakage"

    totals = [
        sum(table.column(c)) for c in ("Orig", "DMopt", "dosePl", "Bias")
    ]
    assert max(totals) - min(totals) < 0.6 * max(totals)


def test_fig10(benchmark, save_result):
    table = benchmark.pedantic(
        lambda: fig10_slack_profiles("AES-65", grid_size=5.0),
        rounds=1,
        iterations=1,
    )
    save_result(table, "fig10_slack_profiles")
    _check(table)
