"""Extension benchmark: across-wafer delay-variation minimization.

The paper's Section VI names this as ongoing work: "extension of the
dose map optimization methodology to minimize the delay variation of
different chips across the wafer or the exposure field".  This bench
exercises our implementation of it and records the wafer-level table.
"""

from repro.experiments import get_context
from repro.experiments.harness import TableResult
from repro.wafer import Wafer, equalize_wafer_timing


def _run():
    ctx = get_context("AES-65")
    rows = []
    for bias in (2.0, 4.0, 8.0):
        wafer = Wafer(radial_cd_bias_nm=bias)
        res = equalize_wafer_timing(ctx, wafer)
        target = ctx.baseline.mct * 1.01
        rows.append(
            [
                bias,
                wafer.n_dies,
                res.spread_before * 1e3,
                res.spread_after * 1e3,
                res.timing_yield(target, after=False) * 100.0,
                res.timing_yield(target) * 100.0,
            ]
        )
    return TableResult(
        exp_id="Extension (Sec. VI)",
        title="Across-wafer MCT equalization via per-field dose offsets "
        "(AES-65)",
        headers=[
            "edge bias nm", "dies",
            "spread before ps", "spread after ps",
            "yield before %", "yield after %",
        ],
        rows=rows,
    )


def _check(table):
    for row in table.rows:
        _bias, _dies, sb, sa, yb, ya = row
        assert sa < 0.5 * sb, "equalization must halve the MCT spread"
        assert ya >= yb, "timing yield must not degrade"
    # larger systematic bias -> larger uncorrected spread
    spreads = table.column("spread before ps")
    assert spreads == sorted(spreads)
    # the worst-bias wafer still recovers to high yield
    assert table.rows[-1][5] > 90.0


def test_wafer_extension(benchmark, save_result):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result(table, "extension_wafer")
    _check(table)
