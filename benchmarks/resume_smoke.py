"""CI resume smoke: interrupt a traced cell run, resume, diff the rows.

Runs the Table IV-style DMopt cells serially with a checkpoint and
telemetry manifest, simulates a mid-run kill by tearing the checkpoint
after the second record (a truncated trailing line, exactly what an
interrupted ``fsync``'d append leaves behind), then restarts with
resume and asserts:

* the resumed rows are byte-identical to the uninterrupted run
  (wall-clock ``runtime`` excluded, by design);
* exactly the surviving cells were served from the checkpoint
  (``checkpoint_hit`` telemetry count);
* the run manifest validates against the telemetry schema.

Exits non-zero on any mismatch.

Usage::

    PYTHONPATH=src python benchmarks/resume_smoke.py
"""

import json
import os
import sys
import tempfile


def _rows_sans_runtime(rows):
    return [
        json.dumps({k: v for k, v in r.items() if k != "runtime"},
                   sort_keys=True)
        for r in rows
    ]


def main() -> int:
    from repro import telemetry
    from repro.experiments.harness import DMoptCell, run_dmopt_cells

    cells = [
        DMoptCell("AES-65", 30.0, mode="qp", scale=0.3),
        DMoptCell("AES-65", 30.0, mode="qcp", scale=0.3),
        DMoptCell("AES-65", 50.0, mode="qp", scale=0.3),
    ]

    with tempfile.TemporaryDirectory() as tmp:
        ck = os.path.join(tmp, "cells.jsonl")
        manifest = os.path.join(tmp, "trace.jsonl")
        telemetry.configure(enabled=True, path=manifest)
        try:
            reference = run_dmopt_cells(cells, jobs=1, checkpoint=ck)
            assert all(r["status"] == "solved" for r in reference)

            # interrupt: keep 2 complete records + a torn third line
            with open(ck, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
            assert len(lines) == len(cells)
            with open(ck, "w", encoding="utf-8") as fh:
                fh.write("\n".join(lines[:2]) + "\n")
                fh.write(lines[2][: len(lines[2]) // 2])

            resumed = run_dmopt_cells(cells, jobs=1, checkpoint=ck)
        finally:
            telemetry.reset()

        if _rows_sans_runtime(resumed) != _rows_sans_runtime(reference):
            print("FAIL: resumed rows differ from the uninterrupted run",
                  file=sys.stderr)
            return 1

        events = [json.loads(line) for line in open(manifest)]
        hits = [e for e in events if e["event"] == "checkpoint_hit"]
        if len(hits) != 2:
            print(f"FAIL: expected 2 checkpoint hits, saw {len(hits)}",
                  file=sys.stderr)
            return 1

        n, errors = telemetry.validate_manifest(manifest)
        if errors:
            print("FAIL: manifest schema errors:", *errors, sep="\n  ",
                  file=sys.stderr)
            return 1
        print(f"resume smoke OK: {len(cells)} rows byte-identical, "
              f"2 cells resumed from checkpoint, {n} manifest events valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
