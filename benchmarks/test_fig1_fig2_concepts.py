"""Figs. 1-2: actuator-profile and dose-sensitivity concept data.

These are concept illustrations in the paper; their mathematical content
(profile families, the negative-Ds CD line) is rendered as data series so
the figure coverage is complete.  Fig. 9 (cell bounding box) has no data
content; its math is Placement.neighborhood_bbox, tested in
tests/test_placement.py.
"""

import numpy as np
import pytest

from repro.experiments import fig1_dose_profiles, fig2_dose_sensitivity


def test_fig1(benchmark, save_result):
    table = benchmark.pedantic(fig1_dose_profiles, rounds=1, iterations=1)
    save_result(table, "fig1_dose_profiles")
    slit = np.array(table.column("slit dose %"))
    # the default filter is quadratic and symmetric
    assert np.allclose(slit, slit[::-1])
    scan = np.array(table.column("scan dose %"))
    assert scan.std() > 0  # the Legendre profile actually modulates


def test_fig2(benchmark, save_result):
    table = benchmark.pedantic(fig2_dose_sensitivity, rounds=1, iterations=1)
    save_result(table, "fig2_dose_sensitivity")
    doses = np.array(table.column("dose %"))
    cds = np.array(table.column("CD nm"))
    slope = np.polyfit(doses, cds, 1)[0]
    assert slope < 0, "increasing dose must decrease CD"
    assert slope == pytest.approx(-2.0)  # the paper's typical Ds
