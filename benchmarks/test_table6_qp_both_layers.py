"""Table VI: QP leakage optimization with simultaneous gate length and
width modulation (poly + active layers), 65 nm designs.

Reproduction target: both-layer leakage improvement is >= poly-only
(the extra gamma*dW term only adds freedom for the QP objective), but
the margin is slight.
"""

from repro.experiments import table6


def _check(table):
    for row in table.rows:
        poly_imp, both_imp = row[3], row[5]
        assert both_imp >= poly_imp - 1.0, (
            f"{row[0]} {row[1]}: adding the width knob should not lose "
            f"more than fit-error noise"
        )
        assert poly_imp > 0.0 and both_imp > 0.0, f"{row[0]} {row[1]}"
    deltas = [row[5] - row[3] for row in table.rows]
    assert max(deltas) < 12.0, "width-knob gain should be slight"


def test_table6(benchmark, save_result):
    table = benchmark.pedantic(table6, rounds=1, iterations=1)
    save_result(table, "table6_qp_both_layers")
    _check(table)
