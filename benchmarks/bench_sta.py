#!/usr/bin/env python
"""STA engine benchmark: vector vs reference backend.

Times three workloads on the AES-like and JPEG-like designs and writes
``BENCH_sta.json`` at the repo root so the perf trajectory is tracked
across PRs:

``full_sta``
    One golden STA pass (random snapped per-gate doses) from a cold
    analyzer state.
``trial_swap``
    Per-swap trial timing inside a dosePl-style loop: swap two cells,
    re-time, undo.  Reference backend = full re-analysis; vector
    backend = ``update_placement`` + incremental ``trial_mct``.
``dosepl_e2e``
    The dosePl pass end-to-end on a scaled-down design, per backend.

Usage::

    PYTHONPATH=src python benchmarks/bench_sta.py [--smoke] [--out PATH]

``--smoke`` shrinks designs and repetition counts so the whole run fits
in CI; the JSON then carries ``"smoke": true`` and is not meant for
cross-PR comparison.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import time
from pathlib import Path

from repro.core import DesignContext, DoseplConfig, optimize_dose_map, run_dosepl
from repro.netlist.designs import make_design
from repro.placement import place_design
from repro.sta import make_analyzer

REPO_ROOT = Path(__file__).resolve().parent.parent


def _time(fn, repeats: int) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def _random_doses(netlist, library, seed: int) -> dict:
    rng = random.Random(seed)
    return {
        g: (
            library.snap_dose(rng.uniform(-6.0, 6.0)),
            library.snap_dose(rng.uniform(-6.0, 6.0)),
        )
        for g in netlist.gates
    }


def bench_full_sta(design: str, scale: float, repeats: int) -> dict:
    bundle = make_design(design, scale=scale)
    placement = place_design(bundle, seed=7)
    doses = _random_doses(bundle.netlist, bundle.library, seed=5)

    out = {"design": design, "n_gates": bundle.netlist.n_gates}
    for backend in ("reference", "vector"):
        eng = make_analyzer(
            bundle.netlist, bundle.library, placement, backend=backend
        )
        eng.analyze(doses=doses)  # warm caches / compile once
        if backend == "vector":
            # cold per-call state: a fresh rebind each run, so the
            # measurement includes geometry build + full propagation
            out[backend] = _time(
                lambda: eng.rebind(placement).analyze(doses=doses), repeats
            )
        else:
            out[backend] = _time(lambda: eng.analyze(doses=doses), repeats)
    out["speedup"] = out["reference"] / out["vector"]
    return out


def bench_trial_swap(design: str, scale: float, n_swaps: int) -> dict:
    bundle = make_design(design, scale=scale)
    netlist, library = bundle.netlist, bundle.library
    placement = place_design(bundle, seed=7)
    doses = _random_doses(netlist, library, seed=5)
    rng = random.Random(11)
    gates = list(netlist.gates)
    swaps = [tuple(rng.sample(gates, 2)) for _ in range(n_swaps)]

    ref = make_analyzer(netlist, library, placement, backend="reference")
    ref.analyze(doses=doses)
    t0 = time.perf_counter()
    for a, b in swaps:
        placement.swap(a, b)
        ref.analyze(doses=doses).mct  # noqa: B018 - full re-time per swap
        placement.swap(a, b)
    t_ref = (time.perf_counter() - t0) / n_swaps

    vec = make_analyzer(netlist, library, placement, backend="vector")
    vec.mct(doses)
    t0 = time.perf_counter()
    for a, b in swaps:
        placement.swap(a, b)
        vec.update_placement((a, b))
        vec.trial_mct()
        placement.swap(a, b)
        vec.update_placement((a, b))
        vec.trial_mct()
    t_vec = (time.perf_counter() - t0) / (2 * n_swaps)

    return {
        "design": design,
        "n_gates": netlist.n_gates,
        "n_swaps": n_swaps,
        "reference": t_ref,
        "vector": t_vec,
        "speedup": t_ref / t_vec,
    }


def bench_dosepl(design: str, scale: float, rounds: int) -> dict:
    out = {"design": design}
    for backend in ("reference", "vector"):
        ctx = DesignContext(
            make_design(design, scale=scale), sta_backend=backend
        )
        qcp = optimize_dose_map(ctx, grid_size=5.0, mode="qcp")
        cfg = DoseplConfig(top_k=200, rounds=rounds)
        t0 = time.perf_counter()
        res = run_dosepl(ctx, qcp.dose_map_poly, config=cfg)
        out[backend] = time.perf_counter() - t0
        out[f"{backend}_mct"] = res.mct
    out["speedup"] = out["reference"] / out["vector"]
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny designs / few repeats (CI health check)")
    ap.add_argument("--out", default=None,
                    help="output path (default: BENCH_sta.json at the repo "
                         "root, or BENCH_sta_smoke.json under --smoke so a "
                         "smoke run never clobbers the tracked numbers)")
    args = ap.parse_args(argv)
    if args.out is None:
        name = "BENCH_sta_smoke.json" if args.smoke else "BENCH_sta.json"
        args.out = str(REPO_ROOT / name)
    out_path = Path(args.out)
    if not out_path.parent.is_dir():
        ap.error(f"output directory does not exist: {out_path.parent}")

    if args.smoke:
        designs = [("AES-65", 0.2)]
        repeats, n_swaps, dp_rounds, dp_scale = 2, 5, 2, 0.2
    else:
        designs = [("AES-65", 1.0), ("JPEG-65", 1.0)]
        repeats, n_swaps, dp_rounds, dp_scale = 5, 20, 4, 0.5

    report = {
        "smoke": args.smoke,
        "units": "seconds (median wall clock; trial_swap is per swap)",
        "full_sta": [],
        "trial_swap": [],
        "dosepl_e2e": [],
    }
    for design, scale in designs:
        r = bench_full_sta(design, scale, repeats)
        print(f"full_sta    {design:8s} ({r['n_gates']} gates): "
              f"ref {r['reference']:.4f}s  vec {r['vector']:.4f}s  "
              f"{r['speedup']:.1f}x")
        report["full_sta"].append(r)
        r = bench_trial_swap(design, scale, n_swaps)
        print(f"trial_swap  {design:8s} ({r['n_gates']} gates): "
              f"ref {r['reference']:.4f}s  vec {r['vector']:.4f}s  "
              f"{r['speedup']:.1f}x")
        report["trial_swap"].append(r)
    for design, _scale in designs[:1]:
        r = bench_dosepl(design, dp_scale, dp_rounds)
        print(f"dosepl_e2e  {design:8s}: ref {r['reference']:.2f}s  "
              f"vec {r['vector']:.2f}s  {r['speedup']:.1f}x")
        report["dosepl_e2e"].append(r)

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
