"""CI chaos lane: run the pipeline with every fault injector armed.

Exercises the recovery paths end-to-end with deterministic
``REPRO_CHAOS`` injections (see :mod:`repro.resilience.chaos`):

1. a worker hard-crash is retried in the parent (pool restart path),
   while an injected hang is killed by the watchdog and reported as a
   diagnostic ``timeout`` row -- the rest of the run completes;
2. a checkpoint append torn mid-write is not committed, the torn tail
   is repaired, and the work re-runs on resume;
3. a faked NaN (diverged) primary solver attempt is recovered by the
   fallback chain.

Exits non-zero on any broken contract.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py
"""

import json
import math
import os
import sys
import tempfile


def _set_chaos(conf):
    from repro.resilience import chaos

    os.environ[chaos.ENV_FLAG] = json.dumps(conf)
    chaos.reset()


def main() -> int:
    from repro.experiments.harness import (
        DMoptCell,
        STATUS_TIMEOUT,
        run_dmopt_cells,
    )
    from repro.resilience import chaos
    from repro.resilience.checkpoint import CheckpointStore
    from repro.solver import solve_qp_robust

    import numpy as np

    cells = [
        DMoptCell("AES-65", 30.0, mode="qp", scale=0.3),
        DMoptCell("AES-65", 30.0, mode="qcp", scale=0.3),
        DMoptCell("AES-65", 50.0, mode="qp", scale=0.3),
    ]

    # 1a. worker hard-crash: pool restarted, cell retried in the parent
    # (kept separate from the hang injection -- a broken pool degrades
    # the rest of the run to the parent's serial path, which is
    # deliberately watchdog-free)
    _set_chaos({"worker_crash": {"indices": [0]}})
    rows = run_dmopt_cells(cells[:2], jobs=2)
    assert [r["status"] for r in rows] == ["solved", "solved"], rows
    print("chaos 1/4: worker crash retried, run completed")

    # 1b. hung solve under the watchdog: killed at the deadline,
    # reported as a diagnostic timeout row, rest completes
    _set_chaos({"slow_solve": {"indices": [2], "seconds": 600}})
    rows = run_dmopt_cells(cells, jobs=2, cell_timeout=3.0)
    assert rows[0]["status"] == "solved", rows[0]
    assert rows[1]["status"] == "solved", rows[1]
    assert rows[2]["status"] == STATUS_TIMEOUT, rows[2]
    assert math.isnan(rows[2]["mct"])
    print("chaos 2/4: hang killed at deadline, run completed")

    # 2. torn checkpoint append: not committed, repaired, re-run works
    _set_chaos({"corrupt_checkpoint": {"nth": 1}})
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "ck.jsonl")
        store = CheckpointStore(path)
        assert store.put("k1", {"a": 1}) is False  # torn mid-write
        assert store.get("k1") is None
        assert store.put("k1", {"a": 1}) is True  # tail repaired
        store.close()
        reloaded = CheckpointStore(path)
        assert reloaded.get("k1") == {"a": 1}
        assert reloaded.corrupt_lines == 0
    print("chaos 3/4: torn checkpoint append repaired and re-committed")

    # 3. faked diverged primary attempt: fallback chain recovers
    _set_chaos({"solver_nan": {"nth": 1}})
    n = 6
    res = solve_qp_robust(
        np.eye(n), -np.ones(n), np.eye(n), -np.ones(n), np.ones(n)
    )
    assert res.ok, res
    assert len(res.info.get("attempts", [])) > 1, res.info
    print("chaos 4/4: injected solver NaN recovered by the fallback chain")

    del os.environ[chaos.ENV_FLAG]
    chaos.reset()
    print("chaos smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
