"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper, prints it,
saves it under ``benchmarks/results/`` and asserts the paper's
qualitative claims (signs, orderings, rough factors) hold on the
synthetic testcases.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    """Persist a TableResult under benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(table, name: str):
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(table.format() + "\n")
        print()
        print(table.format())
        return path

    return _save
