"""Table IV: DMopt on the poly layer -- the paper's headline result.

Reproduction targets:
* QP rows: leakage reduced at (essentially) unchanged MCT,
* QCP rows: MCT reduced at (essentially) unchanged leakage,
* finer grids -> larger improvements,
* the 90 nm AES (fewer cells per grid, no slack hill) improves more than
  the 65 nm AES under the QCP.
"""

from repro.experiments import GRID_SIZES, table4

DESIGNS = ("AES-65", "JPEG-65", "AES-90", "JPEG-90")


def _rows_for(table, design):
    return [r for r in table.rows if r[0] == design]


def _check_qp_rows(table):
    for design in DESIGNS:
        for row in _rows_for(table, design):
            qp_mct_imp, qp_leak_imp = row[3], row[5]
            assert qp_leak_imp > -0.1, f"{design} {row[1]}: QP leakage worse"
            assert qp_mct_imp > -0.3, f"{design} {row[1]}: QP degraded timing"


def _check_qcp_rows(table):
    for design in DESIGNS:
        for row in _rows_for(table, design):
            qcp_mct_imp, qcp_leak_imp = row[8], row[10]
            assert qcp_mct_imp > 0.0, f"{design} {row[1]}: QCP no MCT gain"
            assert qcp_leak_imp > -3.0, f"{design} {row[1]}: QCP leaked"


def _check_grid_trends(table):
    """Paper: 'the finer the rectangular grids, the greater the
    improvement'."""
    for design in DESIGNS:
        rows = _rows_for(table, design)
        qp_leak_imps = [r[5] for r in rows]  # ordered fine -> coarse
        qcp_mct_imps = [r[8] for r in rows]
        assert qp_leak_imps[0] >= qp_leak_imps[-1] - 0.5, design
        assert qcp_mct_imps[0] >= qcp_mct_imps[-1] - 0.5, design


def _check_magnitudes(table):
    # 5x5 um QP leakage reduction is substantial everywhere (paper:
    # 8.5-25 %)
    for design in DESIGNS:
        row = _rows_for(table, design)[0]
        assert row[5] > 4.0, f"{design}: expected substantial leakage win"
    # 5x5 um QCP MCT gains are substantial everywhere (paper: 1.9-8.2 %).
    # NOTE: the paper's *cross-node* ordering (90 nm improves more than
    # 65 nm) rests on its 65 nm testcases' extreme near-critical path
    # "hill" (16.5 % of paths within 95 % of MCT), which our 1/7-scale
    # synthetic analogues only partially reproduce -- see EXPERIMENTS.md.
    for design in DESIGNS:
        row = _rows_for(table, design)[0]
        assert row[8] > 1.5, f"{design}: expected substantial QCP MCT win"
    # grid size sets follow the paper (coarsest differs per node)
    assert set(r[1] for r in _rows_for(table, "AES-65")) == {
        f"{g:.0f}x{g:.0f}" for g in GRID_SIZES["65nm"]
    }
    assert set(r[1] for r in _rows_for(table, "JPEG-90")) == {
        f"{g:.0f}x{g:.0f}" for g in GRID_SIZES["90nm"]
    }


def test_table4(benchmark, save_result):
    table = benchmark.pedantic(table4, rounds=1, iterations=1)
    save_result(table, "table4_dmopt_poly")
    _check_qp_rows(table)
    _check_qcp_rows(table)
    _check_grid_trends(table)
    _check_magnitudes(table)
