"""Table III: uniform poly-layer dose sweep on AES-90.

Same structure as Table II at 90 nm; additionally checks the cross-node
contrast the paper's data shows: the 90 nm leakage penalty at +5 % dose
(~-90 %) is milder than the 65 nm one (~-155 %).
"""

from repro.experiments import paper_data, table2, table3


def _check(table):
    doses = [float(d) for d in table.column("dose %")]
    by_dose = dict(
        zip(doses, zip(table.column("MCT imp %"), table.column("leak imp %")))
    )
    mct_p5, leak_p5 = by_dose[5.0]
    mct_m5, leak_m5 = by_dose[-5.0]
    paper_p5 = paper_data.TABLE3_AES90[5.0]
    # wider low-side band than Table II: our synthetic AES-90 carries a
    # larger wire-delay fraction (dose cannot speed wires), so the MCT
    # lever is weaker than the paper's testbed at the same dose
    assert 0.5 * paper_p5[0] <= mct_p5 <= 1.6 * paper_p5[0]
    assert leak_p5 < -50.0  # large leakage increase at max dose
    assert leak_m5 > 20.0  # large leakage saving at min dose
    assert mct_m5 < -5.0

    mcts = table.column("MCT ns")
    assert all(b < a for a, b in zip(mcts, mcts[1:]))


def _check_cross_node(t90):
    """65 nm pays a steeper leakage price for dose than 90 nm."""
    t65 = table2()  # cached sweep from Table II's context

    def at(table, dose):
        idx = [float(d) for d in table.column("dose %")].index(dose)
        return table.column("leak imp %")[idx]

    assert at(t65, 5.0) < at(t90, 5.0) < 0


def test_table3(benchmark, save_result):
    table = benchmark.pedantic(table3, rounds=1, iterations=1)
    save_result(table, "table3_dose_sweep_aes90")
    _check(table)
    _check_cross_node(table)
