"""Baseline benchmark: knob-granularity comparison.

Three leakage-recovery knobs at fixed timing, ordered by granularity:

1. **uniform dose** (chip-wide, the pre-paper knob) -- cannot reduce
   leakage without breaking timing (Tables II/III),
2. **dose map** (per-grid with smoothness, this paper's knob) -- large
   recovery, zero mask cost,
3. **per-cell gate-length biasing** (Gupta et al. [4], requires mask
   change) -- the upper bound on recovery.

The paper's footnote-2 positioning is exactly this ordering; the bench
verifies it and records how much of the mask-change headroom the
mask-free dose map captures.
"""

from repro.core import bias_gate_lengths, optimize_dose_map, uniform_dose_sweep
from repro.experiments import get_context
from repro.experiments.harness import TableResult


def _run():
    ctx = get_context("AES-65")

    # best uniform dose that does not degrade timing: only d <= 0 keeps
    # MCT, and any d < 0 degrades it; so the best timing-safe uniform
    # leakage improvement is ~0
    uniform = [
        p
        for p in uniform_dose_sweep(ctx, doses=[-1.0, -0.5, 0.0])
        if p.mct <= ctx.baseline.mct * 1.0001
    ]
    best_uniform = max(p.leakage_improvement_pct for p in uniform)

    dm = optimize_dose_map(ctx, 5.0, mode="qp")
    gl = bias_gate_lengths(ctx)

    rows = [
        ["uniform dose (timing-safe)", best_uniform, 0.0, "none"],
        ["dose map QP 5x5 um", dm.leakage_improvement_pct,
         dm.mct_improvement_pct, "none"],
        ["per-cell GL bias [4]", gl.leakage_improvement_pct,
         gl.mct_improvement_pct, "mask respin"],
    ]
    table = TableResult(
        exp_id="Baseline ([4])",
        title="Leakage recovery at fixed timing, by knob granularity "
        "(AES-65)",
        headers=["knob", "leak imp %", "MCT imp %", "cost"],
        rows=rows,
    )
    captured = dm.leakage_improvement_pct / max(
        gl.leakage_improvement_pct, 1e-9
    )
    table.notes.append(
        f"the mask-free dose map captures {captured * 100:.0f}% of the "
        "mask-change biasing headroom"
    )
    return table


def _check(table):
    imps = table.column("leak imp %")
    uniform, dose_map, glbias = imps
    assert uniform <= 0.5, "uniform dose must not recover leakage safely"
    assert dose_map > 10.0, "dose map must recover substantial leakage"
    assert glbias >= dose_map - 0.5, "per-cell biasing is the upper bound"
    for mct_imp in table.column("MCT imp %"):
        assert mct_imp > -0.3, "all knobs must hold timing"


def test_knob_granularity(benchmark, save_result):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result(table, "baseline_glbias")
    _check(table)
