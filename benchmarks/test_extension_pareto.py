"""Extension benchmark: the timing-leakage Pareto frontier.

The paper's QP and QCP are two cuts through one trade-off surface; this
bench traces the frontier by sweeping the QCP leakage budget on AES-65
and checks its structure (monotonicity; a knee exists between the
endpoints; diminishing returns).
"""

from repro.core import is_frontier_monotone, knee_point, tradeoff_curve
from repro.experiments import get_context
from repro.experiments.harness import TableResult

BUDGETS = (-10.0, -5.0, 0.0, 5.0, 10.0, 20.0, 40.0)


def _run():
    ctx = get_context("AES-65")
    points = tradeoff_curve(ctx, grid_size=10.0, budgets_pct=BUDGETS)
    rows = [
        [p.budget_pct, p.mct, p.mct_improvement_pct, p.leakage,
         p.leakage_improvement_pct]
        for p in points
    ]
    table = TableResult(
        exp_id="Extension (Pareto)",
        title="MCT vs leakage-budget frontier (AES-65, 10 um grids, QCP)",
        headers=["budget %", "MCT ns", "MCT imp %", "leakage uW",
                 "leak imp %"],
        rows=rows,
    )
    knee = knee_point(points)
    table.notes.append(
        f"knee at budget {knee.budget_pct:+.0f}% "
        f"(MCT {knee.mct:.3f} ns, leakage {knee.leakage:.1f} uW)"
    )
    table.notes.append(
        "monotone frontier: "
        + str(is_frontier_monotone(points, tol=5e-3))
    )
    return table


def _check(table):
    mcts = table.column("MCT ns")
    # monotone within snap noise
    assert all(b <= a + 5e-3 for a, b in zip(mcts, mcts[1:]))
    # diminishing returns: MCT gained per percent of budget shrinks as
    # the budget grows
    by_budget = dict(zip(table.column("budget %"), mcts))
    gain_early = (by_budget[0.0] - by_budget[10.0]) / 10.0
    gain_late = (by_budget[20.0] - by_budget[40.0]) / 20.0
    assert gain_early >= gain_late - 1e-4
    # tightest budget still beats or matches baseline timing
    assert table.rows[0][2] > -0.5


def test_pareto_frontier(benchmark, save_result):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result(table, "extension_pareto")
    _check(table)
