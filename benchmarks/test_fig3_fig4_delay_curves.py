"""Fig. 3 / Fig. 4: inverter delay vs gate length and width.

Checks the linearity properties the paper's problem formulation rests on.
"""

import numpy as np

from repro.experiments import fig3_delay_vs_length, fig4_delay_vs_width


def _linearity(xs, ys):
    """Max |residual| of a linear fit, relative to the data swing."""
    coeffs = np.polyfit(xs, ys, 1)
    resid = np.asarray(ys) - np.polyval(coeffs, xs)
    return float(np.max(np.abs(resid)) / (max(ys) - min(ys))), coeffs[0]


def test_fig3_delay_vs_length(benchmark, save_result):
    table = benchmark.pedantic(fig3_delay_vs_length, rounds=1, iterations=1)
    save_result(table, "fig3_delay_vs_length")
    for col in ("TPLH ns", "TPHL ns"):
        rel_resid, slope = _linearity(table.column("L nm"), table.column(col))
        assert slope > 0, "delay must increase with gate length"
        assert rel_resid < 0.03, "paper: delay ~linear in L near nominal"


def test_fig4_delay_vs_width(benchmark, save_result):
    table = benchmark.pedantic(fig4_delay_vs_width, rounds=1, iterations=1)
    save_result(table, "fig4_delay_vs_width")
    for col in ("TPLH ns", "TPHL ns"):
        rel_resid, slope = _linearity(table.column("dW nm"), table.column(col))
        assert slope < 0, "delay must decrease as width grows"
        assert rel_resid < 0.03, "paper: delay ~linear in dW"


def test_fig3_90nm_variant(benchmark, save_result):
    table = benchmark.pedantic(
        lambda: fig3_delay_vs_length("90nm"), rounds=1, iterations=1
    )
    save_result(table, "fig3_delay_vs_length_90nm")
    ys = table.column("TPHL ns")
    assert ys == sorted(ys)
