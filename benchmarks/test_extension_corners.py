"""Extension benchmark: corner-aware dose map optimization.

One physical dose map must satisfy all PVT corners: timing binds at
SS/0.9V/125C, leakage at FF/1.1V/125C.  This bench runs the two-corner
QCP on AES-65 and reports per-corner golden numbers for the single map.
"""

from repro.core import corner_context, optimize_dose_map_corners
from repro.experiments import get_context
from repro.experiments.harness import TableResult
from repro.tech import corner_node


def _run():
    ctx = get_context("AES-65")
    res = optimize_dose_map_corners(ctx, grid_size=10.0)

    # evaluate the single map at three corners
    node = ctx.library.node
    corners = {
        "SS 0.9V 125C": corner_node(node, "SS", 0.9, 125.0),
        "TT 1.0V 25C": None,  # the nominal context itself
        "FF 1.1V 125C": corner_node(node, "FF", 1.1, 125.0),
    }
    rows = []
    for label, cn in corners.items():
        cc = ctx if cn is None else corner_context(ctx, cn)
        golden, leak = cc.golden_eval(res.dose_map_poly)
        rows.append(
            [
                label,
                cc.baseline.mct,
                golden.mct,
                (cc.baseline.mct - golden.mct) / cc.baseline.mct * 100.0,
                cc.baseline_leakage,
                leak,
            ]
        )
    return TableResult(
        exp_id="Extension (corners)",
        title="One dose map signed off at three PVT corners (AES-65, "
        "10 um grids)",
        headers=["corner", "base MCT", "MCT", "MCT imp %",
                 "base leak", "leak"],
        rows=rows,
    )


def _check(table):
    for row in table.rows:
        label, base_mct, mct, imp, base_leak, leak = row
        assert mct < base_mct, f"{label}: timing must improve"
        assert leak <= base_leak * 1.03, f"{label}: leakage must hold"
    # corner ordering sanity: SS/low-V/hot is the slowest corner and
    # FF/high-V/hot the leakiest (note FF at 125C is NOT faster than TT
    # at 25C -- the hot mobility derate dominates the process/V gain)
    mcts = {r[0]: r[2] for r in table.rows}
    leaks = {r[0]: r[5] for r in table.rows}
    assert mcts["SS 0.9V 125C"] > mcts["TT 1.0V 25C"]
    assert mcts["SS 0.9V 125C"] > mcts["FF 1.1V 125C"]
    assert leaks["FF 1.1V 125C"] > leaks["TT 1.0V 25C"]


def test_corner_aware_dmopt(benchmark, save_result):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result(table, "extension_corners")
    _check(table)
