"""Table VII: timing-criticality concentration of the testcases.

Reproduction targets (the orderings the paper's Section V argument
rests on):
* AES-65 has the densest near-critical 'hill',
* the 65 nm AES beats its 90 nm sibling at the 80 % threshold,
* JPEG-90 is the least critical design.
"""

from repro.experiments import table7


def _row(table, design):
    return next(r for r in table.rows if r[0] == design)


def _check(table):
    for other in ("JPEG-65", "AES-90", "JPEG-90"):
        assert _row(table, "AES-65")[3] > _row(table, other)[3], other
    assert _row(table, "AES-65")[3] > _row(table, "AES-90")[3]
    jpeg90 = _row(table, "JPEG-90")
    for design in ("AES-65", "AES-90"):
        assert _row(table, design)[2] >= jpeg90[2], design
    for row in table.rows:  # nested by construction
        assert row[1] <= row[2] <= row[3], row[0]


def test_table7(benchmark, save_result):
    table = benchmark.pedantic(table7, rounds=1, iterations=1)
    save_result(table, "table7_criticality")
    _check(table)
