.PHONY: install test bench bench-smoke bench-dmopt bench-dmopt-smoke bench-paper bench-compare chaos-smoke resume-smoke obs-report experiments examples lint clean

install:
	pip install -e .[test]

test:
	pytest tests/ -q

# Regenerate BENCH_sta.json (STA engine perf: full / incremental / dosePl e2e)
bench:
	PYTHONPATH=src python benchmarks/bench_sta.py

bench-smoke:
	PYTHONPATH=src python benchmarks/bench_sta.py --smoke

# Regenerate BENCH_dmopt.json (formulation assembly / warm starts / sweeps)
bench-dmopt:
	PYTHONPATH=src python benchmarks/bench_dmopt.py

bench-dmopt-smoke:
	PYTHONPATH=src python benchmarks/bench_dmopt.py --smoke

# Paper-reproduction benchmark suite (tables/figures timings)
bench-paper:
	pytest benchmarks/ --benchmark-only

# Fault-injection (REPRO_CHAOS) recovery-path smoke
chaos-smoke:
	PYTHONPATH=src python benchmarks/chaos_smoke.py

# Kill-and-resume checkpoint smoke (byte-identical rows)
resume-smoke:
	PYTHONPATH=src python benchmarks/resume_smoke.py

# Perf-regression gate: fresh bench smokes vs the committed baselines
bench-compare:
	PYTHONPATH=src python benchmarks/bench_sta.py --smoke --out /tmp/BENCH_sta_smoke.json
	PYTHONPATH=src python benchmarks/bench_dmopt.py --smoke --out /tmp/BENCH_dmopt_smoke.json
	PYTHONPATH=src python -m repro.obs compare BENCH_sta_smoke.json /tmp/BENCH_sta_smoke.json --tol 4.0 --allow-missing
	PYTHONPATH=src python -m repro.obs compare BENCH_dmopt_smoke.json /tmp/BENCH_dmopt_smoke.json --tol 4.0 --allow-missing

# Traced optimize run + manifest analysis (see docs/observability.md)
obs-report:
	PYTHONPATH=src python -m repro --trace /tmp/obs_demo.jsonl optimize AES-65 --grid 20 --mode qcp > /dev/null
	PYTHONPATH=src python -m repro.obs report /tmp/obs_demo.jsonl

experiments:
	python -m repro.experiments

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean:
	rm -rf .pytest_cache benchmarks/results **/__pycache__
