.PHONY: install test bench bench-smoke bench-dmopt bench-dmopt-smoke bench-paper chaos-smoke resume-smoke experiments examples lint clean

install:
	pip install -e .[test]

test:
	pytest tests/ -q

# Regenerate BENCH_sta.json (STA engine perf: full / incremental / dosePl e2e)
bench:
	PYTHONPATH=src python benchmarks/bench_sta.py

bench-smoke:
	PYTHONPATH=src python benchmarks/bench_sta.py --smoke

# Regenerate BENCH_dmopt.json (formulation assembly / warm starts / sweeps)
bench-dmopt:
	PYTHONPATH=src python benchmarks/bench_dmopt.py

bench-dmopt-smoke:
	PYTHONPATH=src python benchmarks/bench_dmopt.py --smoke

# Paper-reproduction benchmark suite (tables/figures timings)
bench-paper:
	pytest benchmarks/ --benchmark-only

# Fault-injection (REPRO_CHAOS) recovery-path smoke
chaos-smoke:
	PYTHONPATH=src python benchmarks/chaos_smoke.py

# Kill-and-resume checkpoint smoke (byte-identical rows)
resume-smoke:
	PYTHONPATH=src python benchmarks/resume_smoke.py

experiments:
	python -m repro.experiments

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean:
	rm -rf .pytest_cache benchmarks/results **/__pycache__
