.PHONY: install test bench experiments examples lint clean

install:
	pip install -e .[test]

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.experiments

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean:
	rm -rf .pytest_cache benchmarks/results **/__pycache__
