"""Tests for independent result certification (repro.core.certify)."""

import json

import pytest

from repro import telemetry
from repro.core import (
    CertificationError,
    DesignContext,
    certify_result,
    enforce_certificate,
    optimize_dose_map,
)
from repro.core.certify import (
    FAMILY_LEAKAGE,
    FAMILY_SIGNOFF,
    TOL_SNAP,
)
from repro.netlist import make_design
from repro.solver.diagnose import FAMILY_DOSE_RANGE, FAMILY_TIMING


@pytest.fixture(scope="module")
def ctx():
    return DesignContext(make_design("AES-65", scale=0.3))


class TestConvergedSolvesCertify:
    def test_qp(self, ctx):
        res = optimize_dose_map(ctx, 30.0, mode="qp")
        report = certify_result(ctx, res)
        assert report.ok, report.summary()
        assert res.certificate is report
        families = {c.family for c in report.checks}
        assert FAMILY_TIMING in families  # QP re-checks the clock bound
        assert FAMILY_SIGNOFF in families

    def test_qcp(self, ctx):
        res = optimize_dose_map(ctx, 30.0, mode="qcp")
        report = certify_result(ctx, res)
        assert report.ok, report.summary()
        families = {c.family for c in report.checks}
        assert FAMILY_LEAKAGE in families  # QCP re-checks the budget
        assert "certified" in report.summary()

    def test_recomputed_goldens_match_claim(self, ctx):
        res = optimize_dose_map(ctx, 30.0, mode="qcp")
        report = certify_result(ctx, res)
        assert report.recomputed_mct == pytest.approx(res.mct, rel=1e-12)
        assert report.recomputed_leakage == pytest.approx(
            res.leakage, rel=1e-12
        )


class TestPerturbedResultRejected:
    def test_out_of_range_dose_names_family(self, ctx):
        res = optimize_dose_map(ctx, 30.0, mode="qcp")
        res.dose_map_poly.values[0, 0] = res.formulation.dose_range + 4.0
        report = certify_result(ctx, res)
        assert not report.ok
        assert FAMILY_DOSE_RANGE in report.violated_families
        # the claimed goldens no longer reproduce either
        assert FAMILY_SIGNOFF in report.violated_families
        assert "dose_range" in report.summary()

    def test_enforce_raises_with_label(self, ctx):
        res = optimize_dose_map(ctx, 30.0, mode="qcp")
        res.dose_map_poly.values[0, 0] = 99.0
        report = certify_result(ctx, res)
        with pytest.raises(CertificationError, match="AES-65.*dose_range"):
            enforce_certificate(report, label="AES-65")

    def test_snap_slack_is_tolerated(self, ctx):
        # one snap step beyond the continuous bound is spec'd behaviour
        res = optimize_dose_map(ctx, 30.0, mode="qcp")
        dr = res.formulation.dose_range
        res.dose_map_poly.values[:] = 0.0
        res.dose_map_poly.values[0, 0] = dr + TOL_SNAP
        report = certify_result(ctx, res)
        range_check = next(
            c for c in report.checks if c.family == FAMILY_DOSE_RANGE
        )
        assert range_check.ok


class TestLeakageOvershootSemantics:
    """The guard compensates for quadratic-model error without bounding
    it (JPEG-65 at full scale overshoots by ~1.6 %), so the leakage
    family accepts a *declared* overshoot and fails only a silent one.
    """

    def test_declared_overshoot_certifies(self, ctx):
        # guard=0 makes golden leakage land over the budget by exactly
        # the model error; the result declares that in res.leakage
        res = optimize_dose_map(ctx, 30.0, mode="qcp", leakage_guard=0.0)
        assert res.ok
        report = certify_result(ctx, res)
        leak_check = next(
            c for c in report.checks if c.family == FAMILY_LEAKAGE
        )
        assert leak_check.ok, leak_check
        assert report.ok, report.summary()

    def test_silent_overshoot_rejected(self, ctx):
        import dataclasses

        res = optimize_dose_map(ctx, 30.0, mode="qcp")
        # claim leakage well under budget while the dose map's true
        # leakage sits near it: recomputation exceeds both the (shrunk)
        # budget and the claim -> silent overshoot
        lying = dataclasses.replace(
            res, leakage=0.9 * res.baseline_leakage
        )
        report = certify_result(
            ctx,
            lying,
            dose_range=res.formulation.dose_range,
            smoothness=res.formulation.smoothness,
            leakage_budget=-0.05 * res.baseline_leakage,
        )
        assert not report.ok
        assert FAMILY_LEAKAGE in report.violated_families
        assert FAMILY_SIGNOFF in report.violated_families


class TestFormulationFreeResults:
    def test_params_required(self, ctx):
        from repro.resilience.checkpoint import (
            dmopt_result_from_payload,
            dmopt_result_payload,
        )

        res = optimize_dose_map(ctx, 30.0, mode="qcp")
        resumed = dmopt_result_from_payload(dmopt_result_payload(res))
        with pytest.raises(ValueError, match="dose_range and smoothness"):
            certify_result(ctx, resumed)
        report = certify_result(ctx, resumed, dose_range=5.0, smoothness=2.0)
        assert report.ok, report.summary()


class TestHarnessEnforcement:
    def test_certified_cells_smoke(self):
        """Table IV/VI-style smoke cells all pass --certify."""
        from repro.experiments.harness import DMoptCell, run_dmopt_cells

        cells = [
            DMoptCell("AES-65", 30.0, mode="qp", scale=0.3),
            DMoptCell("AES-65", 30.0, mode="qcp", scale=0.3),
        ]
        rows = run_dmopt_cells(cells, jobs=1, certify=True)
        assert all(r["certified"] for r in rows)
        assert all("certified" in r["certificate"] for r in rows)

    def test_failed_certification_raises(self):
        from repro.experiments.harness import (
            CellCertificationError,
            DMoptCell,
            _enforce_certification,
        )

        cells = [DMoptCell("AES-65", 30.0, mode="qp", scale=0.3)]
        rows = [{"status": "solved", "certified": False,
                 "certificate": "certification FAILED (qp): dose_range"}]
        with pytest.raises(CellCertificationError, match="dose_range"):
            _enforce_certification(cells, rows)

    def test_timeout_rows_exempt(self):
        from repro.experiments.harness import (
            DMoptCell,
            STATUS_TIMEOUT,
            _enforce_certification,
        )

        cells = [DMoptCell("AES-65", 30.0, mode="qp", scale=0.3)]
        rows = [{"status": STATUS_TIMEOUT, "certified": False}]
        _enforce_certification(cells, rows)  # must not raise


class TestTelemetry:
    def test_certify_event_emitted(self, ctx, tmp_path, monkeypatch):
        manifest = tmp_path / "certify.jsonl"
        monkeypatch.setenv(telemetry.ENV_FLAG, "1")
        monkeypatch.setenv(telemetry.ENV_PATH, str(manifest))
        telemetry.reset()
        try:
            res = optimize_dose_map(ctx, 30.0, mode="qcp")
            certify_result(ctx, res)
        finally:
            telemetry.reset()
        events = [
            json.loads(line) for line in manifest.read_text().splitlines()
        ]
        cert = [e for e in events if e["event"] == "certify"]
        assert len(cert) == 1
        assert cert[0]["ok"] is True and cert[0]["mode"] == "qcp"
