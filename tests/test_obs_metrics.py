"""Tests for the metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro import telemetry
from repro.obs import metrics


@pytest.fixture
def manifest(tmp_path, monkeypatch):
    path = tmp_path / "run.jsonl"
    monkeypatch.setenv(telemetry.ENV_FLAG, "1")
    monkeypatch.setenv(telemetry.ENV_PATH, str(path))
    telemetry.reset()
    metrics.reset()
    yield path
    metrics.reset()
    telemetry.reset()


def _events(path):
    return [json.loads(l) for l in path.read_text().splitlines()]


class TestRegistry:
    def test_noop_when_telemetry_off(self, tmp_path, monkeypatch):
        monkeypatch.delenv(telemetry.ENV_FLAG, raising=False)
        telemetry.reset()
        metrics.reset()
        try:
            metrics.inc("c")
            metrics.gauge("g", 1.0)
            metrics.observe("h", 5.0)
            snap = metrics.snapshot()
            assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
        finally:
            telemetry.reset()

    def test_counters_accumulate(self, manifest):
        metrics.inc("solves")
        metrics.inc("solves", 2)
        assert metrics.snapshot()["counters"] == {"solves": 3}

    def test_gauge_keeps_latest(self, manifest):
        metrics.gauge("rho", 0.1)
        metrics.gauge("rho", 7.5)
        assert metrics.snapshot()["gauges"] == {"rho": 7.5}

    def test_histogram_summary_and_buckets(self, manifest):
        for v in (1, 2, 3, 100):
            metrics.observe("iters", v)
        (hist,) = metrics.snapshot()["histograms"].values()
        assert hist["count"] == 4
        assert hist["sum"] == 106.0
        assert hist["min"] == 1.0 and hist["max"] == 100.0
        # 1 -> bucket 0 (2^-1 < 1 <= 2^0), 2 -> 1, 3 -> 2, 100 -> 7
        assert hist["buckets"] == {"0": 1, "1": 1, "2": 1, "7": 1}

    def test_bucket_edges(self):
        assert metrics.bucket_of(0) == "-inf"
        assert metrics.bucket_of(-3.0) == "-inf"
        assert metrics.bucket_of(float("inf")) == "inf"
        assert metrics.bucket_of(1.0) == "0"
        assert metrics.bucket_of(2.0) == "1"
        assert metrics.bucket_of(2.001) == "2"
        assert metrics.bucket_of(0.25) == "-2"

    def test_flush_emits_single_event_and_clears(self, manifest):
        metrics.inc("a")
        metrics.observe("h", 4.0)
        metrics.flush("unit")
        metrics.flush("unit")  # empty registry: second flush is silent
        (event,) = _events(manifest)
        assert event["event"] == "metrics"
        assert event["reason"] == "unit"
        assert event["counters"] == {"a": 1}
        assert event["histograms"]["h"]["count"] == 1
        assert metrics.snapshot()["counters"] == {}

    def test_flush_event_validates_against_schema(self, manifest):
        metrics.inc("a")
        metrics.flush()
        telemetry.reset()
        _, errors = telemetry.validate_manifest(manifest)
        assert errors == []

    def test_empty_registry_flushes_nothing(self, manifest):
        metrics.flush()
        assert not manifest.exists()


def _worker_inc(i):
    metrics.inc("worker.calls")
    return i


class TestProcessExit:
    def test_pool_workers_flush_on_exit(self, manifest):
        """Counters accumulated inside pool workers reach the manifest:
        each worker emits one metrics event when multiprocessing tears
        it down (atexit does not run there), and a fork child starts
        from an empty registry (no double-reported parent counts)."""
        from concurrent.futures import ProcessPoolExecutor

        metrics.inc("parent.only")  # must NOT appear in worker flushes
        with ProcessPoolExecutor(max_workers=2) as ex:
            assert list(ex.map(_worker_inc, range(5))) == [0, 1, 2, 3, 4]
        telemetry.reset()
        flushes = [e for e in _events(manifest) if e["event"] == "metrics"]
        assert flushes  # one per worker that processed anything
        total = sum(
            f["counters"].get("worker.calls", 0) for f in flushes
        )
        assert total == 5
        assert all("parent.only" not in f["counters"] for f in flushes)
