"""Unit tests for the dose map substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dosemap import (
    DoseMap,
    GridPartition,
    fit_actuators,
    legendre_scan_profile,
    slit_profile,
)
from repro.placement import Die, Placement


class TestGridPartition:
    def test_counts(self):
        p = GridPartition(width=100.0, height=90.0, g=10.0)
        assert (p.m, p.n) == (9, 10)
        assert p.n_grids == 90

    def test_partial_grid_rounds_up(self):
        p = GridPartition(width=101.0, height=99.0, g=10.0)
        assert (p.m, p.n) == (10, 11)
        assert p.cell_width <= 10.0 and p.cell_height <= 10.0

    def test_grid_of_corners(self):
        p = GridPartition(width=100.0, height=100.0, g=10.0)
        assert p.grid_of(0.0, 0.0) == (0, 0)
        assert p.grid_of(99.9, 99.9) == (9, 9)
        assert p.grid_of(100.0, 100.0) == (9, 9)  # clamped
        assert p.grid_of(-5.0, -5.0) == (0, 0)  # clamped

    def test_index_roundtrip(self):
        p = GridPartition(width=50.0, height=30.0, g=10.0)
        assert p.index_of(0, 0) == 0
        assert p.index_of(2, 4) == 2 * 5 + 4
        with pytest.raises(IndexError):
            p.index_of(3, 0)

    def test_center_inside_cell(self):
        p = GridPartition(width=50.0, height=30.0, g=10.0)
        x, y = p.center_of(1, 2)
        assert p.grid_of(x, y) == (1, 2)

    def test_neighbor_pairs_count(self):
        """Paper eq. (4): (M-1)(N-1) diagonal + M(N-1) + (M-1)N pairs."""
        p = GridPartition(width=40.0, height=30.0, g=10.0)
        m, n = p.m, p.n
        pairs = list(p.neighbor_pairs())
        assert len(pairs) == (m - 1) * (n - 1) + m * (n - 1) + (m - 1) * n

    def test_neighbor_pairs_are_adjacent(self):
        p = GridPartition(width=40.0, height=40.0, g=10.0)
        for (i1, j1), (i2, j2) in p.neighbor_pairs():
            assert max(abs(i1 - i2), abs(j1 - j2)) == 1

    def test_assign_gates(self):
        p = GridPartition(width=20.0, height=3.6, g=5.0)
        die = Die(width=20.0, height=3.6, row_height=1.8, site_width=0.2)
        pl = Placement(die)
        pl.place("a", 1.0, 0.0)
        pl.place("b", 17.0, 1.8)
        assign = p.assign_gates(pl)
        assert assign["a"] == p.index_of(0, 0)
        assert assign["b"] == p.index_of(0, 3)

    def test_invalid_partition(self):
        with pytest.raises(ValueError):
            GridPartition(width=-1.0, height=10.0, g=5.0)
        with pytest.raises(ValueError):
            GridPartition(width=10.0, height=10.0, g=0.0)


class TestDoseMap:
    def _partition(self):
        return GridPartition(width=40.0, height=30.0, g=10.0)

    def test_default_zero(self):
        dm = DoseMap(self._partition())
        assert dm.dose_at(5.0, 5.0) == 0.0
        assert dm.is_feasible()

    def test_values_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            DoseMap(self._partition(), values=np.zeros((2, 2)))

    def test_layer_validation(self):
        with pytest.raises(ValueError, match="layer"):
            DoseMap(self._partition(), layer="metal1")

    def test_flat_roundtrip(self):
        p = self._partition()
        vals = np.arange(p.n_grids, dtype=float).reshape(p.m, p.n)
        dm = DoseMap(p, values=vals)
        dm2 = dm.from_flat(dm.flat())
        assert np.array_equal(dm2.values, vals)

    def test_dose_of_gate(self):
        p = GridPartition(width=20.0, height=3.6, g=5.0)
        die = Die(width=20.0, height=3.6, row_height=1.8, site_width=0.2)
        pl = Placement(die)
        pl.place("a", 12.0, 0.0)
        vals = np.zeros((p.m, p.n))
        vals[0, 2] = 3.5
        dm = DoseMap(p, values=vals)
        assert dm.dose_of_gate(pl, "a") == 3.5

    def test_range_violation(self):
        p = self._partition()
        vals = np.zeros((p.m, p.n))
        vals[0, 0] = 7.0
        dm = DoseMap(p, values=vals)
        assert dm.range_violations(5.0) == pytest.approx(2.0)
        assert not dm.is_feasible()

    def test_smoothness_violation(self):
        p = self._partition()
        vals = np.zeros((p.m, p.n))
        vals[0, 0], vals[0, 1] = -2.0, 2.0  # jump of 4 > delta=2
        dm = DoseMap(p, values=vals)
        assert dm.smoothness_violations(2.0) == pytest.approx(2.0)
        assert dm.is_feasible(smoothness=4.0)

    def test_diagonal_smoothness_checked(self):
        p = self._partition()
        vals = np.zeros((p.m, p.n))
        vals[0, 0], vals[1, 1] = 0.0, 3.0
        dm = DoseMap(p, values=vals)
        assert dm.smoothness_violations(2.0) >= 1.0 - 1e-9

    def test_tiled(self):
        p = GridPartition(width=40.0, height=30.0, g=10.0)
        vals = np.arange(p.n_grids, dtype=float).reshape(p.m, p.n)
        dm = DoseMap(p, values=vals)
        big = dm.tiled(2, 3)
        assert big.values.shape == (p.m * 3, p.n * 2)
        assert np.array_equal(big.values[:3, :4], vals)
        assert np.array_equal(big.values[3:6, 4:8], vals)

    def test_tiled_validation(self):
        dm = DoseMap(self._partition())
        with pytest.raises(ValueError):
            dm.tiled(0, 1)

    @settings(deadline=None, max_examples=20)
    @given(st.floats(min_value=-5, max_value=5))
    def test_uniform_map_always_smooth(self, value):
        p = GridPartition(width=40.0, height=30.0, g=10.0)
        dm = DoseMap(p, values=np.full((p.m, p.n), value))
        assert dm.smoothness_violations(0.0) == 0.0
        assert dm.is_feasible(dose_range=5.0, smoothness=0.0)


class TestProfiles:
    def test_legendre_p1_is_linear(self):
        y = np.linspace(-1, 1, 5)
        assert np.allclose(legendre_scan_profile([1.0], y), y)

    def test_legendre_no_constant_term(self):
        """The paper's sum starts at n=1: profile at y=0 has no L0 part."""
        # P1(0)=0, P2(0)=-0.5: only even orders contribute at y=0
        out = legendre_scan_profile([3.0], 0.0)
        assert out == pytest.approx(0.0)

    def test_legendre_order_limit(self):
        with pytest.raises(ValueError, match="at most 8"):
            legendre_scan_profile(np.ones(9), 0.0)

    def test_legendre_domain_check(self):
        with pytest.raises(ValueError, match="<= 1"):
            legendre_scan_profile([1.0], 1.5)

    def test_slit_quadratic_default_shape(self):
        x = np.linspace(-1, 1, 11)
        prof = slit_profile([0.0, 0.0, 1.0], x)  # x^2
        assert np.allclose(prof, x**2)

    def test_slit_order_limit(self):
        with pytest.raises(ValueError, match="limited to 6"):
            slit_profile(np.ones(8), 0.0)

    def test_fit_actuators_exact_for_separable(self):
        """A separable quadratic-in-x + linear-in-y map fits exactly."""
        m, n = 8, 10
        x = np.linspace(-1, 1, n)
        y = np.linspace(-1, 1, m)
        dose = 0.5 * x[None, :] ** 2 + 1.5 * y[:, None]
        _s, _l, realized, rms = fit_actuators(dose, slit_order=2)
        assert rms < 1e-9
        assert np.allclose(realized, dose, atol=1e-8)

    def test_fit_actuators_residual_for_nonseparable(self):
        """A checkerboard map is not separable: residual must be large."""
        dose = np.indices((6, 6)).sum(axis=0) % 2 * 4.0 - 2.0
        *_rest, rms = fit_actuators(dose)
        assert rms > 0.5

    def test_fit_actuators_validation(self):
        with pytest.raises(ValueError):
            fit_actuators(np.zeros((4, 4)), slit_order=9)
        with pytest.raises(ValueError):
            fit_actuators(np.zeros(4))
