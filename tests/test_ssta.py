"""Tests for the first-order SSTA engine (validated against Monte Carlo)."""

import math

import numpy as np
import pytest

from repro.core import DesignContext, optimize_dose_map
from repro.netlist import make_design
from repro.variation import (
    SSTA,
    CanonicalDelay,
    TimingMonteCarlo,
    VariationModel,
    clark_max,
    ssta_timing_yield,
)


@pytest.fixture(scope="module")
def ctx():
    return DesignContext(make_design("AES-65", scale=0.25))


@pytest.fixture(scope="module")
def model():
    return VariationModel(
        sigma_random_nm=1.0, sigma_systematic_nm=1.0,
        correlation_grid_um=20.0, seed=21,
    )


class TestCanonicalAlgebra:
    def _cv(self, mean, sens, rand):
        return CanonicalDelay(mean, np.array(sens, dtype=float), rand)

    def test_variance(self):
        c = self._cv(1.0, [0.3, 0.4], 0.5)
        assert c.variance == pytest.approx(0.09 + 0.16 + 0.25)
        assert c.sigma == pytest.approx(math.sqrt(0.5))

    def test_plus_exact(self):
        a = self._cv(1.0, [0.3, 0.0], 0.4)
        b = self._cv(2.0, [0.1, 0.2], 0.3)
        s = a.plus(b)
        assert s.mean == 3.0
        assert np.allclose(s.sens, [0.4, 0.2])
        assert s.rand == pytest.approx(0.5)

    def test_clark_max_dominant(self):
        """When A >> B, max(A, B) ~ A."""
        a = self._cv(10.0, [0.1, 0.0], 0.1)
        b = self._cv(1.0, [0.0, 0.1], 0.1)
        m = clark_max(a, b)
        assert m.mean == pytest.approx(10.0, abs=1e-6)
        assert np.allclose(m.sens, a.sens, atol=1e-6)

    def test_clark_max_symmetric_against_mc(self):
        """Equal-mean case vs brute-force sampling."""
        a = self._cv(1.0, [0.2, 0.0], 0.1)
        b = self._cv(1.0, [0.0, 0.2], 0.1)
        m = clark_max(a, b)
        rng = np.random.default_rng(0)
        n = 200_000
        x = rng.standard_normal((n, 2))
        ra, rb = rng.standard_normal(n), rng.standard_normal(n)
        sa = 1.0 + x @ np.array([0.2, 0.0]) + 0.1 * ra
        sb = 1.0 + x @ np.array([0.0, 0.2]) + 0.1 * rb
        samples = np.maximum(sa, sb)
        assert m.mean == pytest.approx(samples.mean(), abs=5e-3)
        assert m.sigma == pytest.approx(samples.std(), rel=0.05)

    def test_max_of_identical_is_identity(self):
        a = self._cv(1.0, [0.3], 0.0)
        m = clark_max(a, a)
        assert m.mean == pytest.approx(a.mean, abs=1e-9)
        assert m.sigma == pytest.approx(a.sigma, rel=1e-6)


class TestSSTAEngine:
    def test_mean_anchors_to_golden(self, ctx, model):
        mct = SSTA(ctx, model).analyze()
        # Clark max inflates the mean slightly above the deterministic
        # MCT (max of random variables >= max of means)
        assert mct.mean >= ctx.baseline.mct * 0.98
        assert mct.mean <= ctx.baseline.mct * 1.10
        assert mct.sigma > 0

    def test_matches_monte_carlo(self, ctx, model):
        """SSTA mean/sigma within ~10 % of a 400-sample MC."""
        ssta_mct = SSTA(ctx, model).analyze()
        tmc = TimingMonteCarlo(ctx)
        samples = tmc.mct_samples(tmc.sample_dl(model, 400))
        assert ssta_mct.mean == pytest.approx(samples.mean(), rel=0.05)
        assert ssta_mct.sigma == pytest.approx(samples.std(), rel=0.35)

    def test_more_variation_more_sigma(self, ctx):
        small = SSTA(ctx, VariationModel(0.5, 0.5, 20.0)).analyze()
        large = SSTA(ctx, VariationModel(2.0, 2.0, 20.0)).analyze()
        assert large.sigma > small.sigma

    def test_dose_map_improves_ssta_yield(self, ctx, model):
        res = optimize_dose_map(ctx, 10.0, mode="qcp")
        base = SSTA(ctx, model).analyze()
        opt = SSTA(ctx, model).analyze(dose_map=res.dose_map_poly)
        target = ctx.baseline.mct
        assert ssta_timing_yield(opt, target) > ssta_timing_yield(base, target)

    def test_yield_bounds(self):
        c = CanonicalDelay(1.0, np.array([0.1]), 0.0)
        assert ssta_timing_yield(c, 10.0) > 0.999
        assert ssta_timing_yield(c, 0.0) < 0.001
        det = CanonicalDelay(1.0, np.zeros(1), 0.0)
        assert ssta_timing_yield(det, 1.0) == 1.0
        assert ssta_timing_yield(det, 0.5) == 0.0

    def test_quantile(self):
        c = CanonicalDelay(1.0, np.array([0.0]), 2.0)
        assert c.quantile(0.5) == pytest.approx(1.0)
        assert c.quantile(0.8413) == pytest.approx(3.0, abs=1e-2)
