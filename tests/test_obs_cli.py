"""Tests for the observability CLI (python -m repro.obs report/compare)."""

import json
import time

import pytest

from repro import telemetry
from repro.obs.__main__ import main as obs_main
from repro.obs.compare import compare_metrics, direction_of, flatten
from repro.obs.report import build_trees, load_manifest, summarize


@pytest.fixture
def manifest(tmp_path, monkeypatch):
    path = tmp_path / "run.jsonl"
    monkeypatch.setenv(telemetry.ENV_FLAG, "1")
    monkeypatch.setenv(telemetry.ENV_PATH, str(path))
    telemetry.reset()
    yield path
    telemetry.reset()


class TestReport:
    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        """One traced CLI optimize run: (manifest path, wall seconds)."""
        import os

        from repro.cli import main as cli_main
        from repro.obs import metrics

        path = tmp_path_factory.mktemp("obs") / "traced.jsonl"
        # cli.main's --trace configures telemetry via the environment
        # (for worker inheritance); save and restore it ourselves since
        # monkeypatch cannot back a class-scoped fixture
        saved = {
            key: os.environ.get(key)
            for key in (telemetry.ENV_FLAG, telemetry.ENV_PATH)
        }
        try:
            t0 = time.perf_counter()
            rc = cli_main([
                "--trace", str(path),
                "optimize", "AES-65", "--grid", "30", "--mode", "qp",
                "--scale", "0.5",
            ])
            wall = time.perf_counter() - t0
            assert rc == 0
            metrics.flush("test_end")
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
            metrics.reset()
            telemetry.reset()
        return path, wall

    def test_root_span_covers_run_wall_time(self, traced_run):
        path, wall = traced_run
        summary = summarize(path)
        assert summary["n_traces"] == 1
        # the cli.optimize root span must account for (nearly) the whole
        # run: parse+configure outside the span are microseconds
        assert summary["root_seconds"] == pytest.approx(wall, rel=0.05)

    def test_report_text_has_tree_solver_stats_and_rates(self, traced_run,
                                                         capsys):
        path, _ = traced_run
        assert obs_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== span tree (wall time) ==" in out
        assert "cli.optimize" in out
        assert "dmopt.solve" in out
        assert "== solver iterations ==" in out
        assert "ipm" in out and "iterations" in out
        assert "solver.ipm.solves" in out  # merged metrics section

    def test_json_summary_is_machine_readable(self, traced_run, capsys):
        path, _ = traced_run
        assert obs_main(["report", str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"]["span"] >= 3
        assert "ipm" in summary["solvers"]
        assert summary["solvers"]["ipm"]["solves"] >= 1
        assert summary["metrics"]["counters"]["solver.ipm.solves"] >= 1

    def test_orphan_spans_become_trace_roots(self, tmp_path):
        # a parent that never emitted (killed worker / truncated file)
        path = tmp_path / "orphan.jsonl"
        base = {"v": telemetry.SCHEMA_VERSION, "ts": 10.0, "mono": 1.0,
                "pid": 1, "event": "span", "trace_id": "t1",
                "seconds": 1.0}
        lines = [
            dict(base, name="orphan", span_id="s2", parent_id="gone"),
            dict(base, name="root", span_id="s1", parent_id=None),
        ]
        path.write_text("\n".join(json.dumps(l) for l in lines) + "\n")
        records, bad = load_manifest(path)
        assert bad == 0
        trees = build_trees(records)
        assert sorted(n.name for n in trees["t1"]) == ["orphan", "root"]

    def test_truncated_line_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        good = {"v": telemetry.SCHEMA_VERSION, "ts": 1.0, "mono": 1.0,
                "pid": 1, "event": "span", "trace_id": "t", "span_id": "s",
                "parent_id": None, "name": "n", "seconds": 0.5}
        path.write_text(json.dumps(good) + '\n{"v": 2, "ts": 123.4, "mo\n')
        records, bad = load_manifest(path)
        assert len(records) == 1 and bad == 1


class TestCompare:
    def _bench(self):
        return {
            "smoke": True,
            "solve": [{"design": "AES-65", "warm_time": 0.2,
                       "cold_time": 0.6, "speedup": 3.0,
                       "iterations": 50, "mct": 3.2}],
        }

    def test_identical_files_pass(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(self._bench()))
        assert obs_main(["compare", str(a), str(a), "--tol", "0.5"]) == 0

    def test_synthetic_2x_slowdown_fails(self, tmp_path, capsys):
        base = self._bench()
        slow = json.loads(json.dumps(base))
        for row in slow["solve"]:
            row["warm_time"] *= 2
            row["cold_time"] *= 2
            row["speedup"] /= 3
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(base))
        b.write_text(json.dumps(slow))
        assert obs_main(["compare", str(a), str(b), "--tol", "0.5"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "warm_time" in out and "speedup" in out

    def test_improvement_never_fails(self, tmp_path):
        base = self._bench()
        fast = json.loads(json.dumps(base))
        for row in fast["solve"]:
            row["warm_time"] /= 4
            row["speedup"] *= 4
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(base))
        b.write_text(json.dumps(fast))
        assert obs_main(["compare", str(a), str(b), "--tol", "0.5"]) == 0

    def test_missing_metric_fails_unless_allowed(self, tmp_path):
        base = self._bench()
        partial = json.loads(json.dumps(base))
        del partial["solve"][0]["warm_time"]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(base))
        b.write_text(json.dumps(partial))
        assert obs_main(["compare", str(a), str(b)]) == 1
        assert obs_main(["compare", str(a), str(b), "--allow-missing"]) == 0

    def test_direction_classification(self):
        assert direction_of("solve[0].speedup") == "higher"
        assert direction_of("solve[0].warm_time") == "lower"
        assert direction_of("sweep[0].parallel_all_cores") == "lower"
        assert direction_of("solve[0].iterations") == "lower"
        # correctness numbers are not perf regressions
        assert direction_of("solve[0].mct") == "info"
        assert direction_of("assembly[0].n_gates") == "info"

    def test_flatten_paths_and_bool_exclusion(self):
        flat = flatten(self._bench())
        assert flat["solve[0].warm_time"] == 0.2
        assert "smoke" not in flat  # bools are flags, not metrics

    def test_noise_floor_skips_tiny_timers(self):
        base = {"a_time": 2e-4}
        cur = {"a_time": 6e-4}  # 3x blip on a 200us timer
        result = compare_metrics(flatten(base), flatten(cur), tol=0.5,
                                 floor=1e-3)
        assert result["regressions"] == []

    def test_committed_smoke_baselines_self_compare(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        for name in ("BENCH_sta_smoke.json", "BENCH_dmopt_smoke.json"):
            path = root / name
            assert obs_main(["compare", str(path), str(path)]) == 0
