"""Integration tests for dosePl, sweeps, and the end-to-end flow."""

import pytest

from repro.core import (
    DesignContext,
    DoseplConfig,
    bias_critical_paths,
    optimize_dose_map,
    run_dosepl,
    run_flow,
    uniform_dose_sweep,
)
from repro.netlist import make_design
from repro.placement import has_overlaps


@pytest.fixture(scope="module")
def ctx():
    return DesignContext(make_design("AES-65", scale=0.3))


@pytest.fixture(scope="module")
def qcp(ctx):
    return optimize_dose_map(ctx, grid_size=5.0, mode="qcp")


@pytest.fixture(scope="module")
def dosepl_result(ctx, qcp):
    return run_dosepl(
        ctx, qcp.dose_map_poly,
        config=DoseplConfig(top_k=200, rounds=6),
    )


class TestDosepl:
    def test_never_degrades(self, dosepl_result):
        """Accept/rollback discipline: golden MCT can only improve."""
        assert dosepl_result.mct <= dosepl_result.baseline_mct + 1e-12

    def test_history_monotone(self, dosepl_result):
        mcts = [m for _r, m, _l in dosepl_result.history]
        assert all(b <= a + 1e-12 for a, b in zip(mcts, mcts[1:]))

    def test_placement_stays_legal(self, ctx, dosepl_result):
        assert not has_overlaps(
            dosepl_result.placement, ctx.netlist, ctx.library
        )
        assert len(dosepl_result.placement) == ctx.netlist.n_gates

    def test_original_placement_untouched(self, ctx, dosepl_result):
        """dosePl must work on a copy, not mutate the context placement."""
        fresh = ctx.analyzer.analyze()
        assert fresh.mct == pytest.approx(ctx.baseline.mct)
        assert dosepl_result.placement is not ctx.placement

    def test_rounds_bounded(self, dosepl_result):
        assert dosepl_result.rounds_run == 6
        assert dosepl_result.swaps_accepted <= 6

    def test_runtime_recorded(self, dosepl_result):
        assert dosepl_result.runtime > 0


class TestSweep:
    def test_sweep_monotone_trends(self, ctx):
        points = uniform_dose_sweep(ctx, doses=[-4.0, -2.0, 0.0, 2.0, 4.0])
        mcts = [p.mct for p in points]
        leaks = [p.leakage for p in points]
        assert all(b < a for a, b in zip(mcts, mcts[1:]))  # more dose=faster
        assert all(b > a for a, b in zip(leaks, leaks[1:]))  # and leakier

    def test_zero_dose_point_is_baseline(self, ctx):
        (point,) = uniform_dose_sweep(ctx, doses=[0.0])
        assert point.mct == pytest.approx(ctx.baseline.mct)
        assert point.mct_improvement_pct == pytest.approx(0.0)
        assert point.leakage == pytest.approx(ctx.baseline_leakage)

    def test_no_free_lunch(self, ctx):
        """The paper's motivating claim: no uniform dose improves both."""
        for p in uniform_dose_sweep(ctx, doses=[-3.0, -1.0, 1.0, 3.0]):
            improves_both = (
                p.mct_improvement_pct > 0.1
                and p.leakage_improvement_pct > 0.1
            )
            assert not improves_both

    def test_bias_critical_paths(self, ctx):
        res, leak, doses = bias_critical_paths(ctx, k=50)
        assert res.mct < ctx.baseline.mct  # timing headroom exposed
        assert leak > ctx.baseline_leakage  # at a leakage cost
        boosted = [g for g, (dp, _da) in doses.items() if dp > 0]
        assert 0 < len(boosted) < ctx.netlist.n_gates


class TestFlow:
    def test_flow_with_dosepl(self):
        flow = run_flow(
            DesignContext(make_design("AES-90", scale=0.3)),
            grid_size=10.0,
            mode="qcp",
            with_dosepl=True,
            dosepl_config=DoseplConfig(top_k=100, rounds=3),
        )
        assert flow.final_mct <= flow.ctx.baseline.mct
        assert flow.dosepl is not None
        assert flow.final_leakage > 0
        text = flow.summary()
        assert "after DMopt" in text and "after dosePl" in text

    def test_flow_without_dosepl(self, ctx):
        flow = run_flow(ctx, grid_size=10.0, mode="qp", with_dosepl=False)
        assert flow.dosepl is None
        assert flow.final_mct == flow.dmopt.mct
        assert "dosePl" not in flow.summary()


class TestAggressiveDosepl:
    def test_aggressive_never_worse(self, ctx, qcp, dosepl_result):
        """The improved (TCAD) swapping strategy explores more moves;
        accept/rollback guarantees it cannot end worse than the base
        config's result by more than golden-noise."""
        from repro.core import DoseplConfig, run_dosepl

        aggressive = run_dosepl(
            ctx, qcp.dose_map_poly,
            config=DoseplConfig(top_k=200, rounds=6, swaps_per_path=2,
                                swaps_per_round=3),
        )
        assert aggressive.mct <= aggressive.baseline_mct + 1e-12
        assert aggressive.mct <= dosepl_result.mct + 5e-3

    def test_aggressive_preset_shape(self):
        from repro.core import DoseplConfig

        cfg = DoseplConfig.aggressive()
        assert cfg.swaps_per_round > 1
        assert cfg.rounds >= 10
