"""Unit tests for the netlist model and synthetic generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.library import CellLibrary
from repro.netlist import (
    Netlist,
    NetlistError,
    design_names,
    generate_aes_like,
    generate_jpeg_like,
    make_design,
    resize_for_fanout,
)


@pytest.fixture(scope="module")
def lib65():
    return CellLibrary("65nm")


def _tiny_netlist():
    """in1,in2 -> NAND2 -> INV -> DFF -> INV -> out."""
    nl = Netlist("tiny")
    nl.add_primary_input("in1")
    nl.add_primary_input("in2")
    nl.add_gate("u1", "NAND2X1", ["in1", "in2"], "n1")
    nl.add_gate("u2", "INVX1", ["n1"], "n2")
    nl.add_gate("ff1", "DFFX1", ["n2"], "q1")
    nl.add_gate("u3", "INVX1", ["q1"], "out")
    nl.add_primary_output("out")
    return nl


class TestNetlistConstruction:
    def test_counts(self):
        nl = _tiny_netlist()
        assert nl.n_gates == 4
        assert nl.n_nets == 6
        assert nl.primary_inputs == ["in1", "in2"]
        assert nl.primary_outputs == ["out"]

    def test_driver_and_sinks(self):
        nl = _tiny_netlist()
        assert nl.net("n1").driver == "u1"
        assert nl.net("n1").sinks == [("u2", 0)]
        assert nl.net("in1").is_primary_input

    def test_fanin_fanout(self):
        nl = _tiny_netlist()
        assert nl.fanin_gates("u2") == ["u1"]
        assert nl.fanout_gates("u1") == ["u2"]
        assert nl.fanin_gates("u1") == []  # PIs are not gates

    def test_duplicate_gate_rejected(self):
        nl = _tiny_netlist()
        with pytest.raises(NetlistError, match="declared twice"):
            nl.add_gate("u1", "INVX1", ["n1"], "nx")

    def test_multiple_drivers_rejected(self):
        nl = _tiny_netlist()
        with pytest.raises(NetlistError, match="multiple drivers"):
            nl.add_gate("u9", "INVX1", ["n1"], "n2")

    def test_driving_primary_input_rejected(self):
        nl = _tiny_netlist()
        with pytest.raises(NetlistError, match="multiple drivers"):
            nl.add_gate("u9", "INVX1", ["n1"], "in1")

    def test_master_histogram(self):
        nl = _tiny_netlist()
        assert nl.master_histogram() == {"NAND2X1": 1, "INVX1": 2, "DFFX1": 1}


class TestValidation:
    def test_valid_netlist_passes(self, lib65):
        _tiny_netlist().validate(lib65)

    def test_wrong_pin_count(self, lib65):
        nl = Netlist("bad")
        nl.add_primary_input("a")
        nl.add_gate("u1", "NAND2X1", ["a"], "y")
        with pytest.raises(NetlistError, match="inputs"):
            nl.validate(lib65)

    def test_undriven_net(self, lib65):
        nl = Netlist("bad")
        nl.add_gate("u1", "INVX1", ["floating"], "y")
        with pytest.raises(NetlistError, match="no driver"):
            nl.validate(lib65)

    def test_combinational_cycle_detected(self, lib65):
        nl = Netlist("cyc")
        nl.add_primary_input("a")
        nl.add_gate("u1", "NAND2X1", ["a", "y2"], "y1")
        nl.add_gate("u2", "INVX1", ["y1"], "y2")
        with pytest.raises(NetlistError, match="cycle"):
            nl.validate(lib65)

    def test_ff_breaks_cycle(self, lib65):
        """A loop through a flip-flop is sequential, not combinational."""
        nl = Netlist("seqloop")
        nl.add_primary_input("a")
        nl.add_gate("u1", "NAND2X1", ["a", "q"], "d")
        nl.add_gate("ff", "DFFX1", ["d"], "q")
        nl.validate(lib65)  # must not raise


class TestTopologicalOrder:
    def test_order_respects_dependencies(self, lib65):
        nl = _tiny_netlist()
        order = nl.topological_order(lib65)
        pos = {name: i for i, name in enumerate(order)}
        assert pos["u1"] < pos["u2"]
        assert pos["ff1"] < pos["u3"]
        assert len(order) == nl.n_gates

    def test_ff_is_source(self, lib65):
        nl = _tiny_netlist()
        order = nl.topological_order(lib65)
        # the FF doesn't wait for its D-input cone
        assert set(order) == set(nl.gates)


class TestGenerators:
    @pytest.mark.parametrize("name", design_names())
    def test_designs_validate(self, name):
        d = make_design(name)
        d.netlist.validate(d.library)  # full structural check
        assert d.netlist.n_gates > 500
        assert d.die_area > 0

    def test_designs_are_deterministic(self):
        a = make_design("AES-65")
        b = make_design("AES-65")
        assert list(a.netlist.gates) == list(b.netlist.gates)
        assert a.netlist.master_histogram() == b.netlist.master_histogram()

    def test_paper_density_is_respected(self):
        """Cells per 5x5 um^2 grid ~6.3 at 65 nm, ~2.2 at 90 nm (Sec. V)."""
        d65 = make_design("AES-65")
        d90 = make_design("AES-90")
        per_grid_65 = d65.netlist.n_gates / (d65.die_area / 25.0)
        per_grid_90 = d90.netlist.n_gates / (d90.die_area / 25.0)
        assert 5.0 < per_grid_65 < 8.0
        assert 1.8 < per_grid_90 < 2.8

    def test_designs_have_sequential_cells(self, lib65):
        d = make_design("AES-65")
        hist = d.netlist.master_histogram()
        n_seq = sum(
            n for m, n in hist.items() if d.library.cell(m).is_sequential
        )
        assert n_seq > 100

    def test_unknown_design(self):
        with pytest.raises(KeyError, match="unknown design"):
            make_design("DES-45")

    def test_scale_grows_design(self):
        small = make_design("AES-90")
        big = make_design("AES-90", scale=1.4)
        assert big.netlist.n_gates > small.netlist.n_gates

    @settings(deadline=None, max_examples=5)
    @given(st.integers(min_value=1, max_value=10_000))
    def test_aes_generator_valid_for_any_seed(self, seed):
        lib = CellLibrary("65nm")
        nl = generate_aes_like(n_lanes=4, n_rounds=1, sbox_depth=3,
                               sbox_width=4, seed=seed)
        nl = resize_for_fanout(nl, lib)
        nl.validate(lib)

    @settings(deadline=None, max_examples=5)
    @given(st.integers(min_value=1, max_value=10_000))
    def test_jpeg_generator_valid_for_any_seed(self, seed):
        lib = CellLibrary("65nm")
        nl = generate_jpeg_like(n_channels=4, min_width=3, max_width=5,
                                quant_depth=2, n_stages=1, seed=seed)
        nl = resize_for_fanout(nl, lib)
        nl.validate(lib)

    def test_jpeg_width_validation(self):
        with pytest.raises(ValueError, match="max_width"):
            generate_jpeg_like(min_width=8, max_width=4)


class TestResizeForFanout:
    def test_high_fanout_gets_bigger_drive(self, lib65):
        nl = Netlist("fo")
        nl.add_primary_input("a")
        nl.add_gate("drv", "INVX1", ["a"], "y")
        for i in range(8):
            nl.add_gate(f"ld{i}", "INVX1", ["y"], f"z{i}")
        sized = resize_for_fanout(nl, lib65)
        assert sized.gate("drv").master == "INVX4"
        assert sized.gate("ld0").master == "INVX1"

    def test_resize_preserves_structure(self, lib65):
        nl = _tiny_netlist()
        sized = resize_for_fanout(nl, lib65)
        assert list(sized.gates) == list(nl.gates)
        assert sized.gate("u1").inputs == nl.gate("u1").inputs
        sized.validate(lib65)

    def test_resize_respects_available_drives(self, lib65):
        """FA only exists at X1; huge fanout must not invent FAX8."""
        nl = Netlist("fa")
        for p in ("a", "b", "c"):
            nl.add_primary_input(p)
        nl.add_gate("fa", "FAX1", ["a", "b", "c"], "y")
        for i in range(20):
            nl.add_gate(f"ld{i}", "INVX1", ["y"], f"z{i}")
        sized = resize_for_fanout(nl, lib65)
        assert sized.gate("fa").master == "FAX1"
