"""Unit tests for delay/leakage coefficient fitting."""

import pytest

from repro.fitting import DelayFitter, LeakageFitter
from repro.library import CellLibrary


@pytest.fixture(scope="module")
def lib65():
    return CellLibrary("65nm")


class TestDelayFit:
    def test_signs(self, lib65):
        """A_p > 0 (longer gate slower), B_p < 0 (wider gate faster)."""
        fitter = DelayFitter(lib65, fit_width=True)
        fit = fitter.fit_for("INVX1", 0.05, 2.0)
        assert fit.a > 0
        assert fit.b < 0

    def test_poly_only_has_zero_b(self, lib65):
        fit = DelayFitter(lib65, fit_width=False).fit_for("INVX1", 0.05, 2.0)
        assert fit.b == 0.0

    def test_prediction_matches_library(self, lib65):
        """Linear model tracks the characterized delay within ~3 %."""
        fitter = DelayFitter(lib65)
        nominal = lib65.nominal("NAND2X1")
        slew = float(nominal.delay.slew_axis[2])
        load = float(nominal.delay.load_axis[3])
        fit = fitter.fit_for("NAND2X1", slew, load)
        for dose in (-4.0, -2.0, 2.0, 4.0):
            actual = lib65.characterized("NAND2X1", dose).delay_at(slew, load)
            predicted = fit.predict(lib65.dose_to_dl(dose))
            assert predicted == pytest.approx(actual, rel=0.03)

    def test_t0_matches_nominal(self, lib65):
        fitter = DelayFitter(lib65)
        nominal = lib65.nominal("INVX2")
        slew = float(nominal.delay.slew_axis[1])
        load = float(nominal.delay.load_axis[1])
        fit = fitter.fit_for("INVX2", slew, load)
        assert fit.t0 == pytest.approx(nominal.delay_at(slew, load), rel=0.02)

    def test_load_dependence(self, lib65):
        """Bigger load -> bigger delay sensitivity to gate length."""
        fitter = DelayFitter(lib65)
        nominal = lib65.nominal("INVX1")
        small = fitter.fit_at_entry("INVX1", 2, 0)
        large = fitter.fit_at_entry("INVX1", 2, 6)
        assert large.a > small.a

    def test_cache_hit(self, lib65):
        fitter = DelayFitter(lib65)
        a = fitter.fit_at_entry("INVX1", 0, 0)
        b = fitter.fit_at_entry("INVX1", 0, 0)
        assert a is b

    def test_width_fit_has_worse_residuals(self, lib65):
        """Paper Sec. V: both-layer fitting has much larger max SSR than
        poly-only fitting (0.0101 vs 0.0005) -- more free parameters and
        a bigger characterized space to cover."""
        poly = DelayFitter(lib65, fit_width=False)
        both = DelayFitter(lib65, fit_width=True)
        masters = ["INVX1", "NAND2X1", "NOR2X2", "XOR2X1", "BUFX2", "AOI21X1"]
        for m in masters:
            for i in (0, 3):
                for j in (1, 4):
                    poly.fit_at_entry(m, i, j)
                    both.fit_at_entry(m, i, j)
        assert both.max_ssr() > poly.max_ssr()

    def test_sample_count_validation(self, lib65):
        with pytest.raises(ValueError, match="at least 3"):
            DelayFitter(lib65, n_dose_samples=2)


class TestLeakageFit:
    def test_signs(self, lib65):
        """alpha > 0 (convex), beta < 0 (longer leaks less), gamma > 0."""
        fit = LeakageFitter(lib65, fit_width=True).fit("INVX1")
        assert fit.alpha > 0
        assert fit.beta < 0
        assert fit.gamma > 0

    def test_quadratic_tracks_exponential(self, lib65):
        """Quadratic fit within ~15 % of the exponential truth in-range."""
        fit = LeakageFitter(lib65).fit("INVX1")
        for dose in (-5.0, -2.5, 0.0, 2.5, 5.0):
            actual = lib65.characterized("INVX1", dose).leakage_uw
            predicted = fit.predict(lib65.dose_to_dl(dose))
            assert predicted == pytest.approx(actual, rel=0.15)

    def test_delta_prediction_consistent(self, lib65):
        fit = LeakageFitter(lib65).fit("NAND2X1")
        assert fit.predict_delta(3.0) == pytest.approx(
            fit.predict(3.0) - fit.c
        )
        assert fit.predict_delta(0.0) == 0.0

    def test_constant_near_nominal_leakage(self, lib65):
        fit = LeakageFitter(lib65).fit("NOR2X1")
        assert fit.c == pytest.approx(
            lib65.nominal("NOR2X1").leakage_uw, rel=0.10
        )

    def test_bigger_cells_have_bigger_coefficients(self, lib65):
        fitter = LeakageFitter(lib65)
        small = fitter.fit("INVX1")
        big = fitter.fit("INVX4")
        assert abs(big.beta) > abs(small.beta)
        assert big.alpha > small.alpha

    def test_cache(self, lib65):
        fitter = LeakageFitter(lib65)
        assert fitter.fit("INVX1") is fitter.fit("INVX1")
        assert fitter.max_ssr() >= 0.0

    def test_sample_count_validation(self, lib65):
        with pytest.raises(ValueError, match="at least 3"):
            LeakageFitter(lib65, n_dose_samples=2)
