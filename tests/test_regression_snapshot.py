"""Regression snapshot: pin headline metrics against drift.

These values were recorded from a verified run of the full pipeline
(see EXPERIMENTS.md).  Tolerances are loose enough to survive harmless
numeric churn but tight enough to catch modeling or solver regressions.
If an intentional model change shifts them, update the expectations and
EXPERIMENTS.md together.
"""

import pytest

from repro.core import DesignContext, optimize_dose_map
from repro.netlist import make_design


@pytest.fixture(scope="module")
def ctx():
    return DesignContext(make_design("AES-65"))


class TestBaselines:
    def test_aes65_size(self, ctx):
        assert ctx.netlist.n_gates == 2688

    def test_aes65_baseline_mct(self, ctx):
        assert ctx.baseline.mct == pytest.approx(4.054, abs=0.15)

    def test_aes65_baseline_leakage(self, ctx):
        assert ctx.baseline_leakage == pytest.approx(196.3, rel=0.05)


class TestHeadlineResults:
    def test_qcp_5um(self, ctx):
        """Paper-shape anchor: QCP at 5 um gains several percent MCT at
        near-zero leakage change."""
        res = optimize_dose_map(ctx, 5.0, mode="qcp")
        assert res.mct_improvement_pct == pytest.approx(7.8, abs=1.5)
        assert abs(res.leakage_improvement_pct) < 2.5

    def test_qp_5um(self, ctx):
        res = optimize_dose_map(ctx, 5.0, mode="qp")
        assert res.leakage_improvement_pct == pytest.approx(26.4, abs=4.0)
        assert res.mct_improvement_pct > -0.3

    def test_uniform_dose_endpoints(self, ctx):
        """Table II anchors at +/-5 % dose."""
        from repro.core import uniform_dose_sweep

        lo, hi = uniform_dose_sweep(ctx, doses=[-5.0, 5.0])
        assert lo.leakage_improvement_pct == pytest.approx(38.3, abs=3.0)
        assert hi.mct_improvement_pct == pytest.approx(11.4, abs=2.0)
        assert hi.leakage_improvement_pct == pytest.approx(-156.3, abs=15.0)
