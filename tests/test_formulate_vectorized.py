"""Differential tests: vectorized formulation assembly vs the loop builder.

The block-wise COO backend (:func:`_assemble_vector`) must emit exactly
the matrices the readable per-gate ``add_row`` reference emits -- same
``A`` entries (compared as canonically sorted COO triplets), same
bounds, same leakage quadratic, same row bookkeeping -- for any design,
layer setting, and seam setting.  Plus the formulation cache/retarget
contract and the ``REPRO_FORMULATE_BACKEND`` dispatch.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DesignContext
from repro.core.formulate import (
    BACKEND_REFERENCE,
    BACKEND_VECTOR,
    build_formulation,
    resolve_formulate_backend,
)
from repro.library import CellLibrary
from repro.netlist import Netlist
from repro.netlist.designs import DesignBundle

import random


@pytest.fixture(scope="module")
def lib65():
    return CellLibrary("65nm")


@pytest.fixture(scope="module")
def aes_ctx():
    return DesignContext("AES-65")


@pytest.fixture(scope="module")
def aes_ctx_w():
    return DesignContext("AES-65", fit_width=True)


def canonical_coo(A):
    """(row, col, val) triplets sorted row-major for exact comparison."""
    c = A.tocoo()
    order = np.lexsort((c.col, c.row))
    return c.row[order], c.col[order], c.data[order]


def assert_formulations_identical(ref, vec):
    assert ref.A.shape == vec.A.shape
    r1, c1, d1 = canonical_coo(ref.A)
    r2, c2, d2 = canonical_coo(vec.A)
    assert np.array_equal(r1, r2)
    assert np.array_equal(c1, c2)
    assert np.array_equal(d1, d2), "A values differ"
    assert np.array_equal(ref.l, vec.l)
    assert np.array_equal(ref.u, vec.u)
    assert np.array_equal(ref.P_leak.toarray(), vec.P_leak.toarray())
    assert np.array_equal(ref.q_leak, vec.q_leak)
    assert ref.row_clock == vec.row_clock
    assert ref.idx_T == vec.idx_T
    assert ref.n_gates == vec.n_gates
    assert ref.gate_grid == vec.gate_grid
    assert ref.gate_order == vec.gate_order
    assert ref.n_range_rows == vec.n_range_rows
    assert ref.n_smooth_rows == vec.n_smooth_rows


def both_backends(ctx, grid_size, **kwargs):
    ref = build_formulation(ctx, grid_size, backend=BACKEND_REFERENCE, **kwargs)
    vec = build_formulation(ctx, grid_size, backend=BACKEND_VECTOR, **kwargs)
    return ref, vec


class TestDifferentialFixedDesign:
    @pytest.mark.parametrize("seam", [False, True])
    @pytest.mark.parametrize("grid", [5.0, 10.0, 30.0])
    def test_poly_only(self, aes_ctx, grid, seam):
        ref, vec = both_backends(aes_ctx, grid, seam_smoothness=seam)
        assert_formulations_identical(ref, vec)

    @pytest.mark.parametrize("seam", [False, True])
    @pytest.mark.parametrize("both_layers", [False, True])
    def test_both_layers(self, aes_ctx_w, both_layers, seam):
        ref, vec = both_backends(
            aes_ctx_w, 10.0, both_layers=both_layers, seam_smoothness=seam
        )
        assert_formulations_identical(ref, vec)

    def test_nondefault_bounds(self, aes_ctx):
        ref, vec = both_backends(
            aes_ctx, 10.0, dose_range=3.5, smoothness=1.25
        )
        assert_formulations_identical(ref, vec)

    def test_small_dense_equality(self, lib65):
        """On a tiny DAG the dense matrices must match element-wise."""
        ctx = _random_dag_context(seed=5, n_gates=25, lib=lib65)
        ref, vec = both_backends(ctx, 10.0)
        assert np.array_equal(ref.A.toarray(), vec.A.toarray())


def _random_dag_context(seed, n_gates, lib):
    """A DesignContext over a random placed DAG (every cell placed)."""
    rng = random.Random(seed)
    comb = ["INVX1", "INVX2", "NAND2X1", "NOR2X1", "BUFX1"]
    comb = [m for m in comb if m in lib.masters]
    seq = lib.sequential_names[:1]
    nl = Netlist(f"rand{seed}")
    nl.add_primary_input("pi0")
    nl.add_primary_input("pi1")
    nets = ["pi0", "pi1"]
    for i in range(n_gates):
        out = f"n{i}"
        if seq and rng.random() < 0.15:
            nl.add_gate(f"g{i}", seq[0], [rng.choice(nets)], out)
        else:
            master = rng.choice(comb)
            n_in = 2 if ("NAND" in master or "NOR" in master) else 1
            ins = [rng.choice(nets) for _ in range(n_in)]
            nl.add_gate(f"g{i}", master, ins, out)
        nets.append(out)
    for name, net in nl.nets.items():
        if not net.sinks and not net.is_primary_input:
            nl.add_primary_output(name)
    bundle = DesignBundle(
        name=f"rand{seed}",
        netlist=nl,
        library=lib,
        die_width=60.0,
        die_height=10.8,
    )
    return DesignContext(bundle)


class TestDifferentialRandomDAGs:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 10_000),
        n_gates=st.integers(10, 120),
        seam=st.booleans(),
    )
    def test_random_dag(self, lib65, seed, n_gates, seam):
        ctx = _random_dag_context(seed, n_gates, lib65)
        ref, vec = both_backends(ctx, 5.0, seam_smoothness=seam)
        assert_formulations_identical(ref, vec)


class TestBackendDispatch:
    def test_resolve_names(self):
        assert resolve_formulate_backend("vector") == BACKEND_VECTOR
        assert resolve_formulate_backend("reference") == BACKEND_REFERENCE
        with pytest.raises(ValueError):
            resolve_formulate_backend("nope")

    def test_default_follows_session_backend(self, aes_ctx):
        from repro.core.formulate import DEFAULT_FORMULATE_BACKEND

        form = build_formulation(aes_ctx, 30.0)
        assert form.backend == resolve_formulate_backend(
            DEFAULT_FORMULATE_BACKEND
        )

    def test_env_override(self, aes_ctx, monkeypatch):
        import repro.core.formulate as formulate

        monkeypatch.setattr(
            formulate, "DEFAULT_FORMULATE_BACKEND", "reference"
        )
        form = build_formulation(aes_ctx, 30.0)
        assert form.backend == BACKEND_REFERENCE


class TestFormulationCacheRetarget:
    def test_cache_hit_shares_matrices(self, aes_ctx):
        f1 = aes_ctx.formulation_for(10.0)
        f2 = aes_ctx.formulation_for(10.0)
        assert f2.A is f1.A
        assert f2.P_leak is f1.P_leak

    def test_retarget_only_changes_bounds(self, aes_ctx):
        f1 = aes_ctx.formulation_for(10.0, dose_range=5.0, smoothness=2.0)
        f2 = aes_ctx.formulation_for(10.0, dose_range=4.0, smoothness=1.0)
        assert f2.A is f1.A  # structure shared, no reassembly
        assert f2.shared is f1.shared  # solver workspaces carry over
        fresh = build_formulation(
            aes_ctx, 10.0, dose_range=4.0, smoothness=1.0
        )
        assert np.array_equal(f2.l, fresh.l)
        assert np.array_equal(f2.u, fresh.u)

    def test_retarget_matches_fresh_build_everywhere(self, aes_ctx):
        f = aes_ctx.formulation_for(30.0, dose_range=2.5, smoothness=0.75)
        fresh = build_formulation(
            aes_ctx, 30.0, dose_range=2.5, smoothness=0.75
        )
        assert_formulations_identical(fresh, f)

    def test_retarget_noop_returns_self(self, aes_ctx):
        f1 = aes_ctx.formulation_for(10.0)
        assert f1.retarget() is f1
        assert f1.retarget(dose_range=f1.dose_range) is f1

    def test_distinct_structures_cached_separately(self, aes_ctx):
        f1 = aes_ctx.formulation_for(10.0)
        f2 = aes_ctx.formulation_for(10.0, seam_smoothness=True)
        assert f1.A.shape[0] < f2.A.shape[0]
        assert aes_ctx.formulation_for(10.0).A is f1.A
