"""Tests for the global router and its STA integration."""

import numpy as np
import pytest

from repro.netlist import Netlist, make_design
from repro.placement import Die, Placement, net_hpwl, place_design
from repro.route import GlobalRouter, RoutingGrid
from repro.route.router import _l_paths
from repro.sta import TimingAnalyzer


@pytest.fixture(scope="module")
def routed_design():
    d = make_design("AES-65", scale=0.25)
    pl = place_design(d)
    router = GlobalRouter(d.netlist, pl, gcell=5.0, capacity=40)
    return d, pl, router.route()


class TestRoutingGrid:
    def test_dimensions(self):
        g = RoutingGrid(width=50.0, height=30.0, gcell=10.0)
        assert (g.m, g.n) == (3, 5)

    def test_gcell_of_clamps(self):
        g = RoutingGrid(width=50.0, height=30.0, gcell=10.0)
        assert g.gcell_of(0.0, 0.0) == (0, 0)
        assert g.gcell_of(49.9, 29.9) == (2, 4)
        assert g.gcell_of(100.0, 100.0) == (2, 4)

    def test_path_usage_accounting(self):
        g = RoutingGrid(width=30.0, height=30.0, gcell=10.0)
        path = [(0, 0), (0, 1), (1, 1)]
        g.add_path(path)
        assert g.edge_usage("h", 0, 0) == 1
        assert g.edge_usage("v", 0, 1) == 1
        g.add_path(path, delta=-1)
        assert g.overflow() == 0
        assert g.h_usage.sum() == 0 and g.v_usage.sum() == 0

    def test_overflow_counts_excess(self):
        g = RoutingGrid(width=30.0, height=10.0, gcell=10.0, capacity=2)
        path = [(0, 0), (0, 1)]
        for _ in range(5):
            g.add_path(path)
        assert g.overflow() == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RoutingGrid(width=-1.0, height=10.0, gcell=5.0)
        with pytest.raises(ValueError):
            RoutingGrid(width=10.0, height=10.0, gcell=5.0, capacity=0)


class TestLPaths:
    def test_both_ls_connect(self):
        a, b = _l_paths((0, 0), (2, 3))
        for path in (a, b):
            assert path[0] == (0, 0) and path[-1] == (2, 3)
            for (i1, j1), (i2, j2) in zip(path, path[1:]):
                assert abs(i1 - i2) + abs(j1 - j2) == 1

    def test_degenerate_same_cell(self):
        a, b = _l_paths((1, 1), (1, 1))
        assert a == [(1, 1)] and b == [(1, 1)]

    def test_straight_line(self):
        a, b = _l_paths((0, 0), (0, 3))
        assert a == b == [(0, 0), (0, 1), (0, 2), (0, 3)]


class TestRouter:
    def test_full_design_routes(self, routed_design):
        d, pl, result = routed_design
        assert result.total_wirelength > 0
        assert set(result.net_lengths) == set(d.netlist.nets)

    def test_routed_length_lower_bounded_by_distance(self, routed_design):
        """Each connection is at least the gcell Manhattan distance."""
        d, pl, result = routed_design
        grid = result.grid
        checked = 0
        for net_name, net in d.netlist.nets.items():
            if net.driver is None or not net.sinks:
                continue
            src = grid.gcell_of(*pl.location(net.driver))
            for sink, _pin in net.sinks[:1]:
                dst = grid.gcell_of(*pl.location(sink))
                min_len = (abs(src[0] - dst[0]) + abs(src[1] - dst[1])) * grid.gcell
                assert result.net_lengths[net_name] >= min_len - 1e-9
                checked += 1
            if checked > 50:
                break

    def test_reroute_reduces_overflow(self):
        """A congested-but-routable design must end with much less
        overflow after rip-up-and-reroute than after L-routing only.
        (With capacity far below aggregate demand, detours can only
        inflate total usage -- the test capacity is chosen above the
        mean-demand floor, like a real metal stack.)"""
        d = make_design("AES-65", scale=0.25)
        pl = place_design(d)
        initial = GlobalRouter(d.netlist, pl, gcell=5.0, capacity=40).route(
            max_reroute_rounds=0
        )
        final = GlobalRouter(d.netlist, pl, gcell=5.0, capacity=40).route(
            max_reroute_rounds=4
        )
        assert final.overflow < 0.2 * initial.overflow
        assert final.rerouted > 0

    def test_congestion_map_shape(self, routed_design):
        _d, _pl, result = routed_design
        cmap = result.grid.congestion_map()
        assert cmap.shape == (result.grid.m, result.grid.n)
        assert np.all(cmap >= 0)

    def test_dijkstra_matches_l_when_uncongested(self):
        nl = Netlist("two")
        nl.add_primary_input("a")
        nl.add_gate("u1", "INVX1", ["a"], "n1")
        nl.add_gate("u2", "INVX1", ["n1"], "y")
        nl.add_primary_output("y")
        die = Die(width=30.0, height=9.0, row_height=1.8, site_width=0.2)
        pl = Placement(die)
        pl.place("u1", 1.0, 0.0)
        pl.place("u2", 25.0, 7.2)
        router = GlobalRouter(nl, pl, gcell=5.0)
        res = router.route()
        src = router.grid.gcell_of(1.0, 0.0)
        dst = router.grid.gcell_of(25.0, 7.2)
        expected = (abs(src[0] - dst[0]) + abs(src[1] - dst[1])) * 5.0
        assert res.net_lengths["n1"] == pytest.approx(expected)


class TestSTAIntegration:
    def test_routed_lengths_increase_loads(self, routed_design):
        """Routed lengths are gcell-quantized upper estimates of HPWL,
        so routed MCT lands above the HPWL MCT but in the same regime."""
        d, pl, result = routed_design
        base = TimingAnalyzer(d.netlist, d.library, pl).analyze()
        routed = TimingAnalyzer(
            d.netlist, d.library, pl, net_lengths=result.net_lengths
        ).analyze()
        assert routed.mct >= base.mct * 0.99
        assert routed.mct <= base.mct * 1.6

    def test_hpwl_close_to_routed_for_short_nets(self, routed_design):
        """Star-routed length correlates with HPWL across the design."""
        d, pl, result = routed_design
        hp, rt = [], []
        for net_name in list(d.netlist.nets)[:400]:
            h = net_hpwl(d.netlist, pl, net_name)
            if h > 0:
                hp.append(h)
                rt.append(result.net_lengths[net_name])
        corr = np.corrcoef(hp, rt)[0, 1]
        assert corr > 0.7
