"""Tests for the pipeline-resilience subsystem (repro.resilience).

Covers the checkpoint store's crash tolerance, the kill-and-resume
contract of :func:`run_dmopt_cells` and :func:`dmopt_dose_range_sweep`,
the watchdog deadline machinery, the chaos fault-injection points, and
the sweep's poisonous-seed rule.
"""

import dataclasses
import json
import time

import numpy as np
import pytest

from repro import telemetry
from repro.experiments.harness import (
    DMoptCell,
    STATUS_TIMEOUT,
    run_dmopt_cells,
)
from repro.resilience import chaos
from repro.resilience.checkpoint import (
    CheckpointStore,
    cell_key,
    content_key,
    dmopt_result_from_payload,
    dmopt_result_payload,
    sweep_point_key,
)
from repro.resilience.watchdog import (
    ENV_CELL_TIMEOUT,
    MapStats,
    resolve_cell_timeout,
    supervised_map,
)

CELLS = [
    DMoptCell("AES-65", 30.0, mode="qp", scale=0.3),
    DMoptCell("AES-65", 30.0, mode="qcp", scale=0.3),
    DMoptCell("AES-65", 50.0, mode="qp", scale=0.3),
]


def _rows_sans_runtime(rows):
    """Canonical JSON of result rows with the wall-clock field dropped."""
    return [
        json.dumps({k: v for k, v in r.items() if k != "runtime"},
                   sort_keys=True)
        for r in rows
    ]


@pytest.fixture
def manifest(tmp_path, monkeypatch):
    """Telemetry capture: yields the manifest path, resets afterwards."""
    path = tmp_path / "manifest.jsonl"
    monkeypatch.setenv(telemetry.ENV_FLAG, "1")
    monkeypatch.setenv(telemetry.ENV_PATH, str(path))
    telemetry.reset()
    yield path
    telemetry.reset()


def _events(path, kind=None):
    if not path.exists():
        return []
    out = [json.loads(line) for line in path.read_text().splitlines()]
    return [e for e in out if kind is None or e["event"] == kind]


@pytest.fixture
def chaos_env(monkeypatch):
    """Set REPRO_CHAOS for the test, reset the parsed config both ways."""

    def set_conf(conf):
        monkeypatch.setenv(chaos.ENV_FLAG, json.dumps(conf))
        chaos.reset()

    yield set_conf
    monkeypatch.delenv(chaos.ENV_FLAG, raising=False)
    chaos.reset()


# ----------------------------------------------------------------------
# checkpoint store
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(path)
        assert store.get("k1") is None
        assert store.put("k1", {"a": 1}, kind="test")
        assert store.get("k1") == {"a": 1}
        assert "k1" in store and len(store) == 1
        store.close()
        again = CheckpointStore(path)
        assert again.get("k1") == {"a": 1}
        rec = json.loads(path.read_text().splitlines()[0])
        assert rec["kind"] == "test" and rec["key"] == "k1"

    def test_resume_false_truncates(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        CheckpointStore(path).put("k1", 1)
        fresh = CheckpointStore(path, resume=False)
        assert len(fresh) == 0
        assert path.read_text() == ""

    def test_corrupt_middle_line_skipped(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(path)
        store.put("k1", 1)
        store.put("k2", 2)
        store.close()
        lines = path.read_text().splitlines()
        lines[0] = '{"not json'
        path.write_text("\n".join(lines) + "\n")
        again = CheckpointStore(path)
        assert again.corrupt_lines == 1
        assert again.get("k1") is None  # re-runs
        assert again.get("k2") == 2

    def test_truncated_tail_dropped_and_repaired(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(path)
        store.put("k1", 1)
        store.put("k2", 2)
        store.close()
        # simulate a kill mid-append: the last line loses its tail
        data = path.read_bytes()
        path.write_bytes(data[:-9])
        again = CheckpointStore(path)
        assert again.corrupt_lines == 1
        assert again.get("k1") == 1
        assert again.get("k2") is None
        # the next append must not concatenate onto the partial line
        again.put("k3", 3)
        again.close()
        recs = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["key"] for r in recs] == ["k1", "k3"]

    def test_content_keys_are_stable_and_distinct(self):
        assert content_key("x", {"a": 1, "b": 2}) == content_key(
            "x", {"b": 2, "a": 1}
        )
        assert content_key("x", {"a": 1}) != content_key("x", {"a": 2})
        cell = CELLS[0]
        assert cell_key(cell) == cell_key(CELLS[0])
        assert cell_key(cell) != cell_key(CELLS[1])
        # a --certify run must not be satisfied by uncertified records
        assert cell_key(cell) != cell_key(cell, certify=True)


# ----------------------------------------------------------------------
# kill-and-resume (the acceptance test)
# ----------------------------------------------------------------------
class TestKillAndResume:
    def test_interrupted_run_resumes_byte_identical(
        self, tmp_path, manifest
    ):
        ck = tmp_path / "cells.jsonl"
        reference = run_dmopt_cells(CELLS, jobs=1, checkpoint=ck)
        assert all(r["status"] == "solved" for r in reference)
        assert len(_events(manifest, "checkpoint_hit")) == 0

        # simulate a kill after two cells: keep two complete records
        # plus a torn third line (interrupted append)
        lines = ck.read_text().splitlines()
        assert len(lines) == 3
        ck.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])

        resumed = run_dmopt_cells(CELLS, jobs=1, checkpoint=ck)
        assert _rows_sans_runtime(resumed) == _rows_sans_runtime(reference)
        # exactly the two surviving cells were served from the file;
        # only the torn one re-ran
        assert len(_events(manifest, "checkpoint_hit")) == 2

        # a second resume re-runs nothing
        resumed2 = run_dmopt_cells(CELLS, jobs=1, checkpoint=ck)
        assert _rows_sans_runtime(resumed2) == _rows_sans_runtime(reference)
        assert len(_events(manifest, "checkpoint_hit")) == 2 + 3

    def test_resume_false_reruns_everything(self, tmp_path, manifest):
        ck = tmp_path / "cells.jsonl"
        run_dmopt_cells(CELLS[:1], jobs=1, checkpoint=ck)
        run_dmopt_cells(CELLS[:1], jobs=1, checkpoint=ck, resume=False)
        assert len(_events(manifest, "checkpoint_hit")) == 0

    def test_sweep_checkpoint_resume(self, tmp_path, manifest):
        from repro.core import DesignContext, dmopt_dose_range_sweep
        from repro.netlist import make_design

        ctx = DesignContext(make_design("AES-65", scale=0.3))
        ck = tmp_path / "sweep.jsonl"
        ranges = [5.0, 4.0]
        ref = dmopt_dose_range_sweep(ctx, 30.0, ranges, mode="qcp",
                                     checkpoint=ck)
        resumed = dmopt_dose_range_sweep(ctx, 30.0, ranges, mode="qcp",
                                         checkpoint=ck)
        assert len(_events(manifest, "checkpoint_hit")) == 2
        for a, b in zip(ref, resumed):
            assert b.mct == pytest.approx(a.mct, abs=0)
            assert b.leakage == pytest.approx(a.leakage, abs=0)
            assert b.solve.info.get("resumed") is True
            assert b.formulation is None

    def test_dmopt_result_payload_roundtrip(self):
        from repro.core import DesignContext, optimize_dose_map
        from repro.netlist import make_design

        ctx = DesignContext(make_design("AES-65", scale=0.3))
        res = optimize_dose_map(ctx, 30.0, mode="qcp")
        back = dmopt_result_from_payload(dmopt_result_payload(res))
        assert back.mct == res.mct
        assert back.leakage == res.leakage
        np.testing.assert_array_equal(
            back.dose_map_poly.values, res.dose_map_poly.values
        )
        assert back.solve.x.size == 0  # never a warm-start seed

    def test_sweep_key_ignores_warm_start(self):
        from repro.core import DesignContext
        from repro.netlist import make_design

        ctx = DesignContext(make_design("AES-65", scale=0.3))
        assert sweep_point_key(ctx, 30.0, "qcp", 5.0, True, {}) == \
            sweep_point_key(ctx, 30.0, "qcp", 5.0, False, {})
        assert sweep_point_key(ctx, 30.0, "qcp", 5.0, True, {}) != \
            sweep_point_key(ctx, 30.0, "qp", 5.0, True, {})


# ----------------------------------------------------------------------
# watchdog
# ----------------------------------------------------------------------
def _sleepy(arg):
    x, delay = arg
    time.sleep(delay)
    return x * x


class TestResolveCellTimeout:
    def test_default_none(self, monkeypatch):
        monkeypatch.delenv(ENV_CELL_TIMEOUT, raising=False)
        assert resolve_cell_timeout() is None

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv(ENV_CELL_TIMEOUT, "2.5")
        assert resolve_cell_timeout() == 2.5

    def test_arg_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_CELL_TIMEOUT, "2.5")
        assert resolve_cell_timeout(9.0) == 9.0

    def test_nonpositive_disables(self, monkeypatch):
        monkeypatch.delenv(ENV_CELL_TIMEOUT, raising=False)
        assert resolve_cell_timeout(0) is None
        assert resolve_cell_timeout(-1.0) is None

    def test_malformed_env_named_in_error(self, monkeypatch):
        monkeypatch.setenv(ENV_CELL_TIMEOUT, "soon")
        with pytest.raises(ValueError, match="REPRO_CELL_TIMEOUT.*'soon'"):
            resolve_cell_timeout()


class TestSupervisedMapWatchdog:
    def test_slow_item_killed_others_complete(self):
        items = [(0, 0.0), (1, 30.0), (2, 0.0), (3, 0.0)]
        stats = MapStats()
        out = supervised_map(
            _sleepy, items, jobs=2, timeout=1.0,
            timeout_result=lambda item, elapsed: ("timeout", item[0]),
            stats=stats,
        )
        assert out == [0, ("timeout", 1), 4, 9]
        assert stats.timeouts == 1

    def test_timeout_without_handler_raises(self):
        with pytest.raises(TimeoutError, match="watchdog"):
            supervised_map(_sleepy, [(0, 30.0)], jobs=1, timeout=0.5)

    def test_on_result_sees_every_item(self):
        seen = {}
        supervised_map(
            _sleepy, [(i, 0.0) for i in range(4)], jobs=2,
            on_result=lambda idx, val: seen.__setitem__(idx, val),
        )
        assert seen == {0: 0, 1: 1, 2: 4, 3: 9}


class TestResolveJobsError:
    def test_malformed_env_named_in_error(self, monkeypatch):
        from repro.experiments.harness import resolve_jobs

        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS.*'many'"):
            resolve_jobs()


class TestContextCacheLRU:
    def test_bounded(self):
        from repro.experiments import harness

        harness._CELL_CTX.clear()
        for i, scale in enumerate(np.linspace(0.1, 0.2, 6)):
            harness._cell_context("AES-65", float(scale), False)
            assert len(harness._CELL_CTX) <= harness._CELL_CTX_MAX
        # most recently used survive
        assert len(harness._CELL_CTX) == harness._CELL_CTX_MAX
        harness._CELL_CTX.clear()


# ----------------------------------------------------------------------
# chaos injection
# ----------------------------------------------------------------------
class TestChaosConfig:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(chaos.ENV_FLAG, raising=False)
        chaos.reset()
        assert not chaos.enabled()
        assert not chaos.solver_nan()

    def test_malformed_json_rejected(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_FLAG, "{not json")
        chaos.reset()
        with pytest.raises(ValueError, match="REPRO_CHAOS"):
            chaos.enabled()
        chaos.reset()

    def test_unknown_point_rejected(self, chaos_env):
        with pytest.raises(ValueError, match="unknown injection points"):
            chaos_env({"meteor_strike": {"nth": 1}})
            chaos.enabled()

    def test_nth_fires_once(self, chaos_env):
        chaos_env({"solver_nan": {"nth": 2}})
        assert [chaos.solver_nan() for _ in range(4)] == [
            False, True, False, False,
        ]

    def test_indices_trigger(self, chaos_env):
        chaos_env({"slow_solve": {"indices": [3], "seconds": 0.0}})
        assert chaos.fires("slow_solve", index=3) is not None
        assert chaos.fires("slow_solve", index=2) is None

    def test_p_trigger_deterministic(self, chaos_env):
        chaos_env({"seed": 7, "solver_nan": {"p": 0.5}})
        run1 = [chaos.fires("solver_nan") is not None for _ in range(16)]
        chaos.reset()
        run2 = [chaos.fires("solver_nan") is not None for _ in range(16)]
        assert run1 == run2
        assert any(run1) and not all(run1)


class TestChaosCheckpoint:
    def test_corrupt_write_not_committed(self, tmp_path, chaos_env):
        path = tmp_path / "ck.jsonl"
        chaos_env({"corrupt_checkpoint": {"nth": 1}})
        store = CheckpointStore(path)
        assert store.put("k1", {"a": 1}) is False
        assert store.get("k1") is None  # not committed in memory either
        # a reload sees only the torn line and re-runs the key
        reload = CheckpointStore(path)
        assert reload.get("k1") is None
        assert reload.corrupt_lines == 1
        # the store repairs the tail on the next append
        assert store.put("k2", {"b": 2}) is True
        store.close()
        recs = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["key"] for r in recs] == ["k2"]


class TestChaosSolverNan:
    def test_fallback_chain_recovers(self, chaos_env):
        from repro.solver import solve_qp_robust

        chaos_env({"solver_nan": {"nth": 1}})
        n = 4
        P = np.eye(n)
        q = -np.ones(n)
        A = np.eye(n)
        res = solve_qp_robust(P, q, A, -np.ones(n), np.ones(n))
        assert res.ok
        assert len(res.info["attempts"]) > 1  # the primary was faked dead


class TestChaosWatchdogEndToEnd:
    """Acceptance: an injected hang is killed, the rest completes."""

    def test_slow_cell_times_out_rest_completes(
        self, chaos_env, manifest
    ):
        chaos_env({"slow_solve": {"indices": [1], "seconds": 600}})
        rows = run_dmopt_cells(CELLS, jobs=2, cell_timeout=2.0)
        assert rows[1]["status"] == STATUS_TIMEOUT
        assert np.isnan(rows[1]["mct"])
        assert rows[0]["status"] == "solved"
        assert rows[2]["status"] == "solved"
        kills = _events(manifest, "watchdog_kill")
        assert len(kills) == 1 and kills[0]["index"] == 1
        run_end = _events(manifest, "run_end")[-1]
        assert run_end["timeouts"] == 1

    def test_timeout_rows_not_checkpointed(
        self, tmp_path, chaos_env, manifest
    ):
        ck = tmp_path / "ck.jsonl"
        chaos_env({"slow_solve": {"indices": [0], "seconds": 600}})
        rows = run_dmopt_cells(CELLS[:2], jobs=2, cell_timeout=2.0,
                               checkpoint=ck)
        assert rows[0]["status"] == STATUS_TIMEOUT
        # only the completed cell was recorded; the timed-out one
        # re-runs after the hang is fixed
        chaos_env({})
        rows2 = run_dmopt_cells(CELLS[:2], jobs=1, checkpoint=ck)
        assert rows2[0]["status"] == "solved"
        assert len(_events(manifest, "checkpoint_hit")) == 1

    def test_worker_crash_recovered(self, chaos_env):
        chaos_env({"worker_crash": {"indices": [0]}})
        rows = run_dmopt_cells(CELLS[:2], jobs=2)
        # the crashing cell ends up retried in the parent (where the
        # injection point never fires) and still solves
        assert [r["status"] for r in rows] == ["solved", "solved"]


# ----------------------------------------------------------------------
# poisonous-seed rule of the dose-range sweep
# ----------------------------------------------------------------------
class TestPoisonousSeed:
    def test_failed_point_cold_starts_next_solve(self, monkeypatch):
        from repro.core import DesignContext, dmopt_dose_range_sweep
        from repro.core import dmopt as dmopt_mod
        from repro.netlist import make_design
        from repro.solver.result import STATUS_DIVERGED, diagnostic_result

        ctx = DesignContext(make_design("AES-65", scale=0.3))
        original = dmopt_mod.optimize_dose_map
        seeds = []

        def instrumented(ctx_, grid, **kwargs):
            seeds.append(kwargs.get("warm_start"))
            res = original(ctx_, grid, **kwargs)
            if kwargs.get("dose_range") == 4.0:  # the poisoned point
                res = dataclasses.replace(
                    res,
                    solve=diagnostic_result(
                        STATUS_DIVERGED, 1, "injected failure"
                    ),
                )
            return res

        monkeypatch.setattr(dmopt_mod, "optimize_dose_map", instrumented)
        ranges = [5.0, 4.0, 3.0]
        swept = dmopt_dose_range_sweep(ctx, 30.0, ranges, mode="qcp",
                                       warm_start=True)
        assert [r.ok for r in swept] == [True, False, True]
        # point 1 was seeded from point 0; point 2 must NOT be seeded
        # from the failed point 1
        assert seeds[0] is None
        assert seeds[1] is not None
        assert seeds[2] is None

        monkeypatch.setattr(dmopt_mod, "optimize_dose_map", original)
        cold = dmopt_dose_range_sweep(ctx, 30.0, ranges, mode="qcp",
                                      warm_start=False)
        # goldens of the surviving points match an all-cold sweep
        for i in (0, 2):
            assert swept[i].mct == pytest.approx(cold[i].mct, rel=1e-12)
            assert swept[i].leakage == pytest.approx(
                cold[i].leakage, rel=1e-12
            )
