"""Degenerate-input coverage: diagnostics instead of tracebacks.

The robustness contract (solver fallback chain + prevalidation): no
uncaught exception escapes ``repro.solver``, ``core.dmopt`` or
``core.dosepl`` for infeasible, degenerate, or ill-conditioned inputs --
every such input yields a diagnostic :class:`SolveResult` (or a clear,
early ``ValueError`` for caller bugs like dimension mismatches).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import DesignContext, optimize_dose_map
from repro.library import CellLibrary
from repro.netlist import Netlist, make_design
from repro.netlist.designs import DesignBundle
from repro.solver import (
    FAMILY_TIMING,
    STATUS_INFEASIBLE,
    solve_qp,
    solve_qp_ipm,
    solve_qp_robust,
)


class TestSolverDegenerates:
    """Both backends and the chain accept pathological problem data."""

    def test_crossed_bounds_qp(self):
        res = solve_qp(sp.eye(2), np.zeros(2), sp.eye(2),
                       np.array([1.0, 3.0]), np.array([2.0, 1.0]))
        assert res.status == STATUS_INFEASIBLE
        assert res.info["n_bound_conflicts"] == 1
        assert res.info["worst_row"] == 1

    def test_crossed_bounds_ipm(self):
        res = solve_qp_ipm(sp.eye(2), np.zeros(2), sp.eye(2),
                           np.array([1.0, 3.0]), np.array([2.0, 1.0]))
        assert res.status == STATUS_INFEASIBLE
        assert not res.ok

    def test_crossed_bounds_robust_not_retried(self):
        """Infeasible data must not burn fallback attempts."""
        res = solve_qp_robust(sp.eye(1), np.zeros(1), sp.eye(1),
                              np.array([2.0]), np.array([1.0]))
        assert res.status == STATUS_INFEASIBLE
        assert len(res.info["attempts"]) == 1

    def test_all_infinite_rows_solved_unconstrained(self):
        """+-inf on every row: effectively unconstrained, still answered."""
        n = 3
        l = np.full(n, -np.inf)
        u = np.full(n, np.inf)
        for solver in (solve_qp, solve_qp_ipm):
            res = solver(sp.eye(n), np.array([-1.0, 2.0, 0.5]),
                         sp.eye(n), l, u)
            assert res.ok
            assert np.allclose(res.x, [1.0, -2.0, -0.5], atol=1e-6)
            assert "unconstrained" in res.info["note"]

    def test_empty_constraint_matrix(self):
        """m = 0 rows: unconstrained minimum, no raise."""
        A = sp.csc_matrix((0, 2))
        res = solve_qp_ipm(sp.eye(2), np.array([1.0, -1.0]), A,
                           np.zeros(0), np.zeros(0))
        assert res.ok
        assert np.allclose(res.x, [-1.0, 1.0], atol=1e-6)

    def test_dimension_mismatch_still_raises(self):
        """Caller bugs (not problem data) keep raising ValueError."""
        with pytest.raises(ValueError, match="dimensions"):
            solve_qp_robust(sp.eye(2), np.zeros(3), sp.eye(2),
                            np.zeros(2), np.ones(2))


def _tiny_ctx():
    return DesignContext(make_design("AES-65", scale=0.3))


class TestDMoptDegenerates:
    def test_one_by_one_dose_grid(self):
        """Grid coarser than the die: a single dose variable still works."""
        ctx = _tiny_ctx()
        die = ctx.placement.die
        res = optimize_dose_map(ctx, max(die.width, die.height) * 2, mode="qp")
        assert res.formulation.partition.m == 1
        assert res.formulation.partition.n == 1
        assert res.solve is not None  # diagnostic or solved, never a raise

    def test_combinational_only_netlist(self):
        """No flip-flops: MCT is the max PI->PO arrival; DMopt still runs."""
        lib = CellLibrary("65nm")
        nl = Netlist("comb")
        nl.add_primary_input("a")
        nl.add_primary_input("b")
        nl.add_gate("u1", "NAND2X1", ["a", "b"], "n1")
        nl.add_gate("u2", "INVX1", ["n1"], "y")
        nl.add_primary_output("y")
        bundle = DesignBundle(name="comb", netlist=nl, library=lib,
                              die_width=20.0, die_height=20.0)
        ctx = DesignContext(bundle)
        res = optimize_dose_map(ctx, 30.0, mode="qp")
        assert res.solve is not None
        if res.ok:
            assert res.mct <= res.baseline_mct + 1e-9

    def test_empty_netlist_diagnosed_early(self):
        """Zero gates: one clear ValueError, not a deep numpy error."""
        lib = CellLibrary("65nm")
        nl = Netlist("empty")
        nl.add_primary_input("a")
        nl.add_primary_output("a")
        bundle = DesignBundle(name="empty", netlist=nl, library=lib,
                              die_width=10.0, die_height=10.0)
        with pytest.raises(ValueError, match="no gates"):
            DesignContext(bundle)

    def test_unachievable_timing_bound(self):
        """tau far below tau_min: infeasible verdict with the slack needed."""
        ctx = _tiny_ctx()
        tau = ctx.baseline.mct * 0.1  # no dose map can deliver a 10x speedup
        res = optimize_dose_map(ctx, 30.0, mode="qp", timing_bound=tau)
        assert not res.ok
        assert res.status == STATUS_INFEASIBLE
        # graceful degradation: baseline numbers, zero delta doses
        assert res.mct == ctx.baseline.mct
        assert res.leakage == ctx.baseline_leakage
        assert np.allclose(res.dose_map_poly.values, 0.0)
        # the diagnosis names timing and quantifies the concession
        report = res.infeasibility
        assert report is not None
        assert FAMILY_TIMING in report.blocking
        assert report.tau_min is not None
        assert report.tau_min > tau
        assert report.tau_slack_needed == pytest.approx(
            report.tau_min - tau, abs=1e-9
        )
        assert "tau" in report.summary()
