"""Tests for electrical rule checks."""

import pytest

from repro.core import DesignContext, optimize_dose_map
from repro.library import CellLibrary
from repro.netlist import Netlist, make_design
from repro.placement import Die, Placement
from repro.sta import TimingAnalyzer, check_electrical_rules, default_limits


@pytest.fixture(scope="module")
def ctx():
    return DesignContext(make_design("AES-65", scale=0.25))


def _fanout_monster(lib, fanout=40):
    """A weak driver into a huge fanout: guaranteed ERC trouble."""
    nl = Netlist("monster")
    nl.add_primary_input("a")
    nl.add_gate("drv", "INVX1", ["a"], "big")
    for i in range(fanout):
        nl.add_gate(f"ld{i}", "INVX1", ["big"], f"z{i}")
    die = Die(width=60.0, height=18.0, row_height=1.8, site_width=0.2)
    pl = Placement(die)
    pl.place("drv", 0.0, 0.0)
    for i in range(fanout):
        pl.place(f"ld{i}", (i * 1.4) % 58.0, 1.8 * (1 + i // 40))
    return TimingAnalyzer(nl, lib, pl)


class TestERC:
    def test_clean_design(self, ctx):
        erc = check_electrical_rules(ctx.analyzer)
        # the fanout-sized benchmark designs are largely sane; the few
        # violators are drive-limited cells (DFF tops out at X4,
        # XNOR2 at X1)
        assert len(erc.slew_violations) < 0.05 * ctx.netlist.n_gates
        limited = ("DFF", "SDFF", "XNOR2", "NAND4", "NOR4", "FA")
        for gate, _v, _l in erc.slew_violations:
            assert ctx.netlist.gate(gate).master.startswith(limited)
        assert "ERC:" in erc.summary()

    def test_fanout_monster_flagged(self):
        lib = CellLibrary("65nm")
        erc = check_electrical_rules(_fanout_monster(lib))
        assert not erc.clean
        assert erc.cap_violations
        assert erc.cap_violations[0][0] == "drv"

    def test_violations_sorted_worst_first(self):
        lib = CellLibrary("65nm")
        erc = check_electrical_rules(_fanout_monster(lib), max_slew_ns=0.01)
        vals = [v for _g, v, _l in erc.slew_violations]
        assert vals == sorted(vals, reverse=True)

    def test_explicit_limits(self, ctx):
        strict = check_electrical_rules(
            ctx.analyzer, max_slew_ns=1e-6, max_cap_ff=1e-6
        )
        # every gate has positive output slew; cap violations exclude
        # gates driving dangling (zero-load) nets
        assert len(strict.slew_violations) == ctx.netlist.n_gates
        assert len(strict.cap_violations) >= 0.8 * ctx.netlist.n_gates

    def test_default_limits_from_library(self):
        lib = CellLibrary("65nm")
        slew, cap = default_limits(lib)
        assert slew == pytest.approx(0.512)
        assert cap is None

    def test_negative_dose_worsens_transitions(self, ctx):
        """Leakage-recovery doses slow transitions: the ERC interaction
        the module docstring warns about."""
        base = check_electrical_rules(ctx.analyzer, max_slew_ns=0.25)
        slow = check_electrical_rules(
            ctx.analyzer,
            doses={g: (-5.0, 0.0) for g in ctx.netlist.gates},
            max_slew_ns=0.25,
        )
        assert len(slow.slew_violations) >= len(base.slew_violations)

    def test_dmopt_result_is_erc_clean(self, ctx):
        """The QP dose map must not create transition violations against
        the characterization-window limit."""
        res = optimize_dose_map(ctx, 10.0, mode="qp")
        erc = check_electrical_rules(
            ctx.analyzer, doses=ctx.gate_doses(res.dose_map_poly)
        )
        base = check_electrical_rules(ctx.analyzer)
        assert len(erc.slew_violations) <= len(base.slew_violations) + 2
