"""Unit tests for the analytical device models (repro.tech)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.tech import (
    device,
    get_node,
    tech_65nm,
    tech_90nm,
)


@pytest.fixture(params=["65nm", "90nm"])
def node(request):
    return get_node(request.param)


class TestNode:
    def test_get_node_roundtrip(self):
        assert get_node("65nm").name == "65nm"
        assert get_node("90nm").name == "90nm"

    def test_get_node_unknown(self):
        with pytest.raises(KeyError, match="unknown technology node"):
            get_node("45nm")

    def test_nominal_lengths(self):
        assert tech_65nm().l_nominal == 65.0
        assert tech_90nm().l_nominal == 90.0

    def test_vth_rolloff_monotone(self, node):
        """Vth decreases monotonically as L shrinks (short-channel effect)."""
        lengths = np.linspace(node.l_nominal - 10, node.l_nominal + 10, 21)
        vth = node.vth(lengths)
        assert np.all(np.diff(vth) > 0)

    def test_vth_at_nominal(self, node):
        assert node.vth(node.l_nominal) == pytest.approx(node.vth0 - node.dibl_v0)

    def test_device_turns_on(self, node):
        """Vdd must exceed Vth over the whole +/-10 nm modulation range."""
        lengths = np.linspace(node.l_nominal - 10, node.l_nominal + 10, 21)
        assert np.all(node.vth(lengths) < node.vdd)


class TestDelayModel:
    def test_delay_increases_with_length(self, node):
        lengths = np.linspace(node.l_nominal - 10, node.l_nominal + 10, 41)
        d = device.stage_delay(node, lengths, 400.0, 2.0)
        assert np.all(np.diff(d) > 0)

    def test_delay_decreases_with_width(self, node):
        widths = np.linspace(300.0, 600.0, 31)
        d = device.stage_delay(node, node.l_nominal, widths, 2.0)
        assert np.all(np.diff(d) < 0)

    def test_delay_approximately_linear_in_length(self, node):
        """Paper Fig. 3: delay ~linear in L near nominal.

        Check the residual of a linear fit is under 2 % of the delay swing.
        """
        lengths = np.linspace(node.l_nominal - 10, node.l_nominal + 10, 21)
        d = device.stage_delay(node, lengths, 400.0, 2.0)
        coeffs = np.polyfit(lengths, d, 1)
        resid = d - np.polyval(coeffs, lengths)
        assert np.max(np.abs(resid)) < 0.02 * (d.max() - d.min())

    def test_delay_increases_with_load(self, node):
        loads = np.linspace(0.5, 10.0, 20)
        d = device.stage_delay(node, node.l_nominal, 400.0, loads)
        assert np.all(np.diff(d) > 0)

    def test_delay_increases_with_input_slew(self, node):
        d0 = device.stage_delay(node, node.l_nominal, 400.0, 2.0, input_slew_ns=0.0)
        d1 = device.stage_delay(node, node.l_nominal, 400.0, 2.0, input_slew_ns=0.2)
        assert d1 > d0

    def test_stack_scales_resistance(self, node):
        r1 = device.on_resistance(node, node.l_nominal, 400.0)
        d1 = device.stage_delay(node, node.l_nominal, 400.0, 2.0, stack=1.0)
        d2 = device.stage_delay(node, node.l_nominal, 400.0, 2.0, stack=2.0)
        assert d2 > d1
        assert r1 > 0

    def test_output_slew_positive_and_load_monotone(self, node):
        loads = np.linspace(0.5, 10.0, 10)
        s = device.output_slew(node, node.l_nominal, 400.0, loads)
        assert np.all(s > 0)
        assert np.all(np.diff(s) > 0)

    def test_invalid_geometry_raises(self, node):
        with pytest.raises(ValueError):
            device.on_resistance(node, -1.0, 400.0)
        with pytest.raises(ValueError):
            device.on_resistance(node, node.l_nominal, 0.0)


class TestLeakageModel:
    def test_leakage_exponential_in_length(self, node):
        """Paper Fig. 5: log(leakage) ~linear in L."""
        lengths = np.linspace(node.l_nominal - 10, node.l_nominal + 10, 21)
        leak = device.leakage_power(node, lengths, 400.0)
        assert np.all(np.diff(leak) < 0)  # longer gate -> less leakage
        log_leak = np.log(leak)
        coeffs = np.polyfit(lengths, log_leak, 1)
        resid = log_leak - np.polyval(coeffs, lengths)
        # Not exactly log-linear (the Vth roll-off is itself exponential),
        # but close on this window.
        assert np.max(np.abs(resid)) < 0.15 * (log_leak.max() - log_leak.min())
        # And strongly super-linear in plain scale: the quadratic term of a
        # 2nd-order fit must be significant (paper approximates it as
        # quadratic for exactly this reason).
        quad = np.polyfit(lengths, leak, 2)
        assert quad[0] > 0

    def test_leakage_linear_in_width(self, node):
        """Paper Fig. 6: leakage exactly linear in W in this model."""
        widths = np.linspace(300.0, 600.0, 31)
        leak = device.leakage_power(node, node.l_nominal, widths)
        coeffs = np.polyfit(widths, leak, 1)
        assert np.allclose(leak, np.polyval(coeffs, widths), rtol=1e-12)
        assert coeffs[0] > 0

    def test_leakage_stack_reduction(self, node):
        i1 = device.leakage_current(node, node.l_nominal, 400.0, stack=1.0)
        i2 = device.leakage_current(node, node.l_nominal, 400.0, stack=2.0)
        assert i2 == pytest.approx(i1 / 2.0)

    def test_leakage_power_is_current_times_vdd(self, node):
        i = device.leakage_current(node, node.l_nominal, 400.0)
        p = device.leakage_power(node, node.l_nominal, 400.0)
        assert p == pytest.approx(i * node.vdd)

    def test_paper_table2_leakage_ratio_65nm(self):
        """Calibration target: +5 % dose multiplies 65 nm leakage ~2.55x
        and -5 % dose multiplies it ~0.62x (Table II end columns)."""
        node = tech_65nm()
        base = device.leakage_power(node, 65.0, 400.0)
        up = device.leakage_power(node, 55.0, 400.0)  # +5 % dose, Ds=-2
        down = device.leakage_power(node, 75.0, 400.0)
        assert up / base == pytest.approx(2.55, rel=0.05)
        assert down / base == pytest.approx(0.62, rel=0.05)

    def test_paper_table3_leakage_ratio_90nm(self):
        """Calibration target: Table III end columns (~1.90x / ~0.70x)."""
        node = tech_90nm()
        base = device.leakage_power(node, 90.0, 500.0)
        up = device.leakage_power(node, 80.0, 500.0)
        down = device.leakage_power(node, 100.0, 500.0)
        assert up / base == pytest.approx(1.90, rel=0.05)
        assert down / base == pytest.approx(0.70, rel=0.05)


class TestDoseConversion:
    def test_dose_to_delta_cd_sign(self):
        """Increasing dose shrinks CD (negative sensitivity)."""
        assert device.dose_to_delta_cd(5.0, -2.0) == -10.0
        assert device.dose_to_delta_cd(-5.0, -2.0) == 10.0

    @given(st.floats(-5, 5), st.floats(-3, -0.5))
    def test_dose_to_delta_cd_linear(self, dose, ds):
        assert device.dose_to_delta_cd(dose, ds) == pytest.approx(dose * ds)


class TestVectorization:
    @given(
        st.lists(st.floats(min_value=55.0, max_value=110.0), min_size=1, max_size=8)
    )
    def test_delay_vectorized_matches_scalar(self, lengths):
        node = tech_65nm()
        vec = device.stage_delay(node, np.array(lengths), 400.0, 2.0)
        scl = [float(device.stage_delay(node, l, 400.0, 2.0)) for l in lengths]
        assert np.allclose(vec, scl)

    @given(
        st.lists(st.floats(min_value=200.0, max_value=900.0), min_size=1, max_size=8)
    )
    def test_leakage_vectorized_matches_scalar(self, widths):
        node = tech_90nm()
        vec = device.leakage_power(node, node.l_nominal, np.array(widths))
        scl = [float(device.leakage_power(node, node.l_nominal, w)) for w in widths]
        assert np.allclose(vec, scl)
