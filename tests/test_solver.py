"""Unit tests for the QP/QCP solvers, cross-checked against scipy."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st
from scipy.optimize import minimize

from repro.solver import STATUS_SOLVED, solve_qcp, solve_qp


def _scipy_qp(P, q, A, l, u, x0):
    """Dense reference solution via SLSQP."""
    P = np.asarray(P.todense()) if sp.issparse(P) else np.asarray(P)
    A = np.asarray(A.todense()) if sp.issparse(A) else np.asarray(A)

    def f(x):
        return 0.5 * x @ P @ x + q @ x

    cons = []
    for i in range(A.shape[0]):
        row = A[i]
        if np.isfinite(u[i]):
            cons.append(
                {"type": "ineq", "fun": lambda x, r=row, b=u[i]: b - r @ x}
            )
        if np.isfinite(l[i]):
            cons.append(
                {"type": "ineq", "fun": lambda x, r=row, b=l[i]: r @ x - b}
            )
    res = minimize(f, x0, constraints=cons, method="SLSQP",
                   options={"maxiter": 500, "ftol": 1e-10})
    return res.x, res.fun


class TestQPBasics:
    def test_unconstrained_minimum_inside_box(self):
        P = sp.eye(2)
        q = np.array([-0.3, -0.4])
        A = sp.eye(2)
        res = solve_qp(P, q, A, np.zeros(2), np.ones(2))
        assert res.ok
        assert np.allclose(res.x, [0.3, 0.4], atol=1e-4)

    def test_active_box_constraint(self):
        P = sp.eye(2)
        q = np.array([-5.0, -5.0])
        A = sp.eye(2)
        res = solve_qp(P, q, A, np.zeros(2), np.ones(2))
        assert res.ok
        assert np.allclose(res.x, [1.0, 1.0], atol=1e-4)

    def test_equality_constraint(self):
        """min x1^2 + x2^2 s.t. x1 + x2 = 1 -> (0.5, 0.5)."""
        P = 2 * sp.eye(2)
        q = np.zeros(2)
        A = sp.csc_matrix([[1.0, 1.0]])
        res = solve_qp(P, q, A, np.array([1.0]), np.array([1.0]))
        assert res.ok
        assert np.allclose(res.x, [0.5, 0.5], atol=1e-4)

    def test_semidefinite_p(self):
        """P with a zero block (like arrival-time variables in DMopt)."""
        P = sp.diags([1.0, 0.0])
        q = np.array([0.0, 1.0])
        A = sp.eye(2)
        res = solve_qp(P, q, A, np.array([-1.0, -1.0]), np.array([1.0, 1.0]))
        assert res.ok
        assert res.x[1] == pytest.approx(-1.0, abs=1e-4)  # pure LP direction

    def test_one_sided_constraints(self):
        P = sp.eye(1)
        q = np.array([-10.0])
        A = sp.eye(1)
        res = solve_qp(P, q, A, np.array([-np.inf]), np.array([2.0]))
        assert res.ok
        assert res.x[0] == pytest.approx(2.0, abs=1e-4)

    def test_dimension_validation(self):
        with pytest.raises(ValueError, match="dimensions"):
            solve_qp(sp.eye(2), np.zeros(3), sp.eye(2), np.zeros(2), np.ones(2))
        with pytest.raises(ValueError, match="bounds"):
            solve_qp(sp.eye(2), np.zeros(2), sp.eye(2), np.zeros(3), np.ones(2))

    def test_inconsistent_bounds_diagnosed(self):
        """l > u returns a diagnostic infeasible result, not a raise."""
        res = solve_qp(sp.eye(1), np.zeros(1), sp.eye(1),
                       np.array([2.0]), np.array([1.0]))
        assert res.status == "infeasible"
        assert not res.ok
        assert res.info["n_bound_conflicts"] == 1
        assert "l > u" in res.info["note"]

    def test_warm_start_converges_faster(self):
        rng = np.random.default_rng(3)
        n = 30
        M = rng.normal(size=(n, n))
        P = sp.csc_matrix(M @ M.T + np.eye(n))
        q = rng.normal(size=n)
        A = sp.eye(n)
        l, u = -np.ones(n), np.ones(n)
        cold = solve_qp(P, q, A, l, u)
        warm = solve_qp(P, q, A, l, u, x0=cold.x)
        assert warm.ok
        assert warm.iterations <= cold.iterations


class TestQPAgainstScipy:
    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_strictly_convex(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 6, 10
        M = rng.normal(size=(n, n))
        P = M @ M.T + 0.5 * np.eye(n)
        q = rng.normal(size=n)
        A = rng.normal(size=(m, n))
        # anchor the boxes on a known-feasible point so the random
        # problem is guaranteed feasible even with m > n
        x_feas = rng.normal(size=n)
        center = A @ x_feas
        l = center - rng.uniform(0.5, 2.0, size=m)
        u = center + rng.uniform(0.5, 2.0, size=m)
        res = solve_qp(sp.csc_matrix(P), q, sp.csc_matrix(A), l, u)
        assert res.ok
        x_ref, f_ref = _scipy_qp(P, q, A, l, u, x0=np.zeros(n))
        f_ours = 0.5 * res.x @ P @ res.x + q @ res.x
        assert f_ours <= f_ref + 1e-3 * (1 + abs(f_ref))
        # and feasible
        ax = A @ res.x
        assert np.all(ax >= l - 1e-3) and np.all(ax <= u + 1e-3)

    def test_badly_scaled_problem(self):
        """Ruiz equilibration must handle 6 orders of magnitude spread."""
        P = sp.diags([1e-4, 1e2])
        q = np.array([1e-3, -1e3])
        A = sp.csc_matrix([[1e3, 0.0], [0.0, 1e-2]])
        l = np.array([-1e3, -1e-2])
        u = np.array([1e3, 1e-2])
        res = solve_qp(P, q, A, l, u)
        assert res.ok
        ax = A @ res.x
        assert np.all(ax >= l - 1e-4) and np.all(ax <= u + 1e-4)


class TestQCP:
    def test_inactive_quadratic_constraint(self):
        """Budget so loose the problem is an LP: lam stays 0."""
        c = np.array([1.0, 1.0])
        A = sp.eye(2)
        res = solve_qcp(c, A, np.zeros(2), np.ones(2),
                        sp.eye(2), np.zeros(2), s=100.0)
        assert res.ok
        assert res.info["lam"] == 0.0
        assert np.allclose(res.x, [0.0, 0.0], atol=1e-4)

    def test_active_quadratic_constraint(self):
        """min -x1-x2, 0<=x<=2, x1^2+x2^2<=2 -> (1,1), obj -2."""
        c = np.array([-1.0, -1.0])
        A = sp.eye(2)
        Q = 2.0 * sp.eye(2)
        res = solve_qcp(c, A, np.zeros(2), np.full(2, 2.0), Q, np.zeros(2), 2.0)
        assert res.ok
        assert np.allclose(res.x, [1.0, 1.0], atol=5e-3)
        assert res.obj == pytest.approx(-2.0, abs=1e-2)
        assert res.info["quad"] <= 2.0 + 1e-3

    def test_quadratic_with_linear_term(self):
        """min -x, 0<=x<=10, (x-1)^2 <= 1 i.e. x^2/ -2x +0 <= 0 -> x=2."""
        c = np.array([-1.0])
        A = sp.eye(1)
        Q = 2.0 * sp.eye(1)  # 1/2 x'Qx = x^2
        g = np.array([-2.0])
        res = solve_qcp(c, A, np.zeros(1), np.full(1, 10.0), Q, g, s=0.0)
        assert res.ok
        assert res.x[0] == pytest.approx(2.0, abs=5e-3)

    def test_unattainable_budget_flagged(self):
        """x >= 1 but x^2 <= 0.25 is infeasible."""
        c = np.array([1.0])
        A = sp.eye(1)
        res = solve_qcp(c, A, np.array([1.0]), np.array([2.0]),
                        2.0 * sp.eye(1), np.zeros(1), s=0.25)
        assert not res.ok
        assert "unattainable" in res.info.get("note", "")

    @settings(deadline=None, max_examples=6)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_qcp_against_scipy(self, seed):
        rng = np.random.default_rng(seed)
        n = 4
        c = rng.normal(size=n)
        A = np.eye(n)
        l, u = -np.ones(n), np.ones(n)
        Q = np.eye(n)
        s = 0.5

        res = solve_qcp(c, sp.csc_matrix(A), l, u, sp.csc_matrix(Q),
                        np.zeros(n), s)

        def f(x):
            return c @ x

        cons = [{"type": "ineq", "fun": lambda x: s - 0.5 * x @ x}]
        ref = minimize(f, np.zeros(n), bounds=[(-1, 1)] * n,
                       constraints=cons, method="SLSQP")
        assert res.obj <= ref.fun + 1e-2 * (1 + abs(ref.fun))
        assert 0.5 * res.x @ res.x <= s + 1e-3


class TestResultAPI:
    def test_repr_and_ok(self):
        res = solve_qp(sp.eye(1), np.zeros(1), sp.eye(1),
                       np.array([-1.0]), np.array([1.0]))
        assert res.ok
        assert res.status == STATUS_SOLVED
        assert "solved" in repr(res)
        assert res.solve_time >= 0.0
