"""Tests for min-delay (hold) analysis."""

import pytest

from repro.library import CellLibrary
from repro.netlist import Netlist, make_design
from repro.placement import Die, Placement, place_design
from repro.sta import TimingAnalyzer, analyze_hold


@pytest.fixture(scope="module")
def lib65():
    return CellLibrary("65nm")


def _place_all(nl, die_w=40.0):
    die = Die(width=die_w, height=9.0, row_height=1.8, site_width=0.2)
    p = Placement(die)
    for i, name in enumerate(nl.gates):
        p.place(name, (i * 2.0) % 38.0, 1.8 * ((i * 2) // 38))
    return p


def _reg_to_reg(n_mid=2):
    """FF -> n_mid INVs -> FF."""
    nl = Netlist("r2r")
    nl.add_primary_input("d0")
    nl.add_gate("ff_a", "DFFX1", ["d0"], "q0")
    prev = "q0"
    for i in range(n_mid):
        nl.add_gate(f"u{i}", "INVX1", [prev], f"n{i}")
        prev = f"n{i}"
    nl.add_gate("ff_b", "DFFX1", [prev], "q1")
    nl.add_gate("po", "BUFX1", ["q1"], "out")
    nl.add_primary_output("out")
    return nl


class TestHoldAnalysis:
    def test_min_le_max_arrival(self, lib65):
        d = make_design("AES-65", scale=0.2)
        pl = place_design(d)
        ta = TimingAnalyzer(d.netlist, d.library, pl)
        max_res = ta.analyze()
        hold = analyze_hold(ta)
        for g in d.netlist.gates:
            assert hold.min_arrival[g] <= max_res.arrival[g] + 1e-12

    def test_short_path_has_less_hold_slack(self, lib65):
        short = _reg_to_reg(1)
        long = _reg_to_reg(6)
        h_short = analyze_hold(TimingAnalyzer(short, lib65, _place_all(short)))
        h_long = analyze_hold(TimingAnalyzer(long, lib65, _place_all(long)))
        assert h_short.worst_hold_slack < h_long.worst_hold_slack

    def test_hold_endpoints_are_ff_dpins(self, lib65):
        nl = _reg_to_reg(2)
        hold = analyze_hold(TimingAnalyzer(nl, lib65, _place_all(nl)))
        assert len(hold.hold_slack) == 1  # only ff_b's D pin (ff_a is PI-fed)
        (key,) = hold.hold_slack
        assert key.startswith("FF:ff_b:")

    def test_violation_with_huge_requirement(self, lib65):
        nl = _reg_to_reg(1)
        ta = TimingAnalyzer(nl, lib65, _place_all(nl))
        hold = analyze_hold(ta, hold_ns=10.0)
        assert hold.worst_hold_slack < 0
        assert len(hold.violations) == 1

    def test_no_violation_with_zero_requirement(self, lib65):
        nl = _reg_to_reg(1)
        ta = TimingAnalyzer(nl, lib65, _place_all(nl))
        hold = analyze_hold(ta, hold_ns=0.0)
        assert hold.worst_hold_slack > 0
        assert hold.violations == []

    def test_more_dose_reduces_hold_slack(self, lib65):
        """The paper's Section I point: extra dose (shorter gates) makes
        short paths faster and thus hold-riskier."""
        nl = _reg_to_reg(2)
        ta = TimingAnalyzer(nl, lib65, _place_all(nl))
        nominal = analyze_hold(ta)
        dosed = analyze_hold(
            ta, doses={g: (5.0, 0.0) for g in nl.gates}
        )
        assert dosed.worst_hold_slack < nominal.worst_hold_slack

    def test_dmopt_result_is_hold_safe(self):
        """The QCP dose map must not introduce hold violations on the
        benchmark design (validation step of the flow)."""
        from repro.core import DesignContext, optimize_dose_map
        from repro.netlist import make_design

        ctx = DesignContext(make_design("AES-65", scale=0.25))
        res = optimize_dose_map(ctx, 10.0, mode="qcp")
        doses = ctx.gate_doses(res.dose_map_poly)
        hold = analyze_hold(ctx.analyzer, doses=doses)
        assert hold.worst_hold_slack >= 0, "dose map created a hold violation"

    def test_empty_hold_set(self, lib65):
        """A purely combinational design has no hold endpoints."""
        nl = Netlist("comb")
        nl.add_primary_input("a")
        nl.add_gate("u0", "INVX1", ["a"], "y")
        nl.add_primary_output("y")
        hold = analyze_hold(TimingAnalyzer(nl, lib65, _place_all(nl)))
        assert hold.hold_slack == {}
        assert hold.worst_hold_slack == float("inf")
