"""Unit tests for DesignContext and the DMopt formulation assembly."""

import numpy as np
import pytest

from repro.core import DesignContext, build_formulation
from repro.dosemap import DoseMap, GridPartition
from repro.netlist import make_design


@pytest.fixture(scope="module")
def ctx():
    """A small AES-65 variant for fast tests."""
    return DesignContext(make_design("AES-65", scale=0.25))


@pytest.fixture(scope="module")
def ctx_w():
    return DesignContext(make_design("AES-65", scale=0.25), fit_width=True)


class TestDesignContext:
    def test_from_name(self):
        small = DesignContext(make_design("AES-90", scale=0.2))
        assert small.baseline.mct > 0
        assert small.baseline_leakage > 0

    def test_type_validation(self):
        with pytest.raises(TypeError):
            DesignContext(42)

    def test_baseline_worst_slack_zero(self, ctx):
        assert ctx.baseline.worst_slack == pytest.approx(0.0, abs=1e-9)

    def test_fits_available_for_all_gates(self, ctx):
        for name in list(ctx.netlist.gates)[:50]:
            dfit = ctx.delay_fit_for(name)
            lfit = ctx.leakage_fit_for(name)
            assert dfit.a > 0
            assert lfit.alpha >= 0

    def test_gate_doses_snap(self, ctx):
        part = GridPartition(
            ctx.placement.die.width, ctx.placement.die.height, 5.0
        )
        vals = np.full((part.m, part.n), 1.13)  # off-grid dose
        dm = DoseMap(part, values=vals)
        doses = ctx.gate_doses(dm)
        assert all(dp == 1.0 for dp, _da in doses.values())

    def test_gate_doses_no_snap(self, ctx):
        part = GridPartition(
            ctx.placement.die.width, ctx.placement.die.height, 5.0
        )
        dm = DoseMap(part, values=np.full((part.m, part.n), 1.13))
        doses = ctx.gate_doses(dm, snap=False)
        assert all(dp == pytest.approx(1.13) for dp, _da in doses.values())

    def test_golden_eval_zero_map_is_baseline(self, ctx):
        part = GridPartition(
            ctx.placement.die.width, ctx.placement.die.height, 10.0
        )
        res, leak = ctx.golden_eval(DoseMap(part))
        assert res.mct == pytest.approx(ctx.baseline.mct, rel=1e-12)
        assert leak == pytest.approx(ctx.baseline_leakage, rel=1e-12)

    def test_golden_eval_uniform_positive_dose(self, ctx):
        part = GridPartition(
            ctx.placement.die.width, ctx.placement.die.height, 10.0
        )
        dm = DoseMap(part, values=np.full((part.m, part.n), 3.0))
        res, leak = ctx.golden_eval(dm)
        assert res.mct < ctx.baseline.mct
        assert leak > ctx.baseline_leakage


class TestFormulation:
    def test_dimensions_poly(self, ctx):
        form = build_formulation(ctx, grid_size=10.0)
        g = form.partition.n_grids
        n = ctx.netlist.n_gates
        assert form.n_vars == g + n + 1
        assert form.idx_T == form.n_vars - 1
        assert form.A.shape[1] == form.n_vars
        assert form.l.size == form.A.shape[0] == form.u.size

    def test_dimensions_both_layers(self, ctx_w):
        form = build_formulation(ctx_w, grid_size=10.0, both_layers=True)
        g = form.partition.n_grids
        assert form.n_vars == 2 * g + ctx_w.netlist.n_gates + 1

    def test_both_layers_requires_fit_width(self, ctx):
        with pytest.raises(ValueError, match="fit_width"):
            build_formulation(ctx, grid_size=10.0, both_layers=True)

    def test_constraint_counts(self, ctx):
        form = build_formulation(ctx, grid_size=10.0)
        part = form.partition
        m, n_cols = part.m, part.n
        n_range = part.n_grids
        n_smooth = (m - 1) * (n_cols - 1) + m * (n_cols - 1) + (m - 1) * n_cols
        # at least: range + smoothness + one arc per gate + clock row
        assert form.A.shape[0] > n_range + n_smooth + ctx.netlist.n_gates

    def test_zero_dose_baseline_is_feasible(self, ctx):
        """x = (d=0, baseline arrivals, T=MCT) satisfies all constraints."""
        form = build_formulation(ctx, grid_size=10.0)
        g = form.partition.n_grids
        x = np.zeros(form.n_vars)
        for i, name in enumerate(form.gate_order):
            x[g + i] = ctx.baseline.arrival[name]
        x[form.idx_T] = ctx.baseline.mct
        ax = form.A @ x
        # tolerance: gate delays in constraints come from the *fitted*
        # linear model's t0 which can differ from table delay slightly
        assert np.all(ax <= form.u + 5e-3)
        assert np.all(ax >= form.l - 5e-3)

    def test_predicted_delta_leakage_zero_at_origin(self, ctx):
        form = build_formulation(ctx, grid_size=10.0)
        assert form.predicted_delta_leakage(np.zeros(form.n_vars)) == 0.0

    def test_predicted_delta_leakage_sign(self, ctx):
        """Uniform +dose increases leakage; -dose decreases it."""
        form = build_formulation(ctx, grid_size=10.0)
        g = form.partition.n_grids
        x = np.zeros(form.n_vars)
        x[:g] = 3.0
        assert form.predicted_delta_leakage(x) > 0
        x[:g] = -3.0
        assert form.predicted_delta_leakage(x) < 0

    def test_split_roundtrip(self, ctx_w):
        form = build_formulation(ctx_w, grid_size=10.0, both_layers=True)
        g = form.partition.n_grids
        x = np.arange(form.n_vars, dtype=float)
        poly, active, t = form.split(x)
        assert poly.flat()[0] == 0.0 and poly.flat()[-1] == g - 1
        assert active.flat()[0] == g
        assert t == form.n_vars - 1

    def test_formulation_cache_hit_and_granularity(self, ctx):
        """Same structure key reuses matrices; a new grid size does not."""
        f1 = ctx.formulation_for(10.0)
        f2 = ctx.formulation_for(10.0, dose_range=3.0)
        assert f2.A is f1.A  # retargeted sibling shares the assembly
        f3 = ctx.formulation_for(5.0)
        assert f3.A is not f1.A
        assert f3.partition.n_grids > f1.partition.n_grids

    def test_formulation_cache_invalidated_by_die_change(self):
        """A die swap under the same grid size must rebuild (stale M x N)."""
        import dataclasses

        ctx = DesignContext(make_design("AES-65", scale=0.25))
        f1 = ctx.formulation_for(10.0)
        die = ctx.placement.die
        ctx.placement.die = dataclasses.replace(
            die, width=die.width * 2.0, height=die.height * 2.0
        )
        f2 = ctx.formulation_for(10.0)
        assert f2.A is not f1.A
        assert (f2.partition.m, f2.partition.n) != (
            f1.partition.m, f1.partition.n,
        )
        assert f2.partition.width == pytest.approx(die.width * 2.0)

    def test_leakage_quadratic_is_diagonal_psd(self, ctx):
        form = build_formulation(ctx, grid_size=10.0)
        diag = form.P_leak.diagonal()
        assert np.all(diag >= 0)
        g = form.partition.n_grids
        assert np.any(diag[:g] > 0)  # poly dose quadratic terms exist
        assert np.all(diag[g:] == 0)  # arrivals/T have no cost
