"""Unit tests for dosePl's internal heuristics (Algorithm 1 pieces)."""

import math

import pytest

from repro.core.dosepl import DoseplConfig, _cell_leakage, _path_weights
from repro.core import DesignContext
from repro.netlist import make_design
from repro.sta.paths import TimingPath


class TestPathWeights:
    def _path(self, gates, delay):
        return TimingPath(gates=tuple(gates), delay=delay, endpoint="PO:x")

    def test_weight_formula(self):
        """Eq. (13): W(cell) = sum over its paths of exp(-slack)."""
        period = 10.0
        paths = [
            self._path(["a", "b"], 9.5),  # slack 0.5
            self._path(["b", "c"], 8.0),  # slack 2.0
        ]
        w = _path_weights(paths, period)
        assert w["a"] == pytest.approx(math.exp(-0.5))
        assert w["b"] == pytest.approx(math.exp(-0.5) + math.exp(-2.0))
        assert w["c"] == pytest.approx(math.exp(-2.0))

    def test_critical_paths_dominate(self):
        period = 5.0
        paths = [
            self._path(["crit"], 5.0),  # zero slack
            self._path(["cool"], 1.0),  # 4 ns slack
        ]
        w = _path_weights(paths, period)
        assert w["crit"] > 10 * w["cool"]

    def test_empty(self):
        assert _path_weights([], 1.0) == {}


class TestCellLeakageHelper:
    def test_matches_library(self):
        ctx = DesignContext(make_design("AES-90", scale=0.2))
        gate = next(iter(ctx.netlist.gates))
        master = ctx.netlist.gate(gate).master
        direct = ctx.library.characterized(master, 2.0, 0.0).leakage_uw
        assert _cell_leakage(ctx, gate, 2.0) == pytest.approx(direct)

    def test_snaps_continuous_dose(self):
        ctx = DesignContext(make_design("AES-90", scale=0.2))
        gate = next(iter(ctx.netlist.gates))
        assert _cell_leakage(ctx, gate, 1.13) == pytest.approx(
            _cell_leakage(ctx, gate, 1.0)
        )


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = DoseplConfig()
        assert cfg.rounds == 10  # "total number of rounds ... is 10"
        assert cfg.swaps_per_path == 1  # "one cell per critical path"
        assert cfg.swaps_per_round == 1  # "one swap for each round"
        assert cfg.hpwl_increase_limit == pytest.approx(0.20)  # "20%"
        assert cfg.leakage_increase_limit == pytest.approx(0.10)  # "10%"
