"""Unit tests for the standard-cell library substrate (repro.library)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.library import (
    CellLibrary,
    DOSE_STEP,
    NLDMTable,
    build_masters,
    cell_leakage,
    characterize_cell,
)
from repro.tech import get_node


@pytest.fixture(scope="module")
def lib65():
    return CellLibrary("65nm")


@pytest.fixture(scope="module")
def lib90():
    return CellLibrary("90nm")


class TestMasters:
    def test_master_counts_match_paper(self, lib65):
        """Paper: 36 combinational + 9 sequential masters."""
        assert len(lib65.combinational_names) == 36
        assert len(lib65.sequential_names) == 9

    def test_drive_strength_scales_width(self, lib65):
        x1 = lib65.cell("INVX1")
        x4 = lib65.cell("INVX4")
        assert x4.w_n == pytest.approx(4 * x1.w_n)
        assert x4.w_p == pytest.approx(4 * x1.w_p)

    def test_stack_sizing(self, lib65):
        """NAND2 pull-down is stacked and upsized 2x vs the inverter."""
        inv = lib65.cell("INVX1")
        nand = lib65.cell("NAND2X1")
        assert nand.stack_n == 2
        assert nand.w_n == pytest.approx(2 * inv.w_n)
        assert nand.w_p == pytest.approx(inv.w_p)

    def test_sequential_flags(self, lib65):
        assert lib65.cell("DFFX1").is_sequential
        assert lib65.cell("DFFX1").setup_ns > 0
        assert not lib65.cell("NAND2X1").is_sequential

    def test_unknown_master_raises(self, lib65):
        with pytest.raises(KeyError, match="unknown cell master"):
            lib65.cell("NAND9X9")

    def test_invalid_master_construction(self):
        masters = build_masters(200.0, 400.0)
        m = masters["INVX1"]
        with pytest.raises(ValueError):
            type(m)(**{**m.__dict__, "w_n": -1.0})


class TestNLDMTable:
    def _table(self):
        return NLDMTable(
            slew_axis=np.array([0.01, 0.1, 1.0]),
            load_axis=np.array([1.0, 2.0, 4.0]),
            values=np.arange(9.0).reshape(3, 3),
        )

    def test_lookup_exact_corner(self):
        t = self._table()
        assert t.lookup(0.01, 1.0) == 0.0
        assert t.lookup(1.0, 4.0) == 8.0

    def test_lookup_interpolates(self):
        t = self._table()
        # midway between loads 1 and 2 on the first slew row: (0+1)/2
        assert t.lookup(0.01, 1.5) == pytest.approx(0.5)

    def test_lookup_clamps_out_of_range(self):
        t = self._table()
        assert t.lookup(10.0, 100.0) == 8.0
        assert t.lookup(0.0, 0.0) == 0.0

    def test_nearest_index(self):
        t = self._table()
        assert t.nearest_index(0.09, 3.9) == (1, 2)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="does not match"):
            NLDMTable(np.array([0.1, 0.2]), np.array([1.0, 2.0]), np.zeros((3, 3)))

    def test_monotone_axis_validation(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            NLDMTable(np.array([0.2, 0.1]), np.array([1.0, 2.0]), np.zeros((2, 2)))


class TestCharacterization:
    def test_delay_monotone_in_dose(self, lib65):
        """More poly dose -> shorter gate -> faster cell."""
        delays = [
            lib65.characterized("NAND2X1", d).delay_at(0.05, 2.0)
            for d in (-4.0, -2.0, 0.0, 2.0, 4.0)
        ]
        assert all(a > b for a, b in zip(delays, delays[1:]))

    def test_leakage_monotone_in_dose(self, lib65):
        leaks = [
            lib65.characterized("NAND2X1", d).leakage_uw
            for d in (-4.0, -2.0, 0.0, 2.0, 4.0)
        ]
        assert all(a < b for a, b in zip(leaks, leaks[1:]))

    def test_active_dose_modulates_width(self, lib65):
        """More active dose -> narrower transistors -> slower, less leaky."""
        fast = lib65.characterized("INVX1", 0.0, -3.0)  # wider
        slow = lib65.characterized("INVX1", 0.0, 3.0)  # narrower
        assert fast.delay_at(0.05, 2.0) < slow.delay_at(0.05, 2.0)
        assert fast.leakage_uw > slow.leakage_uw

    def test_width_effect_much_smaller_than_length(self, lib65):
        """Paper Sec. V: max |dW| = 10 nm vs >=200 nm widths -> slight impact."""
        nom = lib65.nominal("INVX1")
        dl_only = lib65.characterized("INVX1", 5.0, 0.0)
        dw_only = lib65.characterized("INVX1", 0.0, 5.0)
        dl_shift = abs(dl_only.delay_at(0.05, 2.0) - nom.delay_at(0.05, 2.0))
        dw_shift = abs(dw_only.delay_at(0.05, 2.0) - nom.delay_at(0.05, 2.0))
        assert dw_shift < 0.35 * dl_shift

    def test_multistage_cells_slower(self, lib65):
        buf = lib65.nominal("BUFX1").delay_at(0.05, 2.0)
        inv = lib65.nominal("INVX1").delay_at(0.05, 2.0)
        assert buf > inv

    def test_higher_drive_faster_under_load(self, lib65):
        x1 = lib65.nominal("INVX1").delay_at(0.05, 8.0)
        x4 = lib65.nominal("INVX4").delay_at(0.05, 8.0)
        assert x4 < x1

    def test_sequential_has_clkq_and_setup(self, lib65):
        dff = lib65.nominal("DFFX1")
        assert dff.setup_ns > 0
        assert dff.delay_at(0.05, 2.0) > lib65.nominal("BUFX1").delay_at(0.05, 2.0)

    def test_characterize_rejects_nonphysical_bias(self, lib65):
        node = get_node("65nm")
        with pytest.raises(ValueError):
            characterize_cell(node, lib65.cell("INVX1"), dl_nm=-65.0)
        with pytest.raises(ValueError):
            characterize_cell(node, lib65.cell("INVX1"), dw_nm=-1e6)

    def test_cache_returns_same_object(self, lib65):
        a = lib65.characterized("INVX2", 1.5, 0.0)
        b = lib65.characterized("INVX2", 1.5, 0.0)
        assert a is b

    def test_leakage_helper_matches_characterized(self, lib65):
        node = get_node("65nm")
        m = lib65.cell("NOR2X1")
        assert lib65.nominal("NOR2X1").leakage_uw == pytest.approx(
            cell_leakage(node, m)
        )


class TestDoseGrid:
    def test_variant_grid_has_21_steps(self, lib65):
        """Paper: 21 characterized libraries from -5 % to +5 % per layer."""
        doses = lib65.variant_doses()
        assert len(doses) == 21
        assert doses[0] == -5.0 and doses[-1] == 5.0
        assert np.allclose(np.diff(doses), DOSE_STEP)

    @given(st.floats(min_value=-10, max_value=10, allow_nan=False))
    def test_snap_dose_lands_on_grid(self, dose):
        lib = CellLibrary("65nm")
        snapped = lib.snap_dose(dose)
        assert -5.0 <= snapped <= 5.0
        assert abs(snapped / DOSE_STEP - round(snapped / DOSE_STEP)) < 1e-9

    @given(st.floats(min_value=-5, max_value=5, allow_nan=False))
    def test_snap_dose_error_bounded(self, dose):
        lib = CellLibrary("65nm")
        assert abs(lib.snap_dose(dose) - dose) <= DOSE_STEP / 2 + 1e-12

    def test_dose_cd_conversion(self, lib65):
        assert lib65.dose_to_dl(5.0) == -10.0
        assert lib65.dose_to_dw(-5.0) == 10.0


class TestCrossNode:
    def test_90nm_cells_leak_more(self, lib65, lib90):
        """90 nm node carries higher absolute leakage per um in this setup
        (paper Table III shows ~5x the 65 nm chip totals)."""
        l65 = lib65.nominal("INVX1").leakage_uw
        l90 = lib90.nominal("INVX1").leakage_uw
        assert l90 > l65

    def test_repr(self, lib65):
        assert "36 comb + 9 seq" in repr(lib65)
