"""Integration tests for DMopt (QP and QCP dose-map optimization)."""

import numpy as np
import pytest

from repro.core import DesignContext, optimize_dose_map
from repro.core.snap import SNAP_CEIL, SNAP_FLOOR, SNAP_NEAREST, snap_dose_map
from repro.dosemap import DoseMap, GridPartition
from repro.library import CellLibrary
from repro.netlist import make_design


@pytest.fixture(scope="module")
def ctx():
    return DesignContext(make_design("AES-65", scale=0.25))


@pytest.fixture(scope="module")
def ctx_w():
    return DesignContext(make_design("AES-65", scale=0.25), fit_width=True)


@pytest.fixture(scope="module")
def qp_result(ctx):
    return optimize_dose_map(ctx, grid_size=10.0, mode="qp")


@pytest.fixture(scope="module")
def qcp_result(ctx):
    return optimize_dose_map(ctx, grid_size=10.0, mode="qcp")


class TestQPMode:
    def test_leakage_improves(self, ctx, qp_result):
        """The headline QP claim: leakage reduction without timing loss."""
        assert qp_result.leakage < ctx.baseline_leakage
        assert qp_result.leakage_improvement_pct > 2.0

    def test_timing_not_degraded(self, ctx, qp_result):
        assert qp_result.mct <= ctx.baseline.mct * 1.002

    def test_solver_converged(self, qp_result):
        assert qp_result.solve.ok

    def test_dose_map_is_equipment_feasible(self, qp_result):
        """Constraints (3)-(4): range and smoothness after snapping."""
        dm = qp_result.dose_map_poly
        assert dm.range_violations(5.0) <= 0.25 + 1e-9  # snap can add 1/2 step
        assert dm.smoothness_violations(2.0) <= 0.5 + 1e-9

    def test_doses_on_variant_grid(self, qp_result, ctx):
        doses = qp_result.dose_map_poly.values
        assert np.allclose(doses * 2, np.round(doses * 2))

    def test_noncritical_regions_get_negative_dose(self, qp_result):
        """Leakage reduction comes from lowering dose somewhere."""
        assert qp_result.dose_map_poly.values.min() < -0.4


class TestQCPMode:
    def test_timing_improves(self, ctx, qcp_result):
        """The headline QCP claim: MCT reduction without leakage increase."""
        assert qcp_result.mct < ctx.baseline.mct
        assert qcp_result.mct_improvement_pct > 1.0

    def test_leakage_within_budget(self, ctx, qcp_result):
        # golden leakage stays near baseline (small model/snap slack ok)
        assert qcp_result.leakage <= ctx.baseline_leakage * 1.02

    def test_critical_regions_get_positive_dose(self, qcp_result):
        assert qcp_result.dose_map_poly.values.max() > 0.4

    def test_multiplier_positive(self, qcp_result):
        assert qcp_result.solve.info["lam"] > 0

    def test_predicted_T_close_to_golden(self, qcp_result):
        assert qcp_result.predicted_T == pytest.approx(
            qcp_result.mct, rel=0.05
        )


class TestModesAndOptions:
    def test_invalid_mode(self, ctx):
        with pytest.raises(ValueError, match="mode"):
            optimize_dose_map(ctx, 10.0, mode="lp")

    def test_finer_grid_not_worse(self, ctx):
        coarse = optimize_dose_map(ctx, grid_size=30.0, mode="qp")
        fine = optimize_dose_map(ctx, grid_size=5.0, mode="qp")
        # paper: finer grids give more improvement (allow small tolerance)
        assert (
            fine.leakage_improvement_pct
            >= coarse.leakage_improvement_pct - 0.5
        )

    def test_tighter_smoothness_less_improvement(self, ctx):
        loose = optimize_dose_map(ctx, grid_size=10.0, mode="qp", smoothness=2.0)
        tight = optimize_dose_map(ctx, grid_size=10.0, mode="qp", smoothness=0.25)
        assert (
            tight.leakage_improvement_pct
            <= loose.leakage_improvement_pct + 0.5
        )

    def test_zero_range_is_noop(self, ctx):
        """With no dose freedom (and tau = baseline so the problem stays
        feasible), the optimizer must return the unchanged design."""
        res = optimize_dose_map(
            ctx, grid_size=10.0, mode="qp", dose_range=0.0,
            timing_bound=ctx.baseline.mct,
        )
        assert res.mct == pytest.approx(ctx.baseline.mct, rel=1e-9)
        assert res.leakage == pytest.approx(ctx.baseline_leakage, rel=1e-9)

    def test_infeasible_timing_bound_detected(self, ctx):
        """A clock bound below what max dose can reach is infeasible;
        the solver must flag it rather than return a clean status."""
        res = optimize_dose_map(
            ctx, grid_size=10.0, mode="qp", dose_range=0.0,
            timing_bound=ctx.baseline.mct * 0.5,
        )
        assert not res.solve.ok

    def test_both_layers_qcp(self, ctx_w):
        poly = optimize_dose_map(ctx_w, 10.0, mode="qcp", both_layers=False)
        both = optimize_dose_map(ctx_w, 10.0, mode="qcp", both_layers=True)
        assert both.dose_map_active is not None
        # paper: both-layer is at most slightly different from poly-only
        assert both.mct == pytest.approx(poly.mct, rel=0.05)

    def test_admm_backend_matches_ipm(self, ctx):
        ipm = optimize_dose_map(ctx, grid_size=30.0, mode="qp", method="ipm")
        admm = optimize_dose_map(
            ctx, grid_size=30.0, mode="qp", method="admm",
            qp_kwargs={"eps_abs": 1e-5, "eps_rel": 1e-5, "max_iter": 30000},
        )
        assert admm.leakage == pytest.approx(ipm.leakage, rel=0.02)

    def test_leakage_budget_relaxation_buys_speed(self, ctx):
        tight = optimize_dose_map(ctx, 10.0, mode="qcp", leakage_budget=0.0)
        loose = optimize_dose_map(
            ctx, 10.0, mode="qcp",
            leakage_budget=0.3 * ctx.baseline_leakage,
        )
        assert loose.mct <= tight.mct + 1e-6


class TestSnapModes:
    def _map(self):
        part = GridPartition(20.0, 20.0, 10.0)
        return DoseMap(part, values=np.full((part.m, part.n), 1.13))

    def test_nearest(self):
        lib = CellLibrary("65nm")
        out = snap_dose_map(self._map(), lib, SNAP_NEAREST)
        assert np.all(out.values == 1.0)

    def test_ceil(self):
        lib = CellLibrary("65nm")
        out = snap_dose_map(self._map(), lib, SNAP_CEIL)
        assert np.all(out.values == 1.5)

    def test_floor(self):
        lib = CellLibrary("65nm")
        out = snap_dose_map(self._map(), lib, SNAP_FLOOR)
        assert np.all(out.values == 1.0)

    def test_ceil_clips_at_range(self):
        lib = CellLibrary("65nm")
        part = GridPartition(20.0, 20.0, 10.0)
        dm = DoseMap(part, values=np.full((part.m, part.n), 4.9))
        out = snap_dose_map(dm, lib, SNAP_CEIL)
        assert np.all(out.values == 5.0)

    def test_unknown_mode(self):
        lib = CellLibrary("65nm")
        with pytest.raises(ValueError, match="snap mode"):
            snap_dose_map(self._map(), lib, "stochastic")


class TestSeamSmoothness:
    def test_seamed_map_tiles_feasibly(self, ctx):
        """With seam constraints, the tiled multi-die field respects the
        scanner smoothness limit everywhere (paper Sec. II-B)."""
        res = optimize_dose_map(ctx, grid_size=10.0, mode="qcp",
                                seam_smoothness=True)
        field = res.dose_map_poly.tiled(2, 2)
        # allow one snap step of slack on top of delta=2
        assert field.smoothness_violations(2.0) <= 0.5 + 1e-9

    def test_seam_constraints_cost_little(self, ctx):
        free = optimize_dose_map(ctx, grid_size=10.0, mode="qcp")
        seamed = optimize_dose_map(ctx, grid_size=10.0, mode="qcp",
                                   seam_smoothness=True)
        # the continuous optimum can only get worse under extra rows,
        # but golden results differ by at most bisection + snap noise --
        # the observable claim is that seam feasibility is near-free
        assert seamed.mct == pytest.approx(free.mct, rel=0.02)
        assert seamed.mct_improvement_pct > 0.5 * free.mct_improvement_pct
