"""Tests for the wafer-level extension and the ACLV-uniformity baseline."""

import numpy as np
import pytest

from repro.core import DesignContext
from repro.dosemap import (
    GridPartition,
    aclv_nm,
    optimize_cd_uniformity,
    systematic_cd_error_map,
)
from repro.netlist import make_design
from repro.wafer import DieSite, Wafer, equalize_wafer_timing


@pytest.fixture(scope="module")
def ctx():
    return DesignContext(make_design("AES-65", scale=0.25))


class TestWaferModel:
    def test_die_count_positive(self):
        wafer = Wafer()
        assert wafer.n_dies > 10

    def test_dies_inside_radius(self):
        wafer = Wafer(radius_mm=100.0, die_w_mm=25.0, die_h_mm=25.0)
        for site in wafer.sites:
            # die corners must be inside the usable radius
            corner = np.hypot(
                abs(site.x_mm) + 12.5, abs(site.y_mm) + 12.5
            )
            assert corner <= 100.0 + 1e-9

    def test_radial_bias_grows_outward(self):
        wafer = Wafer(random_cd_sigma_nm=0.0)
        center = min(wafer.sites, key=DieSite.radius_mm)
        edge = max(wafer.sites, key=DieSite.radius_mm)
        assert wafer.cd_bias_nm(edge) > wafer.cd_bias_nm(center)

    def test_bias_vector_matches_sites(self):
        wafer = Wafer()
        vec = wafer.cd_bias_vector()
        assert vec.shape == (wafer.n_dies,)
        assert vec[0] == pytest.approx(wafer.cd_bias_nm(wafer.sites[0]))

    def test_invalid_wafer(self):
        with pytest.raises(ValueError):
            Wafer(radius_mm=-1.0)
        with pytest.raises(ValueError, match="no die"):
            Wafer(radius_mm=5.0, die_w_mm=50.0, die_h_mm=50.0)

    def test_deterministic(self):
        a = Wafer(seed=3).cd_bias_vector()
        b = Wafer(seed=3).cd_bias_vector()
        assert np.array_equal(a, b)


class TestWaferEqualization:
    def test_spread_shrinks(self, ctx):
        wafer = Wafer(radial_cd_bias_nm=4.0)
        res = equalize_wafer_timing(ctx, wafer)
        assert res.spread_after < 0.5 * res.spread_before
        assert res.sigma_after < res.sigma_before

    def test_timing_yield_improves(self, ctx):
        wafer = Wafer(radial_cd_bias_nm=4.0)
        res = equalize_wafer_timing(ctx, wafer)
        target = ctx.baseline.mct * 1.01
        assert res.timing_yield(target) >= res.timing_yield(target, after=False)
        assert res.timing_yield(target) > 0.9

    def test_positive_target_trades_leakage_for_speed(self, ctx):
        wafer = Wafer(radial_cd_bias_nm=4.0)
        nominal = equalize_wafer_timing(ctx, wafer, target_dose=0.0)
        fast = equalize_wafer_timing(ctx, wafer, target_dose=2.0)
        assert fast.mct_after.max() < nominal.mct_after.max()
        assert fast.leakage_after > nominal.leakage_after

    def test_offsets_respect_range(self, ctx):
        wafer = Wafer(radial_cd_bias_nm=20.0)  # larger than correctable
        res = equalize_wafer_timing(ctx, wafer, dose_range=5.0)
        assert np.all(np.abs(res.offsets) <= 5.0 + 1e-12)
        # uncorrectable residue remains
        assert res.spread_after > 0


class TestACLVBaseline:
    def _partition(self):
        return GridPartition(width=100.0, height=80.0, g=10.0)

    def test_synthetic_map_has_radial_shape(self):
        part = self._partition()
        cd = systematic_cd_error_map(part, radial_nm=3.0, noise_nm=0.0)
        center = cd[part.m // 2, part.n // 2]
        corner = cd[0, 0]
        assert corner > center

    def test_uniformity_optimization_reduces_aclv(self):
        part = self._partition()
        cd = systematic_cd_error_map(part)
        dm = optimize_cd_uniformity(cd, part)
        before = aclv_nm(cd)
        after = aclv_nm(cd, dm)
        assert after < 0.5 * before

    def test_correction_map_is_feasible(self):
        part = self._partition()
        cd = systematic_cd_error_map(part)
        dm = optimize_cd_uniformity(cd, part)
        assert dm.is_feasible(tol=1e-4)

    def test_positive_cd_error_gets_positive_dose(self):
        """Too-wide lines (positive error) need more dose (Ds < 0)."""
        part = GridPartition(width=30.0, height=30.0, g=10.0)
        cd = np.full((part.m, part.n), 2.0)
        dm = optimize_cd_uniformity(cd, part)
        assert np.all(dm.values > 0.5)

    def test_shape_validation(self):
        part = self._partition()
        with pytest.raises(ValueError, match="shape"):
            optimize_cd_uniformity(np.zeros((2, 2)), part)

    def test_uncorrectable_map_clips_at_range(self):
        part = GridPartition(width=30.0, height=30.0, g=10.0)
        cd = np.full((part.m, part.n), 50.0)  # needs +25 % dose
        dm = optimize_cd_uniformity(cd, part, dose_range=5.0)
        assert np.all(dm.values <= 5.0 + 1e-6)
        assert aclv_nm(cd, dm) == pytest.approx(aclv_nm(cd), abs=1e-6)

    def test_design_aware_beats_uniformity_for_timing(self, ctx):
        """The paper's thesis: CD-flat is not timing-optimal.  A
        design-aware QCP map must beat the ACLV-optimal (flat) map on
        MCT at equal-or-better leakage discipline."""
        from repro.core import optimize_dose_map
        from repro.dosemap import DoseMap

        part = GridPartition(
            ctx.placement.die.width, ctx.placement.die.height, 10.0
        )
        # with zero incoming CD error the ACLV-optimal map is all-zero
        flat = optimize_cd_uniformity(np.zeros((part.m, part.n)), part)
        res_flat, _ = ctx.golden_eval(DoseMap(part, values=flat.values))
        design_aware = optimize_dose_map(ctx, 10.0, mode="qcp")
        assert design_aware.mct < res_flat.mct
