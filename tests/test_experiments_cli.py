"""Tests for the experiments CLI runner (python -m repro.experiments)."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestExperimentsCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("table2", "table7", "fig10"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig10",
            "table2", "table3", "table4", "table5", "table6",
            "table7", "table8",
        }
        assert expected == set(EXPERIMENTS)

    def test_run_one_light_experiment(self, tmp_path, capsys):
        rc = main(["fig5", "--out", str(tmp_path)])
        assert rc == 0
        saved = tmp_path / "fig5.txt"
        assert saved.exists()
        assert "Fig. 5" in saved.read_text()
        out = capsys.readouterr().out
        assert "leakage uW" in out

    def test_run_table7(self, tmp_path, capsys):
        rc = main(["table7", "--out", str(tmp_path)])
        assert rc == 0
        text = (tmp_path / "table7.txt").read_text()
        assert "AES-65" in text and "JPEG-90" in text
