"""Tests for corner-aware dose map optimization."""

import pytest

from repro.core import (
    DesignContext,
    corner_context,
    optimize_dose_map_corners,
)
from repro.netlist import make_design
from repro.tech import corner_node


@pytest.fixture(scope="module")
def ctx():
    return DesignContext(make_design("AES-65", scale=0.25))


@pytest.fixture(scope="module")
def result(ctx):
    return optimize_dose_map_corners(ctx, grid_size=10.0)


class TestCornerContext:
    def test_shares_geometry(self, ctx):
        slow = corner_node(ctx.library.node, "SS", 0.9, 125.0)
        cc = corner_context(ctx, slow)
        assert cc.placement is ctx.placement
        assert cc.netlist is ctx.netlist
        assert cc.library.node.name != ctx.library.node.name

    def test_slow_corner_is_slower(self, ctx):
        slow = corner_node(ctx.library.node, "SS", 0.9, 125.0)
        cc = corner_context(ctx, slow)
        assert cc.baseline.mct > ctx.baseline.mct

    def test_leak_corner_is_leakier(self, ctx):
        leaky = corner_node(ctx.library.node, "FF", 1.1, 125.0)
        cc = corner_context(ctx, leaky)
        assert cc.baseline_leakage > ctx.baseline_leakage


class TestCornerAwareDMopt:
    def test_slow_corner_timing_improves(self, result):
        assert result.slow_mct < result.slow_mct_baseline
        assert result.mct_improvement_pct > 1.0

    def test_leak_corner_budget_respected(self, result):
        assert result.leak_corner_leakage <= (
            result.leak_corner_baseline * 1.02
        )

    def test_dose_map_feasible(self, result):
        assert result.dose_map_poly.is_feasible()

    def test_solver_converged(self, result):
        assert result.solve.ok

    def test_nominal_corner_also_benefits(self, ctx, result):
        """The one physical map helps at the nominal corner too (all
        corners share the criticality structure)."""
        golden, leak = ctx.golden_eval(result.dose_map_poly)
        assert golden.mct < ctx.baseline.mct
        assert leak < ctx.baseline_leakage * 1.03
