"""Tests for the experiments harness and light experiment generators."""

import numpy as np
import pytest

from repro.experiments import (
    ascii_plot,
    fig3_delay_vs_length,
    fig5_leakage_vs_length,
    paper_data,
)
from repro.experiments.harness import TableResult


class TestTableResult:
    def _table(self):
        return TableResult(
            exp_id="Table X",
            title="demo",
            headers=["name", "value"],
            rows=[["a", 1.0], ["b", 2.5]],
            notes=["a note"],
        )

    def test_column(self):
        t = self._table()
        assert t.column("value") == [1.0, 2.5]
        assert t.column("name") == ["a", "b"]

    def test_column_unknown(self):
        with pytest.raises(KeyError, match="no column"):
            self._table().column("ghost")

    def test_format_contains_everything(self):
        text = self._table().format()
        assert "Table X" in text
        assert "demo" in text
        assert "2.500" in text
        assert "note: a note" in text

    def test_str_is_format(self):
        t = self._table()
        assert str(t) == t.format()


class TestFigureGenerators:
    def test_fig3_shape(self):
        t = fig3_delay_vs_length()
        assert len(t.rows) == 21
        assert t.headers == ["L nm", "TPLH ns", "TPHL ns"]
        lengths = t.column("L nm")
        assert lengths[0] == 55.0 and lengths[-1] == 75.0

    def test_fig3_tplh_slower_than_tphl(self):
        """PMOS network (2x width but lower mobility via k_drive on same
        model) -- both transitions positive and ordered consistently."""
        t = fig3_delay_vs_length()
        tplh = np.array(t.column("TPLH ns"))
        tphl = np.array(t.column("TPHL ns"))
        assert np.all(tplh > 0) and np.all(tphl > 0)

    def test_fig5_exponential_range(self):
        t = fig5_leakage_vs_length()
        leak = t.column("leakage uW")
        assert leak[0] > 3 * leak[-1]

    def test_ascii_plot(self):
        t = fig3_delay_vs_length()
        art = ascii_plot(t, "L nm", "TPHL ns")
        assert "*" in art
        assert "Fig. 3" in art

    def test_ascii_plot_flat_series(self):
        t = TableResult("F", "flat", ["x", "y"], [[0.0, 1.0], [1.0, 1.0]])
        assert "flat series" in ascii_plot(t, "x", "y")


class TestPaperData:
    def test_table2_signs(self):
        for dose, (mct, leak) in paper_data.TABLE2_AES65.items():
            if dose > 0:
                assert mct > 0 and leak < 0
            elif dose < 0:
                assert mct < 0 and leak > 0

    def test_table7_orderings(self):
        t = paper_data.TABLE7
        assert t["AES-65"][0] > t["AES-90"][0]
        assert t["JPEG-90"][2] < t["AES-90"][2]

    def test_fit_ssr_ordering(self):
        assert paper_data.FIT_SSR_BOTH_LAYERS > paper_data.FIT_SSR_POLY_ONLY
