"""Tests for the timing-leakage trade-off sweep."""

import pytest

from repro.core import (
    DesignContext,
    ParetoPoint,
    is_frontier_monotone,
    knee_point,
    tradeoff_curve,
)
from repro.netlist import make_design


@pytest.fixture(scope="module")
def ctx():
    return DesignContext(make_design("AES-65", scale=0.25))


@pytest.fixture(scope="module")
def curve(ctx):
    return tradeoff_curve(ctx, grid_size=10.0,
                          budgets_pct=(-5.0, 0.0, 10.0, 25.0))


class TestTradeoffCurve:
    def test_point_count_and_order(self, curve):
        assert len(curve) == 4
        assert [p.budget_pct for p in curve] == [-5.0, 0.0, 10.0, 25.0]

    def test_frontier_monotone(self, curve):
        """Looser leakage budgets can only help MCT."""
        assert is_frontier_monotone(curve, tol=5e-3)

    def test_negative_budget_reduces_leakage(self, ctx, curve):
        tight = curve[0]
        assert tight.leakage < ctx.baseline_leakage * 1.005
        # still improves timing a bit
        assert tight.mct <= ctx.baseline.mct + 1e-9

    def test_generous_budget_buys_speed(self, ctx, curve):
        zero, generous = curve[1], curve[-1]
        assert generous.mct < zero.mct
        assert generous.leakage > zero.leakage

    def test_budgets_roughly_respected(self, ctx, curve):
        for p in curve:
            # golden leakage within ~4 % of baseline beyond the budget
            assert p.leakage <= ctx.baseline_leakage * (
                1 + p.budget_pct / 100.0
            ) * 1.04


class TestKnee:
    def test_knee_on_curve(self, curve):
        knee = knee_point(curve)
        assert knee in curve

    def test_knee_needs_three_points(self):
        pts = [
            ParetoPoint(0, 1.0, 1.0, 0, 0),
            ParetoPoint(1, 0.9, 1.1, 0, 0),
        ]
        with pytest.raises(ValueError, match="three points"):
            knee_point(pts)

    def test_degenerate_chord(self):
        pts = [ParetoPoint(i, 1.0, 1.0, 0, 0) for i in range(3)]
        assert knee_point(pts) is pts[0]
