"""Differential and property tests: vector STA engine vs the reference.

The compiled engine (:mod:`repro.sta.compiled`) must be numerically
indistinguishable from the per-gate dict engine -- same arrivals, slacks,
MCT, slews, loads, wire delays, endpoint labels -- for any design, dose
assignment, and placement-mutation history.  These tests pin that down
with fixed designs, hypothesis-randomized DAGs, and random swap
sequences against from-scratch re-analysis.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.library import CellLibrary
from repro.netlist import Netlist, make_design
from repro.placement import Die, Placement, place_design
import numpy as np

from repro.sta import (
    DEFAULT_STA_BACKEND,
    TimingAnalyzer,
    VectorTimingAnalyzer,
    make_analyzer,
)
from repro.sta.compiled import CompiledTimingGraph, lex_max_reduce
from repro.sta.timing import beats_worst_pin

ATOL = 1e-9


@pytest.fixture(scope="module")
def lib65():
    return CellLibrary("65nm")


def assert_equivalent(ref_res, vec_res, atol=ATOL):
    """Field-by-field equality of two TimingResult objects."""
    assert vec_res.mct == pytest.approx(ref_res.mct, abs=atol)
    for field in ("arrival", "slack", "gate_delay", "input_slew", "load"):
        r, v = getattr(ref_res, field), getattr(vec_res, field)
        assert set(r) == set(v)
        for k in r:
            assert v[k] == pytest.approx(r[k], abs=atol), (field, k)
    assert set(ref_res.wire_delay) == set(vec_res.wire_delay)
    for k in ref_res.wire_delay:
        assert vec_res.wire_delay[k] == pytest.approx(
            ref_res.wire_delay[k], abs=atol
        ), ("wire_delay", k)
    assert set(ref_res.endpoint_arrival) == set(vec_res.endpoint_arrival)
    for k in ref_res.endpoint_arrival:
        assert vec_res.endpoint_arrival[k] == pytest.approx(
            ref_res.endpoint_arrival[k], abs=atol
        ), ("endpoint", k)


def random_doses(netlist, library, seed, fraction=1.0):
    rng = random.Random(seed)
    gates = list(netlist.gates)
    if fraction < 1.0:
        gates = gates[:: max(1, int(1 / fraction))]
    return {
        g: (
            library.snap_dose(rng.uniform(-6.0, 6.0)),
            library.snap_dose(rng.uniform(-6.0, 6.0)),
        )
        for g in gates
    }


def random_dag(seed, n_gates, lib):
    """A random placed DAG mixing combinational and sequential cells."""
    rng = random.Random(seed)
    comb = ["INVX1", "INVX2", "NAND2X1", "NOR2X1", "BUFX1"]
    comb = [m for m in comb if m in lib.masters]
    seq = lib.sequential_names[:1]
    nl = Netlist(f"rand{seed}")
    nl.add_primary_input("pi0")
    nl.add_primary_input("pi1")
    nets = ["pi0", "pi1"]
    for i in range(n_gates):
        out = f"n{i}"
        if seq and rng.random() < 0.15:
            nl.add_gate(f"g{i}", seq[0], [rng.choice(nets)], out)
        else:
            master = rng.choice(comb)
            n_in = 2 if ("NAND" in master or "NOR" in master) else 1
            ins = [rng.choice(nets) for _ in range(n_in)]
            nl.add_gate(f"g{i}", master, ins, out)
        nets.append(out)
    # every sink-less net becomes a primary output
    for name, net in nl.nets.items():
        if not net.sinks and not net.is_primary_input:
            nl.add_primary_output(name)
    die = Die(width=60.0, height=10.8, row_height=1.8, site_width=0.2)
    pl = Placement(die)
    for i, g in enumerate(nl.gates):
        if rng.random() < 0.9:  # leave some cells unplaced
            pl.place(g, round(rng.uniform(0, 58.0), 1),
                     1.8 * rng.randrange(6))
    return nl, pl


class TestDifferentialFixedDesigns:
    @pytest.fixture(scope="class")
    def aes(self):
        bundle = make_design("AES-65", scale=0.3)
        pl = place_design(bundle, seed=7)
        return bundle, pl

    def test_nominal(self, aes):
        bundle, pl = aes
        r = TimingAnalyzer(bundle.netlist, bundle.library, pl).analyze()
        v = VectorTimingAnalyzer(bundle.netlist, bundle.library, pl).analyze()
        assert_equivalent(r, v)

    def test_random_full_doses(self, aes):
        bundle, pl = aes
        doses = random_doses(bundle.netlist, bundle.library, seed=3)
        r = TimingAnalyzer(bundle.netlist, bundle.library, pl).analyze(doses)
        v = VectorTimingAnalyzer(bundle.netlist, bundle.library, pl).analyze(doses)
        assert_equivalent(r, v)

    def test_partial_doses_and_period(self, aes):
        bundle, pl = aes
        doses = random_doses(bundle.netlist, bundle.library, seed=9,
                             fraction=0.3)
        r = TimingAnalyzer(bundle.netlist, bundle.library, pl).analyze(
            doses, clock_period=5.0
        )
        v = VectorTimingAnalyzer(bundle.netlist, bundle.library, pl).analyze(
            doses, clock_period=5.0
        )
        assert_equivalent(r, v)

    def test_routed_net_lengths(self, aes):
        bundle, pl = aes
        rng = random.Random(1)
        nets = list(bundle.netlist.nets)
        lengths = {n: rng.uniform(0.0, 40.0) for n in nets[::4]}
        r = TimingAnalyzer(
            bundle.netlist, bundle.library, pl, net_lengths=lengths
        ).analyze()
        v = VectorTimingAnalyzer(
            bundle.netlist, bundle.library, pl, net_lengths=lengths
        ).analyze()
        assert_equivalent(r, v)

    def test_repeated_calls_are_stable(self, aes):
        """Warm (incremental) re-analysis must equal the first pass."""
        bundle, pl = aes
        vec = VectorTimingAnalyzer(bundle.netlist, bundle.library, pl)
        doses = random_doses(bundle.netlist, bundle.library, seed=4)
        first = vec.analyze(doses)
        second = vec.analyze(doses)  # no dirty work at all
        assert_equivalent(first, second, atol=0.0)
        nominal = vec.analyze()  # dose flip: full dirty cone
        r = TimingAnalyzer(bundle.netlist, bundle.library, pl).analyze()
        assert_equivalent(r, nominal)


class TestDifferentialRandomDesigns:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 10_000), n_gates=st.integers(3, 40))
    def test_random_dag_equivalence(self, lib65, seed, n_gates):
        nl, pl = random_dag(seed, n_gates, lib65)
        doses = random_doses(nl, lib65, seed=seed + 1, fraction=0.5)
        r = TimingAnalyzer(nl, lib65, pl).analyze(doses)
        v = VectorTimingAnalyzer(nl, lib65, pl).analyze(doses)
        assert_equivalent(r, v)


class TestIncrementalRetiming:
    def test_swap_sequence_matches_scratch(self, lib65):
        bundle = make_design("AES-65", scale=0.3)
        nl, lib = bundle.netlist, bundle.library
        pl = place_design(bundle, seed=7)
        rng = random.Random(21)
        gates = list(nl.gates)
        doses = random_doses(nl, lib, seed=2)

        vec = VectorTimingAnalyzer(nl, lib, pl)
        vec.mct(doses)
        for step in range(25):
            a, b = rng.sample(gates, 2)
            pl.swap(a, b)
            upd = {
                a: (lib.snap_dose(rng.uniform(-6, 6)), 0.0),
                b: (lib.snap_dose(rng.uniform(-6, 6)), 0.0),
            }
            doses.update(upd)
            vec.update_placement((a, b))
            m_inc = vec.trial_mct(upd)
            m_scratch = VectorTimingAnalyzer(
                nl, lib, pl, graph=vec.graph
            ).mct(doses)
            assert m_inc == pytest.approx(m_scratch, abs=0.0), step
        # and the final state still matches the reference engine exactly
        r = TimingAnalyzer(nl, lib, pl).analyze(doses)
        assert_equivalent(r, vec.analyze(doses))

    def test_undo_restores_state(self, lib65):
        bundle = make_design("AES-65", scale=0.3)
        nl, lib = bundle.netlist, bundle.library
        pl = place_design(bundle, seed=7)
        vec = VectorTimingAnalyzer(nl, lib, pl)
        m0 = vec.mct()
        a, b = list(nl.gates)[10], list(nl.gates)[200]
        pl.swap(a, b)
        vec.update_placement((a, b))
        vec.trial_mct()
        pl.swap(a, b)
        vec.update_placement((a, b))
        assert vec.trial_mct() == pytest.approx(m0, abs=0.0)

    def test_trial_mct_requires_seeded_state(self, lib65):
        bundle = make_design("AES-65", scale=0.2)
        pl = place_design(bundle, seed=7)
        vec = VectorTimingAnalyzer(bundle.netlist, bundle.library, pl)
        with pytest.raises(RuntimeError):
            vec.trial_mct()


class TestTieBreak:
    def test_lex_max_kernel(self):
        # segment 0: equal arrivals -> larger slew wins
        # segment 1: strictly larger arrival wins despite smaller slew
        arr = np.array([5.0, 5.0, 4.0, 7.0, 6.0])
        slew = np.array([0.2, 0.9, 1.5, 0.1, 2.0])
        starts = np.array([0, 3])
        seg_of = np.array([0, 0, 0, 1, 1])
        best_arr, best_slew = lex_max_reduce(arr, slew, starts, seg_of)
        assert best_arr.tolist() == [5.0, 7.0]
        assert best_slew.tolist() == [0.9, 0.1]

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_scan_and_vector_kernels_agree(self, data):
        """Both backends' worst-pin selections are the same ordering.

        Random pin sets with *forced exact-arrival ties* (values drawn
        from a tiny pool so collisions are common): the reference
        engine's sequential scan (``beats_worst_pin``, seeded with the
        virtual primary-input pin) must pick exactly what the vectorized
        segment reduction picks.
        """
        pool = [0.0, 0.25, 0.5, 0.5, 1.0, 1.0, 1.0]
        n = data.draw(st.integers(1, 8))
        arr = [data.draw(st.sampled_from(pool)) for _ in range(n)]
        slew = [data.draw(st.sampled_from(pool)) for _ in range(n)]
        init_slew = data.draw(st.sampled_from(pool))

        # reference scan, init (0.0, input_slew) like the dict engine
        best_a, best_s = 0.0, init_slew
        for a, s in zip(arr, slew):
            if beats_worst_pin(a, s, best_a, best_s):
                best_a, best_s = a, s

        # vector reduction over one segment with the virtual arc first
        va = np.array([0.0] + arr)
        vs = np.array([init_slew] + slew)
        got_a, got_s = lex_max_reduce(
            va, vs, np.array([0]), np.zeros(len(va), dtype=int)
        )
        assert (got_a[0], got_s[0]) == (best_a, best_s)

    def test_duplicate_net_pins(self, lib65):
        """Both pins of a gate on the same net: a genuine exact tie."""
        nl = Netlist("tie")
        nl.add_primary_input("a")
        nl.add_gate("u0", "INVX1", ["a"], "n0")
        nl.add_gate("g", "NAND2X1", ["n0", "n0"], "out")
        nl.add_primary_output("out")
        die = Die(width=40.0, height=9.0, row_height=1.8, site_width=0.2)
        pl = Placement(die)
        pl.place("u0", 0.0, 0.0)
        pl.place("g", 2.0, 1.8)
        r = TimingAnalyzer(nl, lib65, pl).analyze()
        v = VectorTimingAnalyzer(nl, lib65, pl).analyze()
        assert_equivalent(r, v, atol=0.0)


class TestBackendFactory:
    def test_default_backend_is_vector(self):
        assert DEFAULT_STA_BACKEND in ("vector", "reference")

    def test_make_analyzer_types(self, lib65):
        nl = Netlist("f")
        nl.add_primary_input("a")
        nl.add_gate("u", "INVX1", ["a"], "o")
        nl.add_primary_output("o")
        die = Die(width=40.0, height=9.0, row_height=1.8, site_width=0.2)
        pl = Placement(die)
        pl.place("u", 1.0, 0.0)
        assert isinstance(
            make_analyzer(nl, lib65, pl, backend="reference"), TimingAnalyzer
        )
        assert isinstance(
            make_analyzer(nl, lib65, pl, backend="vector"),
            VectorTimingAnalyzer,
        )
        with pytest.raises(ValueError, match="unknown STA backend"):
            make_analyzer(nl, lib65, pl, backend="nope")

    def test_graph_sharing_via_rebind(self, lib65):
        bundle = make_design("AES-65", scale=0.2)
        pl = place_design(bundle, seed=7)
        vec = VectorTimingAnalyzer(bundle.netlist, bundle.library, pl)
        other = place_design(bundle, seed=11)
        vec2 = vec.rebind(other)
        assert vec2.graph is vec.graph
        r = TimingAnalyzer(bundle.netlist, bundle.library, other).analyze()
        assert_equivalent(r, vec2.analyze())

    def test_graph_design_mismatch_rejected(self, lib65):
        b1 = make_design("AES-65", scale=0.2)
        b2 = make_design("AES-90", scale=0.2)
        g1 = CompiledTimingGraph(b1.netlist, b1.library)
        pl = place_design(b2, seed=7)
        with pytest.raises(ValueError):
            VectorTimingAnalyzer(b2.netlist, b2.library, pl, graph=g1)


class TestReferenceCaches:
    """The satellite fixes: per-call variant memo + nominal-load cache."""

    def test_nominal_loads_cached_and_reused(self, lib65):
        bundle = make_design("AES-65", scale=0.2)
        pl = place_design(bundle, seed=7)
        ta = TimingAnalyzer(bundle.netlist, bundle.library, pl)
        first = ta.analyze()
        assert ta._nominal_loads is not None
        assert ta._net_loads(None) is ta._nominal_loads
        second = ta.analyze()
        assert_equivalent(first, second, atol=0.0)

    def test_invalidate_caches_after_move(self, lib65):
        bundle = make_design("AES-65", scale=0.2)
        pl = place_design(bundle, seed=7)
        ta = TimingAnalyzer(bundle.netlist, bundle.library, pl)
        ta.analyze()
        a, b = list(bundle.netlist.gates)[:2]
        pl.swap(a, b)
        ta.invalidate_caches()
        assert ta._nominal_loads is None
        fresh = TimingAnalyzer(bundle.netlist, bundle.library, pl).analyze()
        assert_equivalent(fresh, ta.analyze(), atol=0.0)

    def test_dosed_calls_do_not_pollute_nominal_cache(self, lib65):
        bundle = make_design("AES-65", scale=0.2)
        pl = place_design(bundle, seed=7)
        ta = TimingAnalyzer(bundle.netlist, bundle.library, pl)
        doses = random_doses(bundle.netlist, bundle.library, seed=5)
        ta.analyze(doses)
        assert ta._nominal_loads is None
