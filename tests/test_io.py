"""Tests for the interchange formats (Verilog / DEF / Liberty)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.io import (
    DefError,
    LibertyError,
    VerilogError,
    parse_def,
    parse_liberty,
    parse_verilog,
    roundtrip_close,
    roundtrip_equal,
    write_def,
    write_liberty,
    write_verilog,
)
from repro.library import CellLibrary
from repro.netlist import Netlist, generate_aes_like, make_design, resize_for_fanout
from repro.placement import place_design


@pytest.fixture(scope="module")
def lib65():
    return CellLibrary("65nm")


@pytest.fixture(scope="module")
def small_design():
    return make_design("AES-65", scale=0.2)


class TestVerilog:
    def test_roundtrip_tiny(self, lib65):
        nl = Netlist("tiny")
        nl.add_primary_input("a")
        nl.add_primary_input("b")
        nl.add_gate("u1", "NAND2X1", ["a", "b"], "n1")
        nl.add_gate("ff1", "DFFX1", ["n1"], "q")
        nl.add_gate("u2", "INVX2", ["q"], "y")
        nl.add_primary_output("y")
        text = write_verilog(nl, lib65)
        parsed = parse_verilog(text, lib65)
        assert roundtrip_equal(nl, parsed)

    def test_roundtrip_full_design(self, lib65, small_design):
        text = write_verilog(small_design.netlist, small_design.library)
        parsed = parse_verilog(text, small_design.library)
        assert roundtrip_equal(small_design.netlist, parsed)

    def test_written_text_shape(self, lib65):
        nl = Netlist("t")
        nl.add_primary_input("a")
        nl.add_gate("u1", "INVX1", ["a"], "y")
        nl.add_primary_output("y")
        text = write_verilog(nl, lib65)
        assert "module t (a, y);" in text
        assert "INVX1 u1 ( .A(a), .Y(y) );" in text
        assert text.rstrip().endswith("endmodule")

    def test_comments_stripped(self, lib65):
        text = (
            "// header\nmodule m (a, y);\n input a;\n output y;\n"
            "/* block\ncomment */ INVX1 u1 ( .A(a), .Y(y) );\nendmodule\n"
        )
        parsed = parse_verilog(text, lib65)
        assert parsed.n_gates == 1

    def test_behavioral_rejected(self, lib65):
        text = "module m (y);\n output y;\n assign y = 1'b0;\nendmodule"
        with pytest.raises(VerilogError, match="behavioral"):
            parse_verilog(text, lib65)

    def test_unknown_master_rejected(self, lib65):
        text = (
            "module m (a, y);\n input a;\n output y;\n"
            " MAGICX9 u1 ( .A(a), .Y(y) );\nendmodule"
        )
        with pytest.raises(VerilogError, match="unknown cell master"):
            parse_verilog(text, lib65)

    def test_missing_pin_rejected(self, lib65):
        text = (
            "module m (a, y);\n input a;\n output y;\n"
            " NAND2X1 u1 ( .A(a), .Y(y) );\nendmodule"
        )
        with pytest.raises(VerilogError, match="missing input pin"):
            parse_verilog(text, lib65)

    def test_no_module_rejected(self, lib65):
        with pytest.raises(VerilogError, match="no module"):
            parse_verilog("wire x;", lib65)

    @settings(deadline=None, max_examples=5)
    @given(st.integers(min_value=1, max_value=500))
    def test_roundtrip_random_designs(self, seed):
        lib = CellLibrary("65nm")
        nl = generate_aes_like(n_lanes=3, n_rounds=1, sbox_depth=3,
                               sbox_width=4, seed=seed)
        nl = resize_for_fanout(nl, lib)
        parsed = parse_verilog(write_verilog(nl, lib), lib)
        assert roundtrip_equal(nl, parsed)


class TestDef:
    def test_roundtrip(self, small_design):
        pl = place_design(small_design)
        text = write_def(small_design.netlist, pl)
        parsed = parse_def(text, small_design.netlist)
        assert len(parsed) == len(pl)
        for name, (x, y) in pl.items():
            px, py = parsed.location(name)
            assert abs(px - x) < 1e-3 and abs(py - y) < 1e-3
        assert parsed.die.width == pytest.approx(pl.die.width, abs=1e-3)

    def test_master_mismatch_detected(self, small_design):
        pl = place_design(small_design)
        text = write_def(small_design.netlist, pl)
        gate0 = next(iter(small_design.netlist.gates.values()))
        bad = text.replace(f"- {gate0.name} {gate0.master}",
                           f"- {gate0.name} INVX8", 1)
        if gate0.master == "INVX8":  # make sure we actually changed it
            bad = text.replace(f"- {gate0.name} {gate0.master}",
                               f"- {gate0.name} INVX1", 1)
        with pytest.raises(DefError, match="master"):
            parse_def(bad, small_design.netlist)

    def test_unknown_component_detected(self, small_design):
        pl = place_design(small_design)
        text = write_def(small_design.netlist, pl)
        bad = text.replace("END COMPONENTS",
                           "  - ghost INVX1 + PLACED ( 0 0 ) ;\nEND COMPONENTS")
        with pytest.raises(DefError, match="not in netlist"):
            parse_def(bad, small_design.netlist)

    def test_missing_header(self):
        with pytest.raises(DefError, match="missing"):
            parse_def("COMPONENTS 0 ;\nEND COMPONENTS")


class TestLiberty:
    def test_roundtrip_numeric(self, lib65):
        text = write_liberty(lib65, masters=["INVX1", "NAND2X1", "DFFX1"])
        cells = parse_liberty(text)
        assert set(cells) == {"INVX1", "NAND2X1", "DFFX1"}
        for name in cells:
            cc = lib65.nominal(name)
            assert roundtrip_close(cc, cells[name])

    def test_dose_variant_encoded(self, lib65):
        nominal = parse_liberty(write_liberty(lib65, masters=["INVX1"]))
        dosed = parse_liberty(
            write_liberty(lib65, dose_poly=5.0, masters=["INVX1"])
        )
        assert dosed["INVX1"]["leakage_uw"] > 2 * nominal["INVX1"]["leakage_uw"]
        assert np.all(
            dosed["INVX1"]["delay"].values < nominal["INVX1"]["delay"].values
        )

    def test_setup_time_for_sequential(self, lib65):
        cells = parse_liberty(write_liberty(lib65, masters=["DFFX1"]))
        assert cells["DFFX1"]["setup_ns"] == pytest.approx(
            lib65.nominal("DFFX1").setup_ns
        )

    def test_malformed_rejected(self):
        with pytest.raises(LibertyError, match="no cell groups"):
            parse_liberty("library (x) { }")

    def test_parse_usable_by_interp(self, lib65):
        cells = parse_liberty(write_liberty(lib65, masters=["INVX2"]))
        table = cells["INVX2"]["delay"]
        mid_slew = float(table.slew_axis.mean())
        mid_load = float(table.load_axis.mean())
        direct = lib65.nominal("INVX2").delay_at(mid_slew, mid_load)
        assert table.lookup(mid_slew, mid_load) == pytest.approx(direct, rel=1e-4)


class TestSpef:
    def test_roundtrip(self, small_design):
        from repro.io import parse_spef, write_spef
        from repro.sta import net_wire_cap

        pl = place_design(small_design)
        text = write_spef(
            small_design.netlist, pl, small_design.library.node
        )
        parsed = parse_spef(text)
        assert parsed["design"] == small_design.netlist.name
        assert set(parsed["net_caps"]) == set(small_design.netlist.nets)
        # spot-check one cap value against direct extraction
        net = next(iter(small_design.netlist.nets))
        direct = net_wire_cap(
            small_design.netlist, pl, net, small_design.library.node
        )
        assert parsed["net_caps"][net] == pytest.approx(direct, rel=1e-4)

    def test_arcs_match_connectivity(self, small_design):
        from repro.io import parse_spef, write_spef

        pl = place_design(small_design)
        parsed = parse_spef(
            write_spef(small_design.netlist, pl, small_design.library.node)
        )
        for (drv, snk), delay in list(parsed["arc_delays"].items())[:50]:
            assert snk in small_design.netlist.fanout_gates(drv)
            assert delay >= 0.0

    def test_net_lengths_override(self, small_design):
        from repro.io import parse_spef, write_spef

        pl = place_design(small_design)
        node = small_design.library.node
        net = next(
            n for n, obj in small_design.netlist.nets.items() if obj.sinks
        )
        doubled = {net: 1000.0}
        parsed = parse_spef(
            write_spef(small_design.netlist, pl, node, net_lengths=doubled)
        )
        assert parsed["net_caps"][net] == pytest.approx(
            node.wire_c_per_um * 1000.0, rel=1e-4
        )

    def test_malformed(self):
        from repro.io import SpefError, parse_spef

        with pytest.raises(SpefError, match="DESIGN"):
            parse_spef("*SPEF\n")
        with pytest.raises(SpefError, match="D_NET"):
            parse_spef("*DESIGN x\n")
