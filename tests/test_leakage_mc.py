"""Tests for the Monte Carlo leakage estimator and signoff reports."""

import numpy as np
import pytest

from repro.core import DesignContext, optimize_dose_map
from repro.netlist import make_design
from repro.sta import report_dose_map, report_power, report_timing
from repro.variation import (
    LeakageMonteCarlo,
    TimingMonteCarlo,
    VariationModel,
    leakage_statistics,
)


@pytest.fixture(scope="module")
def ctx():
    return DesignContext(make_design("AES-65", scale=0.25))


@pytest.fixture(scope="module")
def lmc(ctx):
    return LeakageMonteCarlo(ctx)


class TestLeakageMC:
    def test_nominal_matches_golden(self, ctx, lmc):
        assert lmc.nominal_leakage() == pytest.approx(
            ctx.baseline_leakage, rel=1e-9
        )

    def test_heavy_right_tail(self, ctx, lmc):
        """Exponential leakage turns symmetric CD noise into a
        right-skewed chip leakage distribution: mean > median."""
        tmc = TimingMonteCarlo(ctx)
        dl = tmc.sample_dl(VariationModel(sigma_random_nm=2.0, seed=9), 400)
        stats = leakage_statistics(lmc.leakage_samples(dl))
        assert stats["mean_over_median"] > 1.0
        assert stats["p99"] > stats["p95"] > stats["p50"]

    def test_dose_map_shifts_leakage_down(self, ctx, lmc):
        res = optimize_dose_map(ctx, 10.0, mode="qp")
        tmc = TimingMonteCarlo(ctx)
        dl = tmc.sample_dl(VariationModel(seed=10), 100)
        base = lmc.leakage_samples(dl).mean()
        opt = lmc.leakage_samples(dl, dose_map=res.dose_map_poly).mean()
        assert opt < base

    def test_shape_validation(self, lmc):
        with pytest.raises(ValueError, match="gate columns"):
            lmc.leakage_samples(np.zeros((1, 2)))

    def test_statistics_validation(self):
        with pytest.raises(ValueError, match="no samples"):
            leakage_statistics(np.array([]))

    def test_larger_sigma_larger_mean(self, ctx, lmc):
        """Jensen's inequality on the convex leakage curve: more CD
        variance means more *mean* leakage at the same mean CD."""
        tmc = TimingMonteCarlo(ctx)
        small = tmc.sample_dl(
            VariationModel(sigma_random_nm=0.5, sigma_systematic_nm=0.0,
                           seed=11), 300
        )
        large = tmc.sample_dl(
            VariationModel(sigma_random_nm=3.0, sigma_systematic_nm=0.0,
                           seed=11), 300
        )
        assert (
            lmc.leakage_samples(large).mean()
            > lmc.leakage_samples(small).mean()
        )


class TestReports:
    def test_timing_report(self, ctx):
        text = report_timing(ctx.netlist, ctx.library, ctx.baseline, n_paths=2)
        assert "Path 1:" in text and "Path 2:" in text
        assert f"{ctx.baseline.mct:.4f}" in text
        assert "worst slack  : +0.0000" in text

    def test_timing_report_path_sums_to_mct(self, ctx):
        text = report_timing(ctx.netlist, ctx.library, ctx.baseline, n_paths=1)
        # last arrival figure of path 1 equals the path delay = MCT
        numbers = [
            float(line.split()[-1])
            for line in text.splitlines()
            if line.startswith("  ") and line.split()[-1].replace(".", "").isdigit()
        ]
        assert numbers[-1] == pytest.approx(ctx.baseline.mct, abs=5e-4)

    def test_power_report(self, ctx):
        text = report_power(ctx.netlist, ctx.library, top_n=5)
        assert "total leakage" in text
        assert f"{ctx.netlist.n_gates} cells" in text
        assert "(others)" in text

    def test_dose_map_report(self, ctx):
        res = optimize_dose_map(ctx, 10.0, mode="qcp")
        art = report_dose_map(res.dose_map_poly)
        assert "Dose map (poly)" in art
        assert "legend" in art
        # one bar line per grid row
        assert sum(1 for l in art.splitlines() if l.startswith("  |")) == (
            res.dose_map_poly.partition.m
        )
