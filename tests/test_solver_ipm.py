"""Tests for the interior-point QP backend (repro.solver.ipm)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st
from scipy.optimize import minimize

from repro.solver import STATUS_INFEASIBLE, solve_qp, solve_qp_ipm
from repro.solver.ipm import _to_inequalities


class TestInequalityConversion:
    def test_two_sided_becomes_two_rows(self):
        A = sp.eye(2)
        l = np.array([-1.0, -np.inf])
        u = np.array([1.0, 2.0])
        G, h = _to_inequalities(A, l, u)
        assert G.shape == (3, 2)  # 2 upper rows + 1 lower row
        assert np.allclose(h, [1.0, 2.0, 1.0])

    def test_no_finite_bounds_rejected(self):
        A = sp.eye(1)
        with pytest.raises(ValueError, match="no finite constraints"):
            _to_inequalities(A, np.array([-np.inf]), np.array([np.inf]))


class TestIPMBasics:
    def test_box_qp(self):
        res = solve_qp_ipm(
            sp.eye(2), np.array([-5.0, -0.3]), sp.eye(2),
            np.zeros(2), np.ones(2),
        )
        assert res.ok
        assert np.allclose(res.x, [1.0, 0.3], atol=1e-5)

    def test_pure_lp_direction(self):
        """P = 0: the IPM must solve plain LPs too."""
        res = solve_qp_ipm(
            sp.csc_matrix((2, 2)), np.array([1.0, -1.0]), sp.eye(2),
            -np.ones(2), np.ones(2),
        )
        assert res.ok
        assert np.allclose(res.x, [-1.0, 1.0], atol=1e-5)

    def test_equality_like_tight_bounds(self):
        res = solve_qp_ipm(
            2 * sp.eye(2), np.zeros(2), sp.csc_matrix([[1.0, 1.0]]),
            np.array([1.0]), np.array([1.0]),
        )
        assert res.ok
        assert np.allclose(res.x, [0.5, 0.5], atol=1e-4)

    def test_infeasible_detected(self):
        """x <= -1 and x >= 1 simultaneously."""
        A = sp.csc_matrix([[1.0], [1.0]])
        res = solve_qp_ipm(
            sp.eye(1), np.zeros(1), A,
            np.array([-np.inf, 1.0]), np.array([-1.0, np.inf]),
        )
        assert not res.ok
        assert res.status in (STATUS_INFEASIBLE, "max_iter")

    def test_dimension_validation(self):
        with pytest.raises(ValueError, match="dimensions"):
            solve_qp_ipm(sp.eye(2), np.zeros(3), sp.eye(2),
                         np.zeros(2), np.ones(2))

    def test_inconsistent_bounds_diagnosed(self):
        """l > u returns a diagnostic infeasible result, not a raise."""
        res = solve_qp_ipm(sp.eye(1), np.zeros(1), sp.eye(1),
                           np.array([2.0]), np.array([1.0]))
        assert res.status == STATUS_INFEASIBLE
        assert not res.ok
        assert res.info["n_bound_conflicts"] == 1

    def test_high_accuracy(self):
        """IPM should reach much tighter KKT residuals than ADMM."""
        rng = np.random.default_rng(0)
        n = 20
        M = rng.normal(size=(n, n))
        P = sp.csc_matrix(M @ M.T + np.eye(n))
        q = rng.normal(size=n)
        res = solve_qp_ipm(P, q, sp.eye(n), -np.ones(n), np.ones(n))
        assert res.ok
        assert res.r_prim < 1e-6 and res.r_dual < 1e-5


class TestIPMAgainstReferences:
    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_scipy(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 5, 8
        M = rng.normal(size=(n, n))
        P = M @ M.T + 0.5 * np.eye(n)
        q = rng.normal(size=n)
        A = rng.normal(size=(m, n))
        x_feas = rng.normal(size=n)
        center = A @ x_feas
        l = center - rng.uniform(0.5, 2.0, size=m)
        u = center + rng.uniform(0.5, 2.0, size=m)
        res = solve_qp_ipm(sp.csc_matrix(P), q, sp.csc_matrix(A), l, u)
        assert res.ok

        def f(x):
            return 0.5 * x @ P @ x + q @ x

        cons = []
        for i in range(m):
            cons.append({"type": "ineq",
                         "fun": lambda x, r=A[i], b=u[i]: b - r @ x})
            cons.append({"type": "ineq",
                         "fun": lambda x, r=A[i], b=l[i]: r @ x - b})
        ref = minimize(f, x_feas, constraints=cons, method="SLSQP",
                       options={"maxiter": 500, "ftol": 1e-10})
        assert f(res.x) <= ref.fun + 1e-4 * (1 + abs(ref.fun))
        ax = A @ res.x
        assert np.all(ax >= l - 1e-5) and np.all(ax <= u + 1e-5)

    @settings(deadline=None, max_examples=6)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_admm(self, seed):
        """Both in-house backends agree on random strictly convex QPs."""
        rng = np.random.default_rng(seed)
        n = 8
        M = rng.normal(size=(n, n))
        P = sp.csc_matrix(M @ M.T + np.eye(n))
        q = rng.normal(size=n)
        A = sp.eye(n)
        l, u = -np.ones(n), np.ones(n)
        ipm = solve_qp_ipm(P, q, A, l, u)
        admm = solve_qp(P, q, A, l, u, eps_abs=1e-7, eps_rel=1e-7)
        assert ipm.ok and admm.ok
        assert np.allclose(ipm.x, admm.x, atol=1e-3)
