"""Tests for hierarchical tracing spans (repro.obs.spans)."""

import json
import os

import pytest

from repro import obs, telemetry


@pytest.fixture
def manifest(tmp_path, monkeypatch):
    path = tmp_path / "run.jsonl"
    monkeypatch.setenv(telemetry.ENV_FLAG, "1")
    monkeypatch.setenv(telemetry.ENV_PATH, str(path))
    monkeypatch.delenv(obs.ENV_CTX, raising=False)
    telemetry.reset()
    yield path
    telemetry.reset()


def _spans(path):
    return [
        e
        for e in (json.loads(l) for l in path.read_text().splitlines())
        if e["event"] == "span"
    ]


class TestSpanBasics:
    def test_noop_when_telemetry_off(self, tmp_path, monkeypatch):
        monkeypatch.delenv(telemetry.ENV_FLAG, raising=False)
        monkeypatch.setenv(telemetry.ENV_PATH, str(tmp_path / "off.jsonl"))
        telemetry.reset()
        try:
            with obs.span("quiet") as sp:
                assert sp is None  # nothing to annotate when off
            assert obs.current_trace_id() is None
            assert not (tmp_path / "off.jsonl").exists()
        finally:
            telemetry.reset()

    def test_root_span_emits_ids_and_duration(self, manifest):
        with obs.span("root", design="AES-65"):
            pass
        (event,) = _spans(manifest)
        assert event["name"] == "root"
        assert event["trace_id"] and event["span_id"]
        assert event["parent_id"] is None
        assert event["seconds"] >= 0.0
        assert event["design"] == "AES-65"

    def test_nesting_links_parent_child(self, manifest):
        with obs.span("parent"):
            with obs.span("child"):
                pass
        child, parent = _spans(manifest)  # inner exits (emits) first
        assert child["name"] == "child"
        assert child["trace_id"] == parent["trace_id"]
        assert child["parent_id"] == parent["span_id"]
        assert parent["parent_id"] is None

    def test_sibling_spans_share_trace_not_parentage(self, manifest):
        with obs.span("root"):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        a, b, root = _spans(manifest)
        assert a["trace_id"] == b["trace_id"] == root["trace_id"]
        assert a["parent_id"] == b["parent_id"] == root["span_id"]
        assert a["span_id"] != b["span_id"]

    def test_yielded_dict_annotates_event(self, manifest):
        with obs.span("solve") as sp:
            sp["status"] = "solved"
        (event,) = _spans(manifest)
        assert event["status"] == "solved"

    def test_exception_recorded_and_reraised(self, manifest):
        with pytest.raises(ValueError, match="boom"):
            with obs.span("doomed"):
                raise ValueError("boom")
        (event,) = _spans(manifest)
        assert event["error"] == "ValueError: boom"

    def test_env_context_restored_after_span(self, manifest):
        assert obs.ENV_CTX not in os.environ
        with obs.span("outer"):
            outer_env = os.environ[obs.ENV_CTX]
            with obs.span("inner"):
                assert os.environ[obs.ENV_CTX] != outer_env
            assert os.environ[obs.ENV_CTX] == outer_env
        assert obs.ENV_CTX not in os.environ

    def test_env_inherited_context_parents_new_roots(self, manifest,
                                                     monkeypatch):
        # simulate a worker process: no thread-local spans, but a parent
        # context inherited via the environment
        monkeypatch.setenv(obs.ENV_CTX, "feedc0dedeadbeef:abad1deaabad1dea")
        assert obs.current_context() == (
            "feedc0dedeadbeef", "abad1deaabad1dea"
        )
        with obs.span("worker_root"):
            pass
        (event,) = _spans(manifest)
        assert event["trace_id"] == "feedc0dedeadbeef"
        assert event["parent_id"] == "abad1deaabad1dea"

    def test_spans_validate_against_schema(self, manifest):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        telemetry.reset()
        _, errors = telemetry.validate_manifest(manifest)
        assert errors == []


def _pool_task(i):
    with obs.span("pool_task", index=i):
        pass
    return os.getpid()


class TestCrossProcess:
    def test_pool_worker_spans_nest_under_harness_span(self, manifest):
        """Satellite: trace context survives into ProcessPoolExecutor
        workers via env inheritance, and the merged manifest resolves
        every worker span's parent chain back to the harness root."""
        from concurrent.futures import ProcessPoolExecutor

        with obs.span("harness"):
            with ProcessPoolExecutor(max_workers=2) as ex:
                pids = set(ex.map(_pool_task, range(4)))
        telemetry.reset()
        spans = _spans(manifest)
        roots = [s for s in spans if s["name"] == "harness"]
        tasks = [s for s in spans if s["name"] == "pool_task"]
        assert len(roots) == 1 and len(tasks) == 4
        root = roots[0]
        # one trace across all processes
        assert {s["trace_id"] for s in spans} == {root["trace_id"]}
        # every worker span parents directly under the harness span
        assert {s["parent_id"] for s in tasks} == {root["span_id"]}
        # the spans really came from other processes
        worker_pids = {s["pid"] for s in tasks}
        assert worker_pids <= pids
        assert root["pid"] not in worker_pids

    def test_run_dmopt_cells_produces_one_resolvable_trace(self, manifest):
        """End to end: harness -> cell -> dmopt -> solve spans from a
        2-worker run merge into a single rooted tree."""
        from repro.experiments.harness import DMoptCell, run_dmopt_cells
        from repro.obs.report import build_trees, load_manifest

        cells = [
            DMoptCell(design="AES-65", grid_size=30.0, mode="qp"),
            DMoptCell(design="AES-65", grid_size=25.0, mode="qp"),
        ]
        results = run_dmopt_cells(cells, jobs=2)
        assert [r["status"] for r in results] == ["solved", "solved"]
        telemetry.reset()
        records, bad = load_manifest(manifest)
        assert bad == 0
        traces = build_trees(records)
        assert len(traces) == 1
        (roots,) = traces.values()
        assert [r.name for r in roots] == ["harness.run_dmopt_cells"]
        names = {node.name for _, node in roots[0].walk()}
        assert {"cell", "dmopt", "dmopt.solve"} <= names
