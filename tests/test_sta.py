"""Unit tests for the STA engine and path enumeration."""

import pytest

from repro.library import CellLibrary
from repro.netlist import Netlist, make_design
from repro.placement import Die, Placement, place_design
from repro.sta import (
    TimingAnalyzer,
    criticality_histogram,
    net_wire_cap,
    top_k_paths,
)


@pytest.fixture(scope="module")
def lib65():
    return CellLibrary("65nm")


def _die(w=40.0, h=9.0):
    return Die(width=w, height=h, row_height=1.8, site_width=0.2)


def _place_all(nl, spacing=2.0):
    p = Placement(_die())
    for i, name in enumerate(nl.gates):
        p.place(name, (i * spacing) % 38.0, 1.8 * ((i * 2) // 38))
    return p


def _chain(n=5, master="INVX1"):
    nl = Netlist("chain")
    nl.add_primary_input("in")
    prev = "in"
    for i in range(n):
        nl.add_gate(f"u{i}", master, [prev], f"n{i}")
        prev = f"n{i}"
    nl.add_primary_output(prev)
    return nl


@pytest.fixture(scope="module")
def aes():
    d = make_design("AES-65")
    pl = place_design(d)
    ta = TimingAnalyzer(d.netlist, d.library, pl)
    return d, pl, ta, ta.analyze()


class TestForwardPass:
    def test_chain_arrival_monotone(self, lib65):
        nl = _chain(5)
        res = TimingAnalyzer(nl, lib65, _place_all(nl)).analyze()
        arr = [res.arrival[f"u{i}"] for i in range(5)]
        assert all(b > a for a, b in zip(arr, arr[1:]))

    def test_mct_is_max_endpoint(self, lib65):
        nl = _chain(5)
        res = TimingAnalyzer(nl, lib65, _place_all(nl)).analyze()
        assert res.mct == pytest.approx(max(res.endpoint_arrival.values()))
        assert res.mct == pytest.approx(res.arrival["u4"])

    def test_longer_chain_longer_mct(self, lib65):
        short = _chain(3)
        long = _chain(9)
        mct_s = TimingAnalyzer(short, lib65, _place_all(short)).analyze().mct
        mct_l = TimingAnalyzer(long, lib65, _place_all(long)).analyze().mct
        assert mct_l > 2 * mct_s

    def test_ff_starts_and_ends_paths(self, lib65):
        nl = Netlist("seq")
        nl.add_primary_input("in")
        nl.add_gate("u0", "INVX1", ["in"], "d")
        nl.add_gate("ff", "DFFX1", ["d"], "q")
        nl.add_gate("u1", "INVX1", ["q"], "out")
        nl.add_primary_output("out")
        res = TimingAnalyzer(nl, lib65, _place_all(nl)).analyze()
        # FF D endpoint includes setup; FF output launches at clk->q
        assert any(k.startswith("FF:ff") for k in res.endpoint_arrival)
        assert res.arrival["ff"] > 0  # clk->q
        # the input cone does not accumulate into the output cone
        assert res.arrival["u1"] < res.arrival["u0"] + res.arrival["ff"] + 1.0

    def test_dose_speeds_up_timing(self, lib65):
        nl = _chain(6)
        pl = _place_all(nl)
        ta = TimingAnalyzer(nl, lib65, pl)
        base = ta.analyze().mct
        fast = ta.analyze(doses={f"u{i}": (5.0, 0.0) for i in range(6)}).mct
        slow = ta.analyze(doses={f"u{i}": (-5.0, 0.0) for i in range(6)}).mct
        assert fast < base < slow

    def test_partial_dose_map(self, lib65):
        """Gates missing from the dose dict stay at nominal."""
        nl = _chain(6)
        pl = _place_all(nl)
        ta = TimingAnalyzer(nl, lib65, pl)
        base = ta.analyze().mct
        partial = ta.analyze(doses={"u0": (5.0, 0.0)}).mct
        full = ta.analyze(doses={f"u{i}": (5.0, 0.0) for i in range(6)}).mct
        assert full < partial < base


class TestSlack:
    def test_worst_slack_zero_at_mct(self, aes):
        _d, _pl, _ta, res = aes
        assert res.worst_slack == pytest.approx(0.0, abs=1e-9)

    def test_slack_with_relaxed_clock(self, lib65):
        nl = _chain(4)
        pl = _place_all(nl)
        ta = TimingAnalyzer(nl, lib65, pl)
        mct = ta.analyze().mct
        res = ta.analyze(clock_period=mct + 1.0)
        assert res.worst_slack == pytest.approx(1.0, abs=1e-9)

    def test_critical_gates_on_critical_path(self, aes):
        _d, _pl, _ta, res = aes
        crit = res.critical_gates(1e-9)
        assert len(crit) >= 2
        assert all(res.slack[g] <= 1e-9 for g in crit)

    def test_all_slacks_nonnegative_at_mct(self, aes):
        _d, _pl, _ta, res = aes
        assert min(res.slack.values()) >= -1e-9


class TestWireModel:
    def test_wire_cap_scales_with_distance(self, lib65):
        nl = _chain(2)
        near = Placement(_die())
        near.place("u0", 0.0, 0.0)
        near.place("u1", 1.0, 0.0)
        far = Placement(_die())
        far.place("u0", 0.0, 0.0)
        far.place("u1", 30.0, 0.0)
        c_near = net_wire_cap(nl, near, "n0", lib65.node)
        c_far = net_wire_cap(nl, far, "n0", lib65.node)
        assert c_far > 10 * c_near

    def test_far_placement_slower(self, lib65):
        nl = _chain(4)
        near = Placement(_die())
        far = Placement(_die())
        for i in range(4):
            near.place(f"u{i}", float(i), 0.0)
            far.place(f"u{i}", (i % 2) * 38.0, 1.8 * (i % 5))
        mct_near = TimingAnalyzer(nl, lib65, near).analyze().mct
        mct_far = TimingAnalyzer(nl, lib65, far).analyze().mct
        assert mct_far > mct_near


class TestPaths:
    def test_top1_matches_mct(self, aes):
        d, _pl, _ta, res = aes
        paths = top_k_paths(d.netlist, d.library, res, 1)
        assert len(paths) == 1
        assert paths[0].delay == pytest.approx(res.mct, rel=1e-9)

    def test_paths_sorted_nonincreasing(self, aes):
        d, _pl, _ta, res = aes
        paths = top_k_paths(d.netlist, d.library, res, 50)
        delays = [p.delay for p in paths]
        assert delays == sorted(delays, reverse=True)
        assert len(paths) == 50

    def test_paths_are_connected(self, aes):
        d, _pl, _ta, res = aes
        for p in top_k_paths(d.netlist, d.library, res, 5):
            for a, b in zip(p.gates, p.gates[1:]):
                assert b in d.netlist.fanout_gates(a)

    def test_path_delay_consistent_with_dag(self, lib65):
        nl = _chain(5)
        res = TimingAnalyzer(nl, lib65, _place_all(nl)).analyze()
        paths = top_k_paths(nl, lib65, res, 3)
        assert len(paths) == 1  # a chain has exactly one path
        assert paths[0].gates == tuple(f"u{i}" for i in range(5))
        assert paths[0].endpoint.startswith("PO:")

    def test_k_validation(self, lib65):
        nl = _chain(3)
        res = TimingAnalyzer(nl, lib65, _place_all(nl)).analyze()
        with pytest.raises(ValueError, match="positive"):
            top_k_paths(nl, lib65, res, 0)

    def test_histogram(self):
        class P:
            def __init__(self, d):
                self.delay = d

        paths = [P(1.0), P(0.96), P(0.92), P(0.5)]
        hist = criticality_histogram(paths, 1.0)
        assert hist[0.95] == pytest.approx(50.0)
        assert hist[0.90] == pytest.approx(75.0)
        assert hist[0.80] == pytest.approx(75.0)

    def test_histogram_empty(self):
        assert criticality_histogram([], 1.0) == {0.95: 0.0, 0.90: 0.0, 0.80: 0.0}


class TestPowerAnalysis:
    def test_total_matches_sum(self, aes):
        from repro.power import gate_leakage, leakage_by_master, total_leakage

        d, _pl, _ta, _res = aes
        tot = total_leakage(d.netlist, d.library)
        by_master = leakage_by_master(d.netlist, d.library)
        assert tot == pytest.approx(sum(by_master.values()))
        one = gate_leakage(d.netlist, d.library, next(iter(d.netlist.gates)))
        assert one > 0

    def test_dose_increases_leakage(self, aes):
        from repro.power import total_leakage

        d, _pl, _ta, _res = aes
        base = total_leakage(d.netlist, d.library)
        doses = {g: (3.0, 0.0) for g in d.netlist.gates}
        assert total_leakage(d.netlist, d.library, doses) > base
