"""Unit tests for the placement substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.library import CellLibrary
from repro.netlist import Netlist, make_design
from repro.placement import (
    Die,
    LegalizationError,
    Placement,
    has_overlaps,
    incident_hpwl,
    incident_nets,
    legalize,
    max_displacement,
    net_hpwl,
    place_design,
    serpentine_placement,
    total_hpwl,
)


@pytest.fixture(scope="module")
def lib65():
    return CellLibrary("65nm")


@pytest.fixture(scope="module")
def placed_aes():
    d = make_design("AES-65")
    return d, place_design(d)


def _die():
    return Die(width=20.0, height=9.0, row_height=1.8, site_width=0.2)


def _chain_netlist(n=4):
    nl = Netlist("chain")
    nl.add_primary_input("in")
    prev = "in"
    for i in range(n):
        nl.add_gate(f"u{i}", "INVX1", [prev], f"n{i}")
        prev = f"n{i}"
    nl.add_primary_output(prev)
    return nl


class TestDie:
    def test_rows_and_sites(self):
        die = _die()
        assert die.n_rows == 5
        assert die.n_sites == 100

    def test_row_of_clamps(self):
        die = _die()
        assert die.row_of(-1.0) == 0
        assert die.row_of(100.0) == die.n_rows - 1
        assert die.row_of(1.9) == 1

    def test_invalid_die(self):
        with pytest.raises(ValueError):
            Die(width=-1, height=9, row_height=1.8, site_width=0.2)


class TestPlacement:
    def test_place_and_lookup(self):
        p = Placement(_die())
        p.place("u0", 1.0, 1.8)
        assert p.location("u0") == (1.0, 1.8)
        assert "u0" in p
        assert len(p) == 1

    def test_out_of_die_rejected(self):
        p = Placement(_die())
        with pytest.raises(ValueError, match="outside die"):
            p.place("u0", 25.0, 0.0)

    def test_unplaced_lookup_raises(self):
        p = Placement(_die())
        with pytest.raises(KeyError, match="not placed"):
            p.location("ghost")

    def test_swap(self):
        p = Placement(_die())
        p.place("a", 1.0, 0.0)
        p.place("b", 5.0, 1.8)
        p.swap("a", "b")
        assert p.location("a") == (5.0, 1.8)
        assert p.location("b") == (1.0, 0.0)

    def test_distance_manhattan(self):
        p = Placement(_die())
        p.place("a", 1.0, 0.0)
        p.place("b", 4.0, 1.8)
        assert p.distance("a", "b") == pytest.approx(3.0 + 1.8)

    def test_copy_is_independent(self):
        p = Placement(_die())
        p.place("a", 1.0, 0.0)
        q = p.copy()
        q.place("a", 2.0, 0.0)
        assert p.location("a") == (1.0, 0.0)

    def test_cells_in_region(self):
        p = Placement(_die())
        p.place("a", 1.0, 0.0)
        p.place("b", 10.0, 3.6)
        assert p.cells_in_region(0, 0, 5, 2) == ["a"]
        assert set(p.cells_in_region(0, 0, 20, 9)) == {"a", "b"}

    def test_neighborhood_bbox(self):
        nl = _chain_netlist(3)
        p = Placement(_die())
        p.place("u0", 1.0, 0.0)
        p.place("u1", 5.0, 1.8)
        p.place("u2", 3.0, 3.6)
        box = p.neighborhood_bbox("u1", nl)
        assert box == (1.0, 0.0, 5.0, 3.6)
        assert p.in_box("u2", box)

    def test_gate_pitch(self, placed_aes):
        d, pl = placed_aes
        pitch = pl.gate_pitch()
        assert 0.5 < pitch < 5.0

    def test_gate_pitch_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            Placement(_die()).gate_pitch()


class TestHPWL:
    def test_two_point_net(self):
        nl = _chain_netlist(2)
        p = Placement(_die())
        p.place("u0", 1.0, 0.0)
        p.place("u1", 4.0, 3.6)
        assert net_hpwl(nl, p, "n0") == pytest.approx(3.0 + 3.6)

    def test_single_endpoint_net_is_zero(self):
        nl = _chain_netlist(2)
        p = Placement(_die())
        p.place("u0", 1.0, 0.0)
        # "in" net: driver is a PI (unplaced), only one placed sink
        assert net_hpwl(nl, p, "in") == 0.0

    def test_incident_nets_dedup(self, lib65):
        nl = Netlist("dup")
        nl.add_primary_input("a")
        nl.add_gate("g", "NAND2X1", ["a", "a"], "y")
        assert incident_nets(nl, "g") == ["a", "y"]

    def test_incident_hpwl_sums_nets(self):
        nl = _chain_netlist(3)
        p = Placement(_die())
        p.place("u0", 0.0, 0.0)
        p.place("u1", 2.0, 0.0)
        p.place("u2", 6.0, 0.0)
        assert incident_hpwl(nl, p, "u1") == pytest.approx(2.0 + 4.0)

    def test_total_hpwl_nonnegative(self, placed_aes):
        d, pl = placed_aes
        assert total_hpwl(d.netlist, pl) > 0


class TestLegalize:
    def test_removes_overlaps(self, lib65):
        nl = Netlist("ov")
        nl.add_primary_input("a")
        prev = "a"
        for i in range(5):
            nl.add_gate(f"u{i}", "INVX1", [prev], f"n{i}")
            prev = f"n{i}"
        p = Placement(_die())
        for i in range(5):
            p.place(f"u{i}", 1.0, 0.0)  # all stacked on one spot
        legal = legalize(p, nl, lib65)
        assert not has_overlaps(legal, nl, lib65)
        assert len(legal) == 5

    def test_row_overflow_raises(self, lib65):
        nl = Netlist("of")
        nl.add_primary_input("a")
        die = Die(width=1.0, height=1.8, row_height=1.8, site_width=0.2)
        p = Placement(die)
        prev = "a"
        for i in range(20):  # 20 INVX1 of 0.2 um in a 1 um row
            nl.add_gate(f"u{i}", "INVX1", [prev], f"n{i}")
            prev = f"n{i}"
            p.place(f"u{i}", 0.5, 0.0)
        with pytest.raises(LegalizationError):
            legalize(p, nl, lib65)

    def test_already_legal_is_stable(self, lib65):
        nl = _chain_netlist(3)
        p = Placement(_die())
        p.place("u0", 0.0, 0.0)
        p.place("u1", 2.0, 0.0)
        p.place("u2", 4.0, 1.8)
        legal = legalize(p, nl, lib65)
        assert max_displacement(p, legal) < 0.11  # only site snapping

    def test_legalized_on_sites_and_rows(self, lib65, placed_aes):
        d, pl = placed_aes
        die = pl.die
        for name, (x, y) in pl.items():
            assert abs(y / die.row_height - round(y / die.row_height)) < 1e-9
            assert abs(x / die.site_width - round(x / die.site_width)) < 1e-6


class TestPlacer:
    def test_full_design_placement_legal(self, placed_aes):
        d, pl = placed_aes
        assert len(pl) == d.netlist.n_gates
        assert not has_overlaps(pl, d.netlist, d.library)

    def test_placement_deterministic(self):
        d = make_design("AES-90")
        p1 = place_design(d)
        p2 = place_design(d)
        assert dict(p1.items()) == dict(p2.items())

    def test_placement_has_locality(self, placed_aes):
        """Connected cells should be much closer than random pairs."""
        d, pl = placed_aes
        import numpy as np

        rng = np.random.default_rng(0)
        names = list(d.netlist.gates)
        connected, random_pairs = [], []
        for name in names[:: max(1, len(names) // 300)]:
            for succ in d.netlist.fanout_gates(name)[:2]:
                connected.append(pl.distance(name, succ))
            other = names[int(rng.integers(len(names)))]
            if other != name:
                random_pairs.append(pl.distance(name, other))
        assert np.mean(connected) < 0.5 * np.mean(random_pairs)

    def test_bad_utilization_rejected(self, lib65):
        nl = _chain_netlist(3)
        with pytest.raises(ValueError, match="utilization"):
            serpentine_placement(nl, lib65, _die(), utilization=0.0)

    @settings(deadline=None, max_examples=5)
    @given(st.integers(min_value=0, max_value=1000))
    def test_placer_always_legal(self, seed):
        lib = CellLibrary("65nm")
        nl = _chain_netlist(40)
        die = Die(width=15.0, height=9.0, row_height=1.8, site_width=0.2)
        pl = serpentine_placement(nl, lib, die, seed=seed)
        assert not has_overlaps(pl, nl, lib)
        assert len(pl) == 40
