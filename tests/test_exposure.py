"""Tests for the exposure simulation (slit convolution, quantization)."""

import numpy as np
import pytest

from repro.dosemap import DoseMap, GridPartition
from repro.dosemap.exposure import (
    printing_error,
    quantize_scan,
    simulate_exposure,
    slit_convolve,
)


def _checker_map():
    part = GridPartition(width=60.0, height=60.0, g=5.0)
    vals = (np.indices((part.m, part.n)).sum(axis=0) % 2) * 4.0 - 2.0
    return DoseMap(part, values=vals)


def _gradient_map():
    part = GridPartition(width=60.0, height=60.0, g=5.0)
    vals = np.linspace(-3, 3, part.m)[:, None] * np.ones((1, part.n))
    return DoseMap(part, values=vals)


class TestSlitConvolve:
    def test_zero_slit_is_identity(self):
        dm = _checker_map()
        out = slit_convolve(dm, 0.0)
        assert np.array_equal(out.values, dm.values)

    def test_smooths_checkerboard(self):
        dm = _checker_map()
        out = slit_convolve(dm, 15.0)
        assert out.values.std() < 0.5 * dm.values.std()

    def test_preserves_gradient_mean(self):
        dm = _gradient_map()
        out = slit_convolve(dm, 15.0)
        assert out.values.mean() == pytest.approx(dm.values.mean(), abs=1e-9)

    def test_only_smooths_scan_direction(self):
        """Slit averaging acts along y; a pure-x pattern is unchanged."""
        part = GridPartition(width=60.0, height=60.0, g=5.0)
        vals = np.ones((part.m, 1)) * np.linspace(-3, 3, part.n)[None, :]
        dm = DoseMap(part, values=vals)
        out = slit_convolve(dm, 20.0)
        assert np.allclose(out.values, dm.values)

    def test_negative_slit_rejected(self):
        with pytest.raises(ValueError):
            slit_convolve(_checker_map(), -1.0)


class TestQuantize:
    def test_identity_at_one(self):
        dm = _gradient_map()
        assert np.array_equal(quantize_scan(dm, 1).values, dm.values)

    def test_blocks_are_constant(self):
        dm = _gradient_map()
        out = quantize_scan(dm, 3)
        vals = out.values
        for start in range(0, vals.shape[0], 3):
            block = vals[start : start + 3]
            assert np.allclose(block, block[0])

    def test_mean_preserved(self):
        dm = _gradient_map()
        out = quantize_scan(dm, 4)
        assert out.values.mean() == pytest.approx(dm.values.mean(), abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize_scan(_gradient_map(), 0)


class TestExposureChain:
    def test_printing_error_metrics(self):
        dm = _checker_map()
        printed = simulate_exposure(dm, slit_height_um=15.0)
        err = printing_error(dm, printed)
        assert err["max_abs"] > 0
        assert err["rms"] <= err["max_abs"]
        # optics can only smooth
        assert err["printed_smoothness"] <= err["requested_smoothness"]

    def test_smooth_map_prints_faithfully(self):
        """A map already smoother than the slit prints almost exactly --
        the reason the optimizer's smoothness constraint exists."""
        dm = _gradient_map()
        printed = simulate_exposure(dm, slit_height_um=10.0)
        err = printing_error(dm, printed)
        assert err["rms"] < 0.35
        checker_err = printing_error(
            _checker_map(), simulate_exposure(_checker_map(), 10.0)
        )
        assert err["rms"] < 0.3 * checker_err["rms"]

    def test_shape_mismatch_rejected(self):
        a = _checker_map()
        part_b = GridPartition(width=30.0, height=30.0, g=5.0)
        b = DoseMap(part_b)
        with pytest.raises(ValueError, match="partition"):
            printing_error(a, b)
