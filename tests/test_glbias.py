"""Tests for the per-cell gate-length biasing baseline."""

import pytest

from repro.core import DesignContext, bias_gate_lengths, optimize_dose_map
from repro.netlist import make_design


@pytest.fixture(scope="module")
def ctx():
    return DesignContext(make_design("AES-65", scale=0.25))


@pytest.fixture(scope="module")
def result(ctx):
    return bias_gate_lengths(ctx)


class TestGLBias:
    def test_timing_preserved(self, ctx, result):
        assert result.mct <= ctx.baseline.mct + 1e-9

    def test_leakage_reduced_substantially(self, result):
        assert result.leakage_improvement_pct > 10.0

    def test_many_cells_biased(self, ctx, result):
        assert result.n_biased > 0.5 * ctx.netlist.n_gates

    def test_biases_on_variant_grid(self, ctx, result):
        for dp, da in result.doses.values():
            assert da == 0.0
            assert dp <= 0.0  # leakage recovery only lengthens gates
            assert abs(dp * 2 - round(dp * 2)) < 1e-9

    def test_critical_cells_left_alone(self, ctx, result):
        """Zero-slack cells must keep nominal gate length."""
        for g in ctx.baseline.critical_gates(1e-6):
            assert result.doses[g][0] == 0.0, g

    def test_finer_knob_beats_dose_map(self, ctx, result):
        """The paper's positioning: per-cell biasing (a mask change) is
        the stronger knob; the dose map trades some of that recovery for
        mask-free manufacturability."""
        dm = optimize_dose_map(ctx, 10.0, mode="qp")
        assert result.leakage_improvement_pct >= dm.leakage_improvement_pct

    def test_parameter_validation(self, ctx):
        with pytest.raises(ValueError, match="negative"):
            bias_gate_lengths(ctx, bias_step=0.5)
        with pytest.raises(ValueError, match="negative"):
            bias_gate_lengths(ctx, max_bias=1.0)

    def test_looser_bound_more_recovery(self, ctx, result):
        """Relaxing the clock bound frees slack for more biasing.
        (Biasing only lengthens gates, so bounds *below* baseline are
        unreachable by construction.)"""
        loose = bias_gate_lengths(
            ctx, timing_bound=ctx.baseline.mct * 1.03
        )
        assert loose.leakage_improvement_pct >= (
            result.leakage_improvement_pct - 0.5
        )
        assert loose.mct <= ctx.baseline.mct * 1.03 + 1e-9
