"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "AES-65"])
        assert args.design == "AES-65"
        assert args.command == "generate"

    def test_optimize_defaults(self):
        args = build_parser().parse_args(["optimize", "AES-65"])
        assert args.grid == 5.0
        assert args.mode == "qcp"
        assert not args.dosepl

    def test_optimize_flags(self):
        args = build_parser().parse_args(
            ["optimize", "AES-90", "--mode", "qp", "--grid", "10",
             "--both-layers", "--dosepl", "--smoothness", "1.5"]
        )
        assert args.both_layers and args.dosepl
        assert args.grid == 10.0
        assert args.smoothness == 1.5

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_bad_design_rejected_for_generate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "DES-45"])


class TestEndToEnd:
    def test_generate_analyze_roundtrip(self, tmp_path, capsys):
        v = tmp_path / "design.v"
        d = tmp_path / "design.def"
        rc = main(["generate", "AES-90", "--scale", "0.2",
                   "--verilog", str(v), "--def", str(d)])
        assert rc == 0
        assert v.exists() and d.exists()

        rc = main(["analyze", "--verilog", str(v), "--def", str(d),
                   "--node", "90nm", "--paths", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Timing report" in out
        assert "Leakage power report" in out

    def test_analyze_builtin(self, capsys):
        rc = main(["analyze", "AES-90", "--scale", "0.2", "--paths", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Path 2:" in out

    def test_optimize_builtin(self, capsys):
        rc = main(["optimize", "AES-90", "--scale", "0.2", "--grid", "10",
                   "--mode", "qp"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "after DMopt" in out
        assert "Dose map (poly)" in out

    def test_missing_source_errors(self):
        with pytest.raises(SystemExit, match="design name"):
            main(["analyze"])
