"""Tests for the Monte Carlo timing-yield estimator."""

import numpy as np
import pytest

from repro.core import DesignContext, optimize_dose_map
from repro.netlist import make_design
from repro.variation import (
    TimingMonteCarlo,
    VariationModel,
    timing_yield,
    yield_curve,
)


@pytest.fixture(scope="module")
def ctx():
    return DesignContext(make_design("AES-65", scale=0.25))


@pytest.fixture(scope="module")
def mc(ctx):
    return TimingMonteCarlo(ctx)


class TestSampling:
    def test_shape_and_determinism(self, mc):
        model = VariationModel(seed=5)
        a = mc.sample_dl(model, 16)
        b = mc.sample_dl(model, 16)
        assert a.shape == (16, len(mc._order))
        assert np.array_equal(a, b)

    def test_sample_count_validation(self, mc):
        with pytest.raises(ValueError, match="at least one"):
            mc.sample_dl(VariationModel(), 0)

    def test_total_sigma(self, mc):
        """Per-gate sigma ~ sqrt(sig_r^2 + sig_s^2)."""
        model = VariationModel(
            sigma_random_nm=1.0, sigma_systematic_nm=1.0, seed=1
        )
        dl = mc.sample_dl(model, 400)
        assert dl.std() == pytest.approx(np.sqrt(2.0), rel=0.1)

    def test_systematic_component_is_spatially_correlated(self, ctx, mc):
        """Gates in the same correlation grid share the systematic part."""
        model = VariationModel(
            sigma_random_nm=0.0, sigma_systematic_nm=1.0,
            correlation_grid_um=1e9,  # one grid for the whole die
        )
        dl = mc.sample_dl(model, 8)
        # all gates identical per sample
        assert np.allclose(dl, dl[:, :1])


class TestMCTEvaluation:
    def test_nominal_anchors_to_golden(self, ctx, mc):
        """Zero-variation linearized MCT ~ golden baseline MCT."""
        assert mc.nominal_mct() == pytest.approx(ctx.baseline.mct, rel=0.02)

    def test_variation_spreads_mct(self, mc):
        dl = mc.sample_dl(VariationModel(seed=2), 200)
        mcts = mc.mct_samples(dl)
        assert mcts.std() > 0
        assert mcts.shape == (200,)

    def test_positive_dl_slows(self, mc):
        n_gates = len(mc._order)
        slow = mc.mct_samples(np.full((1, n_gates), 3.0))[0]
        fast = mc.mct_samples(np.full((1, n_gates), -3.0))[0]
        assert fast < mc.nominal_mct() < slow

    def test_shape_validation(self, mc):
        with pytest.raises(ValueError, match="gate columns"):
            mc.mct_samples(np.zeros((1, 3)))

    def test_dose_map_shifts_distribution(self, ctx, mc):
        res = optimize_dose_map(ctx, 10.0, mode="qcp")
        dl = mc.sample_dl(VariationModel(seed=3), 100)
        base = mc.mct_samples(dl)
        opt = mc.mct_samples(dl, dose_map=res.dose_map_poly)
        assert opt.mean() < base.mean()


class TestYield:
    def test_yield_monotone_in_period(self, mc):
        dl = mc.sample_dl(VariationModel(seed=4), 200)
        mcts = mc.mct_samples(dl)
        periods = np.linspace(mcts.min(), mcts.max(), 9)
        curve = yield_curve(mcts, periods)
        assert np.all(np.diff(curve) >= 0)
        assert curve[-1] == 1.0

    def test_yield_bounds(self):
        mcts = np.array([1.0, 2.0, 3.0, 4.0])
        assert timing_yield(mcts, 0.5) == 0.0
        assert timing_yield(mcts, 2.5) == 0.5
        assert timing_yield(mcts, 10.0) == 1.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError, match="no samples"):
            timing_yield(np.array([]), 1.0)

    def test_dmopt_improves_timing_yield(self, ctx, mc):
        """The title claim, measured directly: yield at the baseline MCT
        target improves under the optimized dose map."""
        res = optimize_dose_map(ctx, 10.0, mode="qcp")
        dl = mc.sample_dl(VariationModel(seed=6), 300)
        target = ctx.baseline.mct
        y_base = timing_yield(mc.mct_samples(dl), target)
        y_opt = timing_yield(
            mc.mct_samples(dl, dose_map=res.dose_map_poly), target
        )
        assert y_opt > y_base
