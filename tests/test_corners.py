"""Tests for PVT-corner derivation (repro.tech.corners)."""

import pytest

from repro.library import CellLibrary
from repro.tech import (
    corner_node,
    device,
    standard_corners,
    tech_65nm,
)


@pytest.fixture(scope="module")
def nominal():
    return tech_65nm()


class TestCornerDerivation:
    def test_tt_nominal_is_identity_like(self, nominal):
        tt = corner_node(nominal, "TT", 1.0, nominal.temperature_c)
        assert tt.vth0 == nominal.vth0
        assert tt.vdd == nominal.vdd
        # tiny residual from kT/q rounding in the nominal constant
        assert tt.i_leak0 == pytest.approx(nominal.i_leak0, rel=1e-3)
        assert tt.thermal_voltage == pytest.approx(
            nominal.thermal_voltage, rel=2e-3
        )

    def test_ss_slower_than_ff(self, nominal):
        ss = corner_node(nominal, "SS")
        ff = corner_node(nominal, "FF")
        d_ss = device.stage_delay(ss, 65.0, 400.0, 2.0)
        d_ff = device.stage_delay(ff, 65.0, 400.0, 2.0)
        assert d_ss > d_ff

    def test_ff_leakier_than_ss(self, nominal):
        ss = corner_node(nominal, "SS")
        ff = corner_node(nominal, "FF")
        assert device.leakage_power(ff, 65.0, 400.0) > device.leakage_power(
            ss, 65.0, 400.0
        )

    def test_low_voltage_slower(self, nominal):
        low = corner_node(nominal, "TT", vdd_scale=0.9)
        high = corner_node(nominal, "TT", vdd_scale=1.1)
        assert device.stage_delay(low, 65.0, 400.0, 2.0) > device.stage_delay(
            high, 65.0, 400.0, 2.0
        )

    def test_hot_leakier_than_cold(self, nominal):
        hot = corner_node(nominal, "TT", temperature_c=125.0)
        cold = corner_node(nominal, "TT", temperature_c=-40.0)
        assert device.leakage_power(hot, 65.0, 400.0) > device.leakage_power(
            cold, 65.0, 400.0
        )

    def test_hot_slower_through_mobility(self, nominal):
        hot = corner_node(nominal, "TT", temperature_c=125.0)
        assert device.stage_delay(hot, 65.0, 400.0, 2.0) > device.stage_delay(
            nominal, 65.0, 400.0, 2.0
        )

    def test_validation(self, nominal):
        with pytest.raises(ValueError, match="process"):
            corner_node(nominal, "XX")
        with pytest.raises(ValueError, match="vdd_scale"):
            corner_node(nominal, "TT", vdd_scale=0.0)
        with pytest.raises(ValueError, match="absolute zero"):
            corner_node(nominal, "TT", temperature_c=-300.0)

    def test_corner_name_tagged(self, nominal):
        c = corner_node(nominal, "SS", 0.9, 125.0)
        assert "SS" in c.name and "125" in c.name


class TestStandardCorners:
    def test_corner_set(self, nominal):
        corners = standard_corners(nominal)
        assert set(corners) == {"ss_low_hot", "tt_nom", "ff_high_cold"}

    def test_worst_delay_and_leakage_ordering(self, nominal):
        corners = standard_corners(nominal)
        delays = {
            k: float(device.stage_delay(c, 65.0, 400.0, 2.0))
            for k, c in corners.items()
        }
        assert delays["ss_low_hot"] > delays["tt_nom"] > delays["ff_high_cold"]

    def test_library_characterizes_at_corner(self, nominal):
        """The whole library stack runs on a corner node."""
        ss = standard_corners(nominal)["ss_low_hot"]
        lib = CellLibrary(ss)
        slow = lib.nominal("INVX1").delay_at(0.05, 2.0)
        fast = CellLibrary("65nm").nominal("INVX1").delay_at(0.05, 2.0)
        assert slow > fast
