"""Tests for the parallel DMopt sweep harness (experiments.harness).

The contract under test: worker count resolution (arg > ``REPRO_JOBS``
env > serial), input-order result delivery, and -- the important one --
byte-identical golden numbers between serial and multi-process runs of
the same cells.
"""

import numpy as np
import pytest

from repro.experiments.harness import (
    DMoptCell,
    parallel_map,
    resolve_jobs,
    run_dmopt_cell,
    run_dmopt_cells,
)


def _square(x):
    return x * x


_MAIN_PID = None


def _square_or_die(arg):
    """Crash (hard) in any worker process; succeed in the parent."""
    import os

    x, main_pid = arg
    if os.getpid() != main_pid:
        os._exit(17)  # simulate an OOM kill / segfault, not an exception
    return x * x


def _square_or_raise(arg):
    """Raise in any worker process; succeed in the parent."""
    import os

    x, main_pid = arg
    if os.getpid() != main_pid:
        raise RuntimeError("worker casualty")
    return x * x


class TestResolveJobs:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3

    def test_arg_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_all_cores(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(-1) == (os.cpu_count() or 1)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_preserves_input_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=2) == [x * x for x in items]

    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_jobs_capped_by_items(self):
        # must not spawn 8 workers for 2 items; just check correctness
        assert parallel_map(_square, [5, 6], jobs=8) == [25, 36]


class TestGracefulDegradation:
    """A lossy worker pool must not hole or reorder the results."""

    def test_worker_exception_retried_serially(self):
        import os

        items = [(x, os.getpid()) for x in range(6)]
        out = parallel_map(_square_or_raise, items, jobs=2)
        assert out == [x * x for x in range(6)]

    def test_worker_crash_retried_serially(self):
        import os

        # os._exit in the worker kills the process outright: every
        # pending future raises BrokenProcessPool, and all items must
        # still come back, in order, via the parent's serial retry
        items = [(x, os.getpid()) for x in range(6)]
        out = parallel_map(_square_or_die, items, jobs=2)
        assert out == [x * x for x in range(6)]

    def test_retry_disabled_raises(self):
        import os

        items = [(x, os.getpid()) for x in range(3)]
        with pytest.raises(Exception):
            parallel_map(_square_or_raise, items, jobs=2,
                         retry_serial=False)

    def test_parent_failure_still_raises(self):
        # an item that fails in the parent too is a real bug: surface it
        def boom(_):
            raise ValueError("deterministic failure")

        with pytest.raises(ValueError, match="deterministic failure"):
            parallel_map(boom, [1], jobs=1)

    def test_retries_recorded_in_manifest(self, tmp_path, monkeypatch):
        import os

        from repro import telemetry

        manifest = tmp_path / "retry.jsonl"
        monkeypatch.setenv(telemetry.ENV_FLAG, "1")
        monkeypatch.setenv(telemetry.ENV_PATH, str(manifest))
        telemetry.reset()
        try:
            items = [(x, os.getpid()) for x in range(4)]
            out = parallel_map(_square_or_raise, items, jobs=2)
            assert out == [x * x for x in range(4)]
        finally:
            telemetry.reset()
        events = [
            __import__("json").loads(line)
            for line in manifest.read_text().splitlines()
        ]
        retries = [e for e in events if e["event"] == "worker_retry"]
        assert len(retries) == 4
        assert sorted(e["index"] for e in retries) == [0, 1, 2, 3]


SMALL_CELLS = [
    DMoptCell("AES-65", 30.0, mode="qp", scale=0.3),
    DMoptCell("AES-65", 30.0, mode="qcp", scale=0.3),
]

GOLDEN_KEYS = [
    "design",
    "grid_size",
    "mode",
    "both_layers",
    "mct",
    "mct_improvement_pct",
    "leakage",
    "leakage_improvement_pct",
    "baseline_mct",
    "baseline_leakage",
    "iterations",
    "status",
]


class TestDMoptCells:
    def test_cell_result_shape(self):
        out = run_dmopt_cell(SMALL_CELLS[0])
        for key in GOLDEN_KEYS + ["runtime"]:
            assert key in out
        assert out["status"] == "solved"
        assert out["mct"] < out["baseline_mct"]

    def test_parallel_matches_serial(self):
        serial = run_dmopt_cells(SMALL_CELLS, jobs=1)
        parallel = run_dmopt_cells(SMALL_CELLS, jobs=2)
        assert len(serial) == len(parallel) == len(SMALL_CELLS)
        for s, p in zip(serial, parallel):
            for key in GOLDEN_KEYS:
                if isinstance(s[key], float):
                    assert p[key] == pytest.approx(s[key], abs=1e-12), key
                else:
                    assert p[key] == s[key], key

    def test_env_jobs_used(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        out = run_dmopt_cells(SMALL_CELLS[:1])
        assert out[0]["status"] == "solved"


class TestCLIWiring:
    def test_jobs_flag_parsed(self):
        """--jobs reaches only the parallelizable experiments."""
        import repro.experiments.__main__ as cli

        parser_probe = []

        def fake_table4(jobs=None):
            parser_probe.append(jobs)
            from repro.experiments.harness import TableResult

            return TableResult("T4", "t", ["a"], [["x"]])

        old = cli.EXPERIMENTS["table4"]
        cli.EXPERIMENTS["table4"] = fake_table4
        try:
            cli.main(["table4", "--jobs", "2", "--out", "/tmp/_t4probe"])
        finally:
            cli.EXPERIMENTS["table4"] = old
        assert parser_probe == [2]
