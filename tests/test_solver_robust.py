"""Tests for the solver fallback/retry chain (repro.solver.robust)."""

import json

import numpy as np
import pytest
import scipy.sparse as sp

import repro.solver.robust as robust
from repro.core import DesignContext, optimize_dose_map
from repro.netlist import make_design
from repro.solver import (
    STATUS_DIVERGED,
    STATUS_INFEASIBLE,
    diagnostic_result,
    solve_qp_robust,
)
from repro.solver.ipm import solve_qp_ipm as real_ipm


def _box_qp():
    """min 1/2 x'x - 5'x over [0,1]^2 -> x = (1,1)."""
    return (sp.eye(2), np.array([-5.0, -5.0]), sp.eye(2),
            np.zeros(2), np.ones(2))


def _diverged_stub(P, q, A, l, u, **kwargs):
    return diagnostic_result(STATUS_DIVERGED, q.shape[0],
                             "stubbed divergence")


class TestFallbackChain:
    def test_happy_path_single_attempt(self):
        res = solve_qp_robust(*_box_qp())
        assert res.ok
        assert [a["step"] for a in res.info["attempts"]] == ["ipm"]

    def test_ipm_divergence_recovered_by_admm(self, monkeypatch):
        """A dead IPM backend must not take the chain down."""
        monkeypatch.setattr(robust, "solve_qp_ipm", _diverged_stub)
        res = solve_qp_robust(*_box_qp())
        assert res.ok
        assert np.allclose(res.x, [1.0, 1.0], atol=1e-3)
        steps = [a["step"] for a in res.info["attempts"]]
        assert steps == ["ipm", "ipm-regularized", "admm"]

    def test_regularized_retry_recovers(self, monkeypatch):
        """Failure at the default reg, success at the retry reg: the
        chain must stop at step 2 without touching ADMM."""

        def flaky_ipm(P, q, A, l, u, **kwargs):
            if kwargs.get("reg", 1e-9) < robust.RETRY_REG:
                return _diverged_stub(P, q, A, l, u)
            return real_ipm(P, q, A, l, u, **kwargs)

        monkeypatch.setattr(robust, "solve_qp_ipm", flaky_ipm)
        res = solve_qp_robust(*_box_qp())
        assert res.ok
        steps = [a["step"] for a in res.info["attempts"]]
        assert steps == ["ipm", "ipm-regularized"]

    def test_cold_infeasible_not_retried(self):
        P = sp.eye(1)
        res = solve_qp_robust(P, np.zeros(1), sp.eye(1),
                              np.array([2.0]), np.array([1.0]))
        assert res.status == STATUS_INFEASIBLE
        assert len(res.info["attempts"]) == 1

    def test_warm_infeasible_confirmed_cold(self, monkeypatch):
        """A warm-started infeasibility verdict is re-checked cold once."""
        calls = []

        def fake_ipm(P, q, A, l, u, warm=None, **kwargs):
            calls.append(warm is not None)
            res = diagnostic_result(STATUS_INFEASIBLE, q.shape[0],
                                    "stubbed infeasible")
            res.warm_started = warm is not None
            return res

        monkeypatch.setattr(robust, "solve_qp_ipm", fake_ipm)
        res = solve_qp_robust(*_box_qp(), warm={"x": np.zeros(2)})
        assert res.status == STATUS_INFEASIBLE
        assert calls == [True, False]  # warm attempt, then cold confirm

    def test_exhausted_chain_returns_best_residual(self, monkeypatch):
        def bad_ipm(P, q, A, l, u, **kwargs):
            res = diagnostic_result(STATUS_DIVERGED, q.shape[0], "dead")
            res.r_prim = res.r_dual = 10.0
            return res

        def bad_admm(P, q, A, l, u, **kwargs):
            res = diagnostic_result(STATUS_DIVERGED, q.shape[0], "dead too")
            res.r_prim = res.r_dual = 1.0  # less bad
            return res

        monkeypatch.setattr(robust, "solve_qp_ipm", bad_ipm)
        monkeypatch.setattr(robust, "solve_qp", bad_admm)
        res = solve_qp_robust(*_box_qp())
        assert not res.ok
        assert res.r_prim == 1.0  # the least-bad attempt won
        assert "exhausted" in res.info["note"]

    def test_fallback_events_in_manifest(self, tmp_path, monkeypatch):
        from repro import telemetry

        manifest = tmp_path / "chain.jsonl"
        monkeypatch.setenv(telemetry.ENV_FLAG, "1")
        monkeypatch.setenv(telemetry.ENV_PATH, str(manifest))
        telemetry.reset()
        monkeypatch.setattr(robust, "solve_qp_ipm", _diverged_stub)
        try:
            res = solve_qp_robust(*_box_qp())
            assert res.ok
        finally:
            telemetry.reset()
        events = [json.loads(line)
                  for line in manifest.read_text().splitlines()]
        steps = [e["step"] for e in events if e["event"] == "fallback"]
        assert steps == ["ipm", "ipm-regularized", "admm"]


class TestDMoptUnderFallback:
    def test_goldens_unchanged_when_ipm_dies(self, monkeypatch):
        """ISSUE acceptance: force IPM divergence inside DMopt and verify
        the ADMM recovery reproduces the healthy goldens."""
        ctx = DesignContext(make_design("AES-65", scale=0.3))
        healthy = optimize_dose_map(ctx, 30.0, mode="qp")
        assert healthy.ok

        monkeypatch.setattr(robust, "solve_qp_ipm", _diverged_stub)
        ctx2 = DesignContext(make_design("AES-65", scale=0.3))
        recovered = optimize_dose_map(ctx2, 30.0, mode="qp")
        assert recovered.ok
        steps = [a["step"] for a in recovered.solve.info["attempts"]]
        assert steps[-1] == "admm"
        assert recovered.mct == pytest.approx(healthy.mct, rel=1e-6)
        assert recovered.leakage == pytest.approx(healthy.leakage, rel=1e-6)
