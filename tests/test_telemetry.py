"""Tests for the structured run telemetry module (repro.telemetry)."""

import json

import pytest

from repro import telemetry


@pytest.fixture
def manifest(tmp_path, monkeypatch):
    """Telemetry enabled, writing to a per-test manifest; reset after."""
    path = tmp_path / "run.jsonl"
    monkeypatch.setenv(telemetry.ENV_FLAG, "1")
    monkeypatch.setenv(telemetry.ENV_PATH, str(path))
    telemetry.reset()
    yield path
    telemetry.reset()


def _events(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestSink:
    def test_off_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv(telemetry.ENV_FLAG, raising=False)
        monkeypatch.setenv(telemetry.ENV_PATH, str(tmp_path / "off.jsonl"))
        telemetry.reset()
        try:
            assert not telemetry.enabled()
            telemetry.emit("stage", stage="x", seconds=0.0)
            with telemetry.stage("y"):
                pass
            assert not (tmp_path / "off.jsonl").exists()
        finally:
            telemetry.reset()

    def test_emit_writes_base_fields(self, manifest):
        telemetry.emit("run_begin", run="unit")
        (event,) = _events(manifest)
        assert event["event"] == "run_begin"
        assert event["run"] == "unit"
        assert event["v"] == telemetry.SCHEMA_VERSION
        assert isinstance(event["ts"], float)
        assert isinstance(event["pid"], int)

    def test_stage_times_the_block(self, manifest):
        with telemetry.stage("fit"):
            pass
        (event,) = _events(manifest)
        assert event["event"] == "stage"
        assert event["stage"] == "fit"
        assert event["seconds"] >= 0.0

    def test_configure_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(telemetry.ENV_FLAG, raising=False)
        other = tmp_path / "other.jsonl"
        telemetry.reset()
        try:
            telemetry.configure(enabled=True, path=str(other))
            telemetry.emit("run_begin", run="configured")
            assert len(_events(other)) == 1
            # configure mirrors to env so worker processes inherit it
            import os

            assert os.environ[telemetry.ENV_FLAG] == "1"
            assert os.environ[telemetry.ENV_PATH] == str(other)
        finally:
            monkeypatch.delenv(telemetry.ENV_FLAG, raising=False)
            monkeypatch.delenv(telemetry.ENV_PATH, raising=False)
            telemetry.reset()

    def test_non_json_payload_stringified(self, manifest):
        telemetry.emit("infeasibility", blocking=["timing"],
                       probes={"timing": "solved"}, extra=object())
        (event,) = _events(manifest)  # must not raise on dump
        assert event["blocking"] == ["timing"]

    def test_pathological_payload_degrades_to_repr(self, manifest):
        """A field the JSON encoder rejects outright (circular structure,
        non-string dict keys) degrades to repr() instead of raising and
        killing the run; the healthy fields survive verbatim."""
        circular = []
        circular.append(circular)
        telemetry.emit("run_begin", run="ok", loop=circular,
                       weird={(1, 2): "tuple-keyed"})
        (event,) = _events(manifest)
        assert event["run"] == "ok"  # healthy field intact
        assert isinstance(event["loop"], str)  # degraded, not dropped
        assert "tuple-keyed" in str(event["weird"])

    def test_emit_records_monotonic_base_field(self, manifest):
        telemetry.emit("run_begin", run="mono")
        (event,) = _events(manifest)
        assert isinstance(event["mono"], float)

    def test_stage_duration_immune_to_wall_clock_step(self, manifest,
                                                      monkeypatch):
        """An NTP step (wall clock jumping backwards mid-stage) must not
        produce a negative duration: stage() times with perf_counter."""
        import time as time_mod

        real_time = time_mod.time
        # wall clock jumps 1 hour backwards on every later call
        monkeypatch.setattr(
            telemetry.time, "time", lambda: real_time() - 3600.0
        )
        with telemetry.stage("ntp_step"):
            pass
        (event,) = _events(manifest)
        assert event["seconds"] >= 0.0


class TestValidation:
    def test_valid_manifest_passes(self, manifest):
        telemetry.emit("run_begin", run="v")
        telemetry.emit("stage", stage="s", seconds=0.1)
        telemetry.emit("run_end", run="v", seconds=0.2)
        n, errors = telemetry.validate_manifest(manifest)
        assert n == 3
        assert errors == []

    def test_unknown_event_flagged(self, manifest):
        telemetry.emit("not_a_real_event", foo=1)
        _, errors = telemetry.validate_manifest(manifest)
        assert any("unknown event" in e for e in errors)

    def test_missing_fields_flagged(self, manifest):
        telemetry.emit("solve", backend="ipm")  # lacks status/iterations/...
        _, errors = telemetry.validate_manifest(manifest)
        assert any("missing fields" in e for e in errors)

    def test_invalid_json_flagged(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"v": 1}\nnot json at all\n')
        n, errors = telemetry.validate_manifest(bad)
        assert n == 2
        assert any("invalid JSON" in e for e in errors)

    def test_cli_validator_exit_codes(self, manifest, capsys):
        telemetry.emit("run_begin", run="cli")
        telemetry.reset()  # flush/close before reading
        assert telemetry.main([str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "1 events, 0 schema errors" in out

    def test_cli_validator_rejects_empty(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert telemetry.main([str(empty)]) == 1

    def test_every_emitter_event_is_in_schema(self):
        """The schema must cover every event the codebase emits."""
        import pathlib
        import re

        src = pathlib.Path(__file__).parent.parent / "src"
        emitted = set()
        for path in src.rglob("*.py"):
            emitted.update(
                re.findall(r'telemetry\.emit\(\s*"(\w+)"', path.read_text())
            )
        assert emitted  # the grep found the call sites
        assert emitted <= set(telemetry.EVENT_SCHEMA)


class TestEndToEnd:
    def test_dmopt_run_produces_valid_manifest(self, manifest):
        from repro.core import DesignContext, optimize_dose_map
        from repro.netlist import make_design

        ctx = DesignContext(make_design("AES-65", scale=0.3))
        res = optimize_dose_map(ctx, 30.0, mode="qp")
        assert res.ok
        telemetry.reset()  # flush before validating
        n, errors = telemetry.validate_manifest(manifest)
        assert errors == []
        kinds = {e["event"] for e in _events(manifest)}
        assert "solve" in kinds
        assert "fallback" in kinds
        assert "dmopt" in kinds
        assert "span" in kinds  # dmopt's stages are tracing spans now
