"""Cross-module property-based tests (hypothesis).

Invariants that must hold regardless of input details -- the contracts
the optimization relies on when it composes the substrates.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DesignContext
from repro.core.snap import SNAP_CEIL, SNAP_FLOOR, SNAP_NEAREST, snap_dose_map
from repro.dosemap import DoseMap, GridPartition
from repro.library import CellLibrary
from repro.netlist import make_design


@pytest.fixture(scope="module")
def ctx():
    return DesignContext(make_design("AES-90", scale=0.25))


@pytest.fixture(scope="module")
def lib65():
    return CellLibrary("65nm")


def _dose_maps(min_side=2, max_side=6):
    """Hypothesis strategy: random feasible-range dose maps."""

    @st.composite
    def build(draw):
        m = draw(st.integers(min_side, max_side))
        n = draw(st.integers(min_side, max_side))
        vals = draw(
            st.lists(
                st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
                min_size=m * n,
                max_size=m * n,
            )
        )
        part = GridPartition(width=n * 10.0, height=m * 10.0, g=10.0)
        return DoseMap(part, values=np.array(vals).reshape(m, n))

    return build()


class TestSnapProperties:
    @settings(deadline=None, max_examples=30)
    @given(_dose_maps())
    def test_snap_idempotent(self, dm):
        lib = CellLibrary("65nm")
        once = snap_dose_map(dm, lib, SNAP_NEAREST)
        twice = snap_dose_map(once, lib, SNAP_NEAREST)
        assert np.array_equal(once.values, twice.values)

    @settings(deadline=None, max_examples=30)
    @given(_dose_maps())
    def test_snap_orderings(self, dm):
        """floor <= nearest <= ceil, all within half a step of input."""
        lib = CellLibrary("65nm")
        lo = snap_dose_map(dm, lib, SNAP_FLOOR).values
        mid = snap_dose_map(dm, lib, SNAP_NEAREST).values
        hi = snap_dose_map(dm, lib, SNAP_CEIL).values
        assert np.all(lo <= mid + 1e-12)
        assert np.all(mid <= hi + 1e-12)
        assert np.max(np.abs(mid - dm.values)) <= 0.25 + 1e-9

    @settings(deadline=None, max_examples=30)
    @given(_dose_maps())
    def test_snap_preserves_feasibility_margin(self, dm):
        """Snapping changes each grid by < one step, so a map feasible
        with 0.5 % margin stays feasible after snapping."""
        lib = CellLibrary("65nm")
        snapped = snap_dose_map(dm, lib, SNAP_NEAREST)
        assert snapped.range_violations(5.0) <= 1e-9
        if dm.is_feasible(dose_range=5.0, smoothness=1.5):
            assert snapped.is_feasible(dose_range=5.0, smoothness=2.0)


class TestDoseMapProperties:
    @settings(deadline=None, max_examples=25)
    @given(_dose_maps(), st.integers(1, 3), st.integers(1, 3))
    def test_tiling_preserves_values_and_mean(self, dm, nx, ny):
        big = dm.tiled(nx, ny)
        assert big.values.shape == (dm.values.shape[0] * ny,
                                    dm.values.shape[1] * nx)
        assert big.values.mean() == pytest.approx(dm.values.mean())
        m, n = dm.values.shape
        for ty in range(ny):
            for tx in range(nx):
                tile = big.values[ty * m:(ty + 1) * m, tx * n:(tx + 1) * n]
                assert np.array_equal(tile, dm.values)

    @settings(deadline=None, max_examples=25)
    @given(_dose_maps())
    def test_flat_roundtrip(self, dm):
        assert np.array_equal(dm.from_flat(dm.flat()).values, dm.values)

    @settings(deadline=None, max_examples=25)
    @given(_dose_maps(), st.floats(0.1, 10.0))
    def test_smoothness_monotone_in_bound(self, dm, delta):
        """A larger bound can only reduce the violation."""
        assert dm.smoothness_violations(delta) >= dm.smoothness_violations(
            delta + 1.0
        )


class TestSTAMonotonicity:
    def test_mct_monotone_in_uniform_dose(self, ctx):
        doses = [-4.0, -2.0, 0.0, 2.0, 4.0]
        mcts = []
        for d in doses:
            gd = {g: (d, 0.0) for g in ctx.netlist.gates}
            mcts.append(ctx.analyzer.analyze(doses=gd).mct)
        assert all(b < a for a, b in zip(mcts, mcts[1:]))

    def test_single_gate_dose_never_hurts_mct(self, ctx):
        """Speeding up any one gate cannot increase the longest path."""
        base = ctx.baseline.mct
        import itertools

        for g in itertools.islice(ctx.netlist.gates, 0, 60, 7):
            res = ctx.analyzer.analyze(doses={g: (5.0, 0.0)})
            assert res.mct <= base + 1e-9, g

    def test_dose_superposition_bound(self, ctx):
        """Dosing a region is at least as fast as dosing a subregion."""
        gates = list(ctx.netlist.gates)
        half = {g: (4.0, 0.0) for g in gates[: len(gates) // 2]}
        full = {g: (4.0, 0.0) for g in gates}
        mct_half = ctx.analyzer.analyze(doses=half).mct
        mct_full = ctx.analyzer.analyze(doses=full).mct
        assert mct_full <= mct_half + 1e-9


class TestLibraryProperties:
    @settings(deadline=None, max_examples=12)
    @given(
        st.sampled_from(["INVX1", "NAND2X1", "NOR2X2", "XOR2X1", "DFFX1"]),
        st.floats(min_value=-4.5, max_value=4.5),
    )
    def test_delay_leakage_tradeoff_everywhere(self, master, dose):
        """At any dose, moving toward +dose is faster and leakier."""
        lib = CellLibrary("65nm")
        a = lib.characterized(master, lib.snap_dose(dose))
        b = lib.characterized(master, lib.snap_dose(dose) + 0.5)
        if b.dl_nm == a.dl_nm:  # clipped at the range edge
            return
        assert b.delay_at(0.05, 2.0) < a.delay_at(0.05, 2.0)
        assert b.leakage_uw > a.leakage_uw
