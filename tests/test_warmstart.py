"""Warm-start regression tests: fewer iterations, same golden answers.

Covers the whole warm-start chain: solver-level seeds (IPM ``warm``/
``workspace``, ADMM ``x0``/``y0``), the QCP bisection's intra-solve
state threading, and the DMopt-level ``warm_start=`` plumbing used by
:func:`repro.core.dmopt_dose_range_sweep`.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import DesignContext, dmopt_dose_range_sweep, optimize_dose_map
from repro.solver import solve_qcp, solve_qp, solve_qp_ipm
from repro.solver.ipm import IPMWorkspace

ATOL = 1e-6


@pytest.fixture(scope="module")
def aes_ctx():
    return DesignContext("AES-65")


def box_qp(n=40, seed=3):
    rng = np.random.default_rng(seed)
    M = rng.standard_normal((n, n))
    P = sp.csc_matrix(M @ M.T + n * np.eye(n))
    q = rng.standard_normal(n)
    A = sp.eye(n, format="csc")
    return P, q, A, -np.ones(n), np.ones(n)


class TestIPMWarmStart:
    def test_warm_flag_and_fewer_iterations(self):
        P, q, A, l, u = box_qp()
        cold = solve_qp_ipm(P, q, A, l, u)
        assert cold.ok and not cold.warm_started
        warm = solve_qp_ipm(
            P, q, A, l, u, warm={"x": cold.x, "z": cold.info["z"]}
        )
        assert warm.ok and warm.warm_started
        assert warm.iterations < cold.iterations
        assert np.allclose(warm.x, cold.x, atol=ATOL)

    def test_x0_compat_argument(self):
        P, q, A, l, u = box_qp()
        cold = solve_qp_ipm(P, q, A, l, u)
        warm = solve_qp_ipm(P, q, A, l, u, x0=cold.x)
        assert warm.ok and warm.warm_started
        assert np.allclose(warm.x, cold.x, atol=ATOL)

    def test_workspace_reused_across_solves(self):
        P, q, A, l, u = box_qp()
        ws = {}
        r1 = solve_qp_ipm(P, q, A, l, u, workspace=ws)
        assert isinstance(ws.get("ws"), IPMWorkspace)
        first = ws["ws"]
        r2 = solve_qp_ipm(P, q + 0.1, A, l, u, workspace=ws)
        assert ws["ws"] is first  # same pattern -> no rebuild
        assert r1.ok and r2.ok

    def test_workspace_rebuilt_on_pattern_change(self):
        P, q, A, l, u = box_qp()
        ws = {}
        solve_qp_ipm(P, q, A, l, u, workspace=ws)
        first = ws["ws"]
        u2 = u.copy()
        u2[0] = np.inf  # different finiteness mask -> different G
        r = solve_qp_ipm(P, q, A, l, u2, workspace=ws)
        assert r.ok
        assert ws["ws"] is not first

    def test_workspace_same_answer(self):
        P, q, A, l, u = box_qp()
        plain = solve_qp_ipm(P, q, A, l, u)
        ws = {}
        solve_qp_ipm(P, q, A, l, u, workspace=ws)
        again = solve_qp_ipm(P, q, A, l, u, workspace=ws)
        assert np.allclose(again.x, plain.x, atol=ATOL)


class TestADMMWarmStart:
    def test_x0_y0_flag_and_answer(self):
        P, q, A, l, u = box_qp(n=25, seed=11)
        cold = solve_qp(P, q, A, l, u)
        assert cold.ok and not cold.warm_started
        warm = solve_qp(P, q, A, l, u, x0=cold.x, y0=cold.info["y"])
        assert warm.ok and warm.warm_started
        assert warm.iterations <= cold.iterations
        assert np.allclose(warm.x, cold.x, atol=1e-4)


class TestQCPWarmStart:
    def test_dmopt_qcp_warm_fewer_iterations(self, aes_ctx):
        cold = optimize_dose_map(aes_ctx, 10.0, mode="qcp")
        warm = optimize_dose_map(
            aes_ctx, 10.0, mode="qcp", warm_start=cold.solve
        )
        assert not cold.solve.warm_started
        assert warm.solve.warm_started
        assert warm.solve.iterations < cold.solve.iterations
        assert warm.mct == pytest.approx(cold.mct, abs=1e-6)
        assert warm.leakage == pytest.approx(cold.leakage, rel=1e-6)

    def test_qcp_lam_hint_and_state(self):
        n = 20
        rng = np.random.default_rng(7)
        c = -np.abs(rng.standard_normal(n))  # push x to its bounds
        A = sp.eye(n, format="csc")
        l, u = -np.ones(n), np.ones(n)
        Q = sp.eye(n, format="csc")
        g = np.zeros(n)
        s = 0.25 * n  # binding: ||x||^2/2 <= s < n/2
        cold = solve_qcp(c, A, l, u, Q, g, s, method="ipm")
        assert cold.ok and not cold.warm_started
        assert cold.info["lam"] > 0
        warm = solve_qcp(
            c, A, l, u, Q, g, s, method="ipm",
            warm={"x": cold.x}, lam_hint=cold.info["lam"],
        )
        assert warm.ok and warm.warm_started
        assert warm.iterations < cold.iterations
        assert warm.obj == pytest.approx(cold.obj, rel=1e-4)


class TestDMoptQPWarm:
    def test_qp_warm_same_goldens(self, aes_ctx):
        cold = optimize_dose_map(aes_ctx, 10.0, mode="qp")
        warm = optimize_dose_map(
            aes_ctx, 10.0, mode="qp", warm_start=cold.solve
        )
        assert warm.solve.warm_started
        assert warm.solve.iterations < cold.solve.iterations
        assert warm.mct == pytest.approx(cold.mct, abs=1e-6)
        assert warm.leakage == pytest.approx(cold.leakage, rel=1e-6)


class TestSweepChaining:
    def test_sweep_matches_independent_solves(self, aes_ctx):
        ranges = [4.0, 5.0]
        chained = dmopt_dose_range_sweep(aes_ctx, 10.0, ranges, mode="qp")
        independent = [
            optimize_dose_map(aes_ctx, 10.0, mode="qp", dose_range=r)
            for r in ranges
        ]
        assert len(chained) == 2
        assert not chained[0].solve.warm_started
        assert chained[1].solve.warm_started
        for got, want in zip(chained, independent):
            assert got.mct == pytest.approx(want.mct, abs=1e-6)
            assert got.leakage == pytest.approx(want.leakage, rel=1e-6)
        # warm chaining must actually help on the second point
        assert chained[1].solve.iterations < independent[1].solve.iterations

    def test_sweep_warm_start_off(self, aes_ctx):
        res = dmopt_dose_range_sweep(
            aes_ctx, 30.0, [4.0, 5.0], mode="qp", warm_start=False
        )
        assert not any(r.solve.warm_started for r in res)
